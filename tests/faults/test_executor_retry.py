"""Worker-death containment in the sharded executor.

The tasks live at module level so the fork-based pool can run them; the
crash helpers consult :func:`faults_suppressed` so the parent's
re-execution of a lost shard succeeds where the worker died.
"""

import os

import pytest

from repro.faults.errors import WorkerCrash
from repro.faults.runtime import faults_suppressed
from repro.parallel.executor import ShardedExecutor


def double(index, shard):
    return (index, shard * 2)


def crash_on_two(index, shard):
    if index == 2 and not faults_suppressed():
        raise WorkerCrash("parallel.executor", "worker_crash", key="2")
    return (index, shard * 2)


def fail_on_two(index, shard):
    if index == 2:
        raise ValueError("shard 2 is broken for real")
    return (index, shard * 2)


def die_on_two(index, shard):
    if index == 2 and not faults_suppressed():
        # A real worker death: the process vanishes without an exception,
        # which surfaces to the parent as a broken pool.
        os._exit(1)
    return (index, shard * 2)


SHARDS = [10, 20, 30, 40]
EXPECTED = [(0, 20), (1, 40), (2, 60), (3, 80)]


class TestSerialPath:
    def test_clean_run(self):
        executor = ShardedExecutor(workers=1)
        assert executor.map_shards(double, SHARDS) == EXPECTED
        assert executor.shards_retried == 0

    def test_crashed_shard_reexecuted_in_order(self):
        executor = ShardedExecutor(workers=1)
        assert executor.map_shards(crash_on_two, SHARDS) == EXPECTED
        assert executor.shards_retried == 1

    def test_non_retryable_error_propagates(self):
        executor = ShardedExecutor(workers=1)
        with pytest.raises(ValueError, match="broken for real"):
            executor.map_shards(fail_on_two, SHARDS)
        assert executor.shards_retried == 0


class TestPoolPath:
    def test_clean_run(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        assert executor.map_shards(double, SHARDS) == EXPECTED
        assert executor.shards_retried == 0

    def test_worker_crash_retries_only_that_shard(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        assert executor.map_shards(crash_on_two, SHARDS) == EXPECTED
        assert executor.shards_retried == 1

    def test_non_retryable_error_propagates(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        with pytest.raises(ValueError, match="broken for real"):
            executor.map_shards(fail_on_two, SHARDS)

    def test_dead_worker_process_breaks_pool_but_not_run(self):
        """``os._exit`` kills the worker outright; every shard the broken
        pool lost is re-executed in the parent and the output is intact."""
        executor = ShardedExecutor(workers=2, shard_count=4)
        assert executor.map_shards(die_on_two, SHARDS) == EXPECTED
        assert executor.shards_retried >= 1


class TestWorkerCrashPickling:
    def test_roundtrip_preserves_site_kind_key(self):
        import pickle

        crash = WorkerCrash("parallel.executor", "worker_crash", key="3")
        clone = pickle.loads(pickle.dumps(crash))
        assert isinstance(clone, WorkerCrash)
        assert (clone.site, clone.kind, clone.key) == (
            crash.site,
            crash.kind,
            crash.key,
        )
        assert clone.shard_retryable
