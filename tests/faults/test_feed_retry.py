"""Feed faults: bounded retry, skip-and-reconcile, and delay reordering."""

import pytest

from repro.core.references import RefType
from repro.faults.errors import TransientFault
from repro.faults.inject import FaultyFeed
from repro.faults.plan import FaultLog, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.measurement.scheduler import DayPartition
from repro.measurement.snapshot import DomainObservation
from repro.stream.checkpoint import state_digest
from repro.stream.engine import RECONCILED, StreamEngine
from repro.stream.feed import FeedError, ResilientFeed

HORIZON = 6
DOMAINS = ("prot-a.com", "plain-b.com")
POLICY = RetryPolicy(attempts=3, backoff_base=1, backoff_factor=2)


class StubCatalog:
    def match(self, observation):
        if observation.domain.startswith("prot"):
            return {"StubDPS": frozenset({RefType.NS})}
        return {}


def make_partition(day):
    rows = [
        DomainObservation(
            day=day,
            domain=name,
            tld="com",
            ns_names=(f"ns1.{name}.",),
            apex_addrs=("192.0.2.1",),
            asns=frozenset({64500}),
        )
        for name in DOMAINS
    ]
    return DayPartition(
        source="com", day=day, zone_size=len(rows), observations=rows
    )


class InMemoryFeed:
    """A minimal replay feed over synthetic ``com`` partitions."""

    def __init__(self, days=HORIZON):
        self._days = days

    def windows(self):
        return {"com": (0, self._days)}

    def partition(self, source, day):
        assert source == "com"
        return make_partition(day)

    def days(self, start=None, end=None):
        for day in range(start or 0, self._days if end is None else end):
            yield self.partition("com", day)


class FlakyFeed(InMemoryFeed):
    """Fails the first *failures* reads of each partition — or forever
    for days in *dead_days*."""

    def __init__(self, failures=0, dead_days=(), days=HORIZON):
        super().__init__(days)
        self._failures = failures
        self._dead_days = set(dead_days)
        self._attempts = {}

    def partition(self, source, day):
        if day in self._dead_days:
            raise OSError(f"day {day} is unreadable")
        seen = self._attempts.get(day, 0)
        self._attempts[day] = seen + 1
        if seen < self._failures:
            raise OSError(f"flaky read of day {day}")
        return super().partition(source, day)


def engine():
    return StreamEngine(
        HORIZON,
        catalog=StubCatalog(),
        sources=("com",),
        windows={"com": (0, HORIZON)},
    )


def clean_digest():
    stream = engine()
    stream.ingest_feed(InMemoryFeed().days())
    return state_digest(stream)


class TestResilientRetry:
    def test_transient_failure_recovers_within_budget(self):
        feed = ResilientFeed(FlakyFeed(failures=2), retry_policy=POLICY)
        partition = feed.partition("com", 0)
        assert partition is not None and partition.day == 0
        payload = feed.log.to_dict()
        assert payload["retries"] == {"feed.partition": 2}
        assert payload["recovered"] == {"feed.partition": 1}
        # Geometric backoff: 1 tick before retry 1, 2 before retry 2.
        assert feed.log.backoff_ticks == 3

    def test_exhaustion_raises_typed_error_with_cause(self):
        feed = ResilientFeed(
            FlakyFeed(dead_days=(2,)), retry_policy=POLICY
        )
        with pytest.raises(FeedError, match=r"\('com', 2\)") as excinfo:
            feed.partition("com", 2)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_exhaustion_skip_records_and_continues(self):
        feed = ResilientFeed(
            FlakyFeed(dead_days=(2,)),
            retry_policy=POLICY,
            on_exhausted="skip",
        )
        days = [partition.day for partition in feed.days()]
        assert days == [0, 1, 3, 4, 5]
        assert feed.skipped == [("com", 2)]
        assert feed.log.to_dict()["dropped"] == {"feed.partition": 1}

    def test_invalid_exhaustion_mode_rejected(self):
        with pytest.raises(ValueError, match="on_exhausted"):
            ResilientFeed(InMemoryFeed(), on_exhausted="explode")

    def test_skipped_day_reconciles_on_redelivery(self):
        feed = ResilientFeed(
            FlakyFeed(dead_days=(2,)),
            retry_policy=POLICY,
            on_exhausted="skip",
        )
        stream = engine()
        stream.ingest_feed(feed.days(), skip_gaps=True)
        assert stream.missing_days("com") == [2]
        assert stream.ingest(make_partition(2)) == RECONCILED
        clean = engine()
        clean.ingest_feed(InMemoryFeed().days())
        # Detection state converges exactly; only the late-arrival
        # counter remembers the journey, so compare scopes, not digests.
        assert (
            stream.scope("gtld").to_dict() == clean.scope("gtld").to_dict()
        )
        assert stream.missing_days("com") == []
        assert stream.next_day("com") == clean.next_day("com")


class TestInjectedFeedFaults:
    def test_transient_injection_cleared_by_retry(self):
        log = FaultLog()
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(
                    "feed.partition", "transient", keys=("com",), times=2
                ),
            ),
        )
        feed = ResilientFeed(
            FaultyFeed(InMemoryFeed(), plan.injector(log)),
            retry_policy=POLICY,
            log=log,
        )
        stream = engine()
        stream.ingest_feed(feed.days())
        assert state_digest(stream) == clean_digest()
        payload = log.to_dict()
        assert payload["injected"] == {"feed.partition/transient": 2}
        assert payload["retries"] == {"feed.partition": 2}

    def test_transient_injection_is_typed(self):
        plan = FaultPlan(
            seed=5,
            specs=(FaultSpec("feed.partition", "transient", times=1),),
        )
        feed = FaultyFeed(InMemoryFeed(), plan.injector())
        with pytest.raises(TransientFault):
            feed.partition("com", 0)

    def test_delayed_partition_converges_via_reordering(self):
        """A withheld partition re-emitted after the stream ends fills
        its gap through the quarantine buffer — no skip needed."""
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec("feed.partition", "delay", keys=("com",), times=1),
            ),
        )
        feed = FaultyFeed(InMemoryFeed(), plan.injector())
        days = [partition.day for partition in feed.days()]
        assert days != list(range(HORIZON))
        assert sorted(days) == list(range(HORIZON))
        stream = engine()
        stream.ingest_feed(
            FaultyFeed(InMemoryFeed(), plan.injector()).days()
        )
        assert state_digest(stream) == clean_digest()
