"""Scope quarantine escalation and release in the stream engine.

Satellite check for ``release_quarantine``: a poisoned day quarantines
the scope (never kills the run), dropped days become holes, and after a
release plus redelivery the scope converges to exactly the clean state.
"""

import pytest

from repro.core.references import RefType
from repro.faults.inject import PoisonedRow
from repro.measurement.scheduler import DayPartition
from repro.measurement.snapshot import DomainObservation
from repro.stream.checkpoint import state_digest
from repro.stream.engine import (
    APPLIED,
    DROPPED,
    POISONED,
    RECONCILED,
    StreamEngine,
)

HORIZON = 10
DOMAINS = ("prot-a.com", "plain-b.com")


class StubCatalog:
    def match(self, observation):
        if observation.domain.startswith("prot"):
            return {"StubDPS": frozenset({RefType.NS})}
        return {}


def partition(day):
    rows = [
        DomainObservation(
            day=day,
            domain=name,
            tld="com",
            ns_names=(f"ns1.{name}.",),
            apex_addrs=("192.0.2.1",),
            asns=frozenset({64500}),
        )
        for name in DOMAINS
    ]
    return DayPartition(
        source="com", day=day, zone_size=len(rows), observations=rows
    )


def poisoned_partition(day):
    return DayPartition(
        source="com",
        day=day,
        zone_size=len(DOMAINS),
        observations=[PoisonedRow()],
    )


def engine():
    return StreamEngine(HORIZON, catalog=StubCatalog(), sources=("com",))


def clean_engine(days):
    stream = engine()
    for day in range(days):
        stream.ingest(partition(day))
    return stream


class TestPoisonEscalation:
    def test_poisoned_day_quarantines_scope_not_run(self):
        stream = clean_engine(2)
        assert stream.ingest(poisoned_partition(2)) == POISONED
        assert stream.is_quarantined("gtld")
        assert "(com, 2)" in stream.quarantined_scopes["gtld"]
        assert stream.missing_days("com") == [2]

    def test_quarantined_scope_drops_subsequent_days(self):
        stream = clean_engine(2)
        stream.ingest(poisoned_partition(2))
        assert stream.ingest(partition(3)) == DROPPED
        assert stream.ingest(partition(4)) == DROPPED
        assert stream.partitions_dropped == 2
        assert stream.missing_days("com") == [2, 3, 4]
        # The applied state froze at the last clean day.
        assert stream.partitions_applied == 2

    def test_poisoned_row_reads_fail_loudly(self):
        row = PoisonedRow()
        with pytest.raises(ValueError, match="poisoned observation row"):
            row.ns_names


class TestRelease:
    def quarantined_stream(self):
        stream = clean_engine(2)
        stream.ingest(poisoned_partition(2))
        stream.ingest(partition(3))
        stream.ingest(partition(4))
        return stream

    def test_release_returns_reason(self):
        stream = self.quarantined_stream()
        reason = stream.release_quarantine("gtld")
        assert "poisoned partition" in reason
        assert not stream.is_quarantined("gtld")

    def test_release_unquarantined_scope_rejected(self):
        stream = engine()
        with pytest.raises(ValueError, match="not quarantined"):
            stream.release_quarantine("gtld")

    def test_quarantine_unknown_scope_rejected(self):
        with pytest.raises(ValueError, match="unknown scope"):
            engine().quarantine_scope("mars", "why not")

    def test_scope_resumes_cleanly_after_good_day(self):
        stream = self.quarantined_stream()
        stream.release_quarantine("gtld")
        assert stream.ingest(partition(5)) == APPLIED

    def test_redelivery_heals_to_clean_state(self):
        stream = self.quarantined_stream()
        stream.release_quarantine("gtld")
        assert stream.ingest(partition(5)) == APPLIED
        outcomes = [stream.ingest(partition(day)) for day in (2, 3, 4)]
        assert outcomes == [RECONCILED] * 3
        assert stream.missing_days("com") == []
        clean = clean_engine(6)
        # The detection state converges exactly; only the ingest-journey
        # counters (late arrivals, drops) remember the incident.
        assert (
            stream.scope("gtld").to_dict() == clean.scope("gtld").to_dict()
        )
        assert stream.next_day("com") == clean.next_day("com")
        assert stream.detection("gtld") == clean.detection("gtld")
        assert stream.late_arrivals == 3
        assert stream.partitions_dropped == 2


class TestQuarantineSerialization:
    def test_roundtrip_preserves_quarantine_state(self):
        stream = clean_engine(2)
        stream.ingest(poisoned_partition(2))
        stream.ingest(partition(3))
        payload = stream.to_dict()
        restored = StreamEngine.from_dict(payload, catalog=StubCatalog())
        assert restored.is_quarantined("gtld")
        assert restored.quarantined_scopes == stream.quarantined_scopes
        assert restored.partitions_dropped == stream.partitions_dropped
        assert state_digest(restored) == state_digest(stream)

    def test_restored_engine_can_release_and_heal(self):
        stream = clean_engine(2)
        stream.ingest(poisoned_partition(2))
        stream.ingest(partition(3))
        restored = StreamEngine.from_dict(
            stream.to_dict(), catalog=StubCatalog()
        )
        restored.release_quarantine("gtld")
        restored.ingest(partition(4))
        for day in (2, 3):
            assert restored.ingest(partition(day)) == RECONCILED
        clean = clean_engine(5)
        assert (
            restored.scope("gtld").to_dict()
            == clean.scope("gtld").to_dict()
        )
