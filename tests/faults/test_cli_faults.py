"""CLI surface of the fault harness: ``repro faults`` and ``--fault-plan``."""

from repro.cli import main
from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec

SCALE = ["--scale", "60000", "--seed", "7"]


class TestFaultsCommand:
    def test_list_sites_names_every_site(self, capsys):
        code = main(["faults", "--list-sites"])
        out = capsys.readouterr().out
        assert code == 0
        for site, (_description, kinds) in FAULT_SITES.items():
            assert site in out
            for kind in kinds:
                assert kind in out

    def test_list_sites_is_the_default(self, capsys):
        code = main(["faults"])
        assert code == 0
        assert "storage.segment_read" in capsys.readouterr().out

    def test_example_plan_parses_back(self, capsys):
        code = main(["faults", "--example-plan"])
        out = capsys.readouterr().out
        assert code == 0
        plan = FaultPlan.from_json(out)
        assert plan.specs


class TestStudyWithFaultPlan:
    def plan_path(self, tmp_path, plan):
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        return str(path)

    def test_faulted_study_completes_and_reports(self, tmp_path, capsys):
        path = self.plan_path(
            tmp_path,
            FaultPlan(
                seed=23,
                specs=(
                    FaultSpec("prober.observe", "transient", rate=0.05),
                ),
            ),
        )
        code = main(
            ["study", "--artifact", "table1", "--fault-plan", path] + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert ";; faults:" in out
        assert "Table 1" in out

    def test_quarantined_scope_skips_its_artifacts(self, tmp_path, capsys):
        path = self.plan_path(
            tmp_path,
            FaultPlan(
                seed=23,
                specs=(
                    FaultSpec("study.detect", "poison", keys=("nl", "alexa")),
                ),
            ),
        )
        code = main(
            ["study", "--artifact", "fig6", "--artifact", "table1",
             "--fault-plan", path] + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert ";; fig6: skipped" in out
        assert ";; quarantined nl:" in out
        assert ";; quarantined alexa:" in out
        assert "Table 1" in out

    def test_missing_plan_file_is_a_usage_error(self, capsys):
        code = main(
            ["study", "--fault-plan", "/nonexistent/plan.json"] + SCALE
        )
        assert code == 2
        assert "fault plan" in capsys.readouterr().err

    def test_invalid_plan_json_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        code = main(["study", "--fault-plan", str(path)] + SCALE)
        assert code == 2
