"""Transport faults: resolver retry and the wire prober's degradation."""

import ipaddress

import pytest

from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.resolver import ResolutionError, StubResolver
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.server import AuthoritativeServer
from repro.dnscore.transport import SimulatedNetwork
from repro.dnscore.wire import decode_message, encode_message
from repro.dnscore.zone import Zone
from repro.faults.inject import FaultyNetwork
from repro.faults.plan import FaultLog, FaultPlan, FaultSpec
from repro.measurement.prober import WireProber

SERVER_IP = "192.0.2.20"


def name(text):
    return DomainName.from_text(text)


def one_server_network():
    net = SimulatedNetwork()
    zone = Zone(
        name("examp.com"),
        SOAData(name("ns.invalid"), name("host.invalid"), 1),
    )
    zone.add("examp.com", RRType.NS, "ns.examp.com.")
    zone.add("examp.com", RRType.A, "203.0.113.1")
    server = AuthoritativeServer("examp")
    server.attach_zone(zone)
    net.register(
        ipaddress.ip_address(SERVER_IP),
        lambda b: encode_message(server.handle_query(decode_message(b))),
    )
    return net


def faulty_resolver(kind, **spec_kwargs):
    log = FaultLog()
    plan = FaultPlan(
        seed=13,
        specs=(FaultSpec("transport.query", kind, **spec_kwargs),),
    )
    network = FaultyNetwork(one_server_network(), plan.injector(log))
    return StubResolver(network, SERVER_IP), log


class TestResolverRetry:
    def test_single_timeout_is_retried_through(self):
        resolver, log = faulty_resolver("timeout", times=1)
        response = resolver.query(name("examp.com"), RRType.A)
        assert response.rcode == Rcode.NOERROR
        assert response.answer_rrs(RRType.A)
        assert log.to_dict()["injected"] == {"transport.query/timeout": 1}

    def test_single_short_read_is_retried_through(self):
        """A truncated datagram is operationally a lost one: the decode
        error is absorbed and the query retried."""
        resolver, _log = faulty_resolver("short_read", times=1)
        response = resolver.query(name("examp.com"), RRType.A)
        assert response.rcode == Rcode.NOERROR
        assert response.answer_rrs(RRType.A)

    @pytest.mark.parametrize("kind", ["timeout", "short_read"])
    def test_persistent_fault_exhausts_to_typed_error(self, kind):
        resolver, _log = faulty_resolver(kind)
        with pytest.raises(ResolutionError):
            resolver.query(name("examp.com"), RRType.A)

    def test_malformed_rdata_never_leaks_decode_errors(self):
        resolver, _log = faulty_resolver("malformed_rdata")
        try:
            resolver.query(name("examp.com"), RRType.A)
        except ResolutionError:
            pass  # exhausting retries is an acceptable outcome


class TestWireProberDegradation:
    def test_dead_network_degrades_instead_of_dying(
        self, tiny_world, monkeypatch
    ):
        plan = FaultPlan(
            seed=13, specs=(FaultSpec("transport.query", "timeout"),)
        )
        injector = plan.injector()
        original = tiny_world.materialize_dns

        def faulty_materialize(day, names, loss_rate=0.0, seed=0):
            network, roots = original(
                day, names, loss_rate=loss_rate, seed=seed
            )
            return FaultyNetwork(network, injector), roots

        monkeypatch.setattr(
            tiny_world, "materialize_dns", faulty_materialize
        )
        names = sorted(tiny_world.domains)[:3]
        day = 0
        alive = [
            domain
            for domain in names
            if tiny_world.domains[domain].alive(day)
        ]
        prober = WireProber(tiny_world)
        observations = prober.observe_day(names, day)
        # Every lookup failed, yet the sweep completed: one (empty)
        # observation per living domain, with the damage counted.
        assert len(observations) == len(alive)
        assert prober.degraded_lookups > 0
        for observation in observations:
            assert observation.ns_names == ()
            assert observation.apex_addrs == ()
