"""Unit tests for fault plans, injectors, and the fault log."""

import pytest

from repro.faults.plan import (
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultSpec,
)
from repro.faults.runtime import fault_suppression


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("not.a.site", "transient")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="does not support kind"):
            FaultSpec("feed.partition", "worker_crash")

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_rate_bounds(self, rate):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("feed.partition", "transient", rate=rate)

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("feed.partition", "transient", times=0)

    def test_every_registered_kind_constructs(self):
        for site, (_, kinds) in FAULT_SITES.items():
            for kind in kinds:
                assert FaultSpec(site, kind).site == site


class TestPlanSerialization:
    def plan(self):
        return FaultPlan(
            seed=42,
            specs=(
                FaultSpec("feed.partition", "transient", rate=0.25),
                FaultSpec(
                    "study.detect", "poison", keys=("nl",), times=1
                ),
            ),
        )

    def test_json_roundtrip(self):
        plan = self.plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_roundtrip(self, tmp_path):
        plan = self.plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_json_is_canonical(self):
        plan = self.plan()
        assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()


class TestInjectorDeterminism:
    def decisions(self, plan, keys):
        injector = plan.injector()
        return [injector.fire("feed.partition", key=key) for key in keys]

    def test_same_plan_same_decisions(self):
        plan = FaultPlan(
            seed=7, specs=(FaultSpec("feed.partition", "transient", rate=0.5),)
        )
        keys = [f"k{i}" for i in range(50)]
        assert self.decisions(plan, keys) == self.decisions(plan, keys)

    def test_decisions_are_order_independent(self):
        """A key's decision doesn't depend on the global call order.

        This is what makes fault schedules identical between serial runs
        and sharded parallel runs, where per-key call order differs.
        """
        plan = FaultPlan(
            seed=9, specs=(FaultSpec("feed.partition", "transient", rate=0.5),)
        )
        keys = [f"k{i}" for i in range(50)]
        forward = dict(zip(keys, self.decisions(plan, keys)))
        backward = dict(
            zip(reversed(keys), self.decisions(plan, list(reversed(keys))))
        )
        assert forward == backward

    def test_different_seeds_differ(self):
        keys = [f"k{i}" for i in range(64)]
        spec = FaultSpec("feed.partition", "transient", rate=0.5)
        a = self.decisions(FaultPlan(seed=1, specs=(spec,)), keys)
        b = self.decisions(FaultPlan(seed=2, specs=(spec,)), keys)
        assert a != b

    def test_rate_is_roughly_respected(self):
        plan = FaultPlan(
            seed=3,
            specs=(FaultSpec("feed.partition", "transient", rate=0.25),),
        )
        fired = sum(
            1
            for event in self.decisions(
                plan, [f"k{i}" for i in range(400)]
            )
            if event is not None
        )
        assert 60 <= fired <= 140  # expectation 100

    def test_retry_draws_fresh_decision_per_occurrence(self):
        plan = FaultPlan(
            seed=5, specs=(FaultSpec("feed.partition", "transient", rate=0.5),)
        )
        injector = plan.injector()
        outcomes = [
            injector.fire("feed.partition", key="same") is not None
            for _ in range(40)
        ]
        assert True in outcomes and False in outcomes


class TestInjectorTargeting:
    def test_key_filter(self):
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec("study.detect", "poison", keys=("nl",)),),
        )
        injector = plan.injector()
        assert injector.fire("study.detect", key="gtld") is None
        event = injector.fire("study.detect", key="nl")
        assert event == FaultEvent("study.detect", "poison", "nl")

    def test_site_filter(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("feed.partition", "transient"),)
        )
        injector = plan.injector()
        assert injector.fire("prober.observe", key="x") is None
        assert injector.fire("feed.partition", key="x") is not None

    def test_times_bounds_firings(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("feed.partition", "transient", times=2),)
        )
        injector = plan.injector()
        fired = [
            injector.fire("feed.partition", key=f"k{i}") is not None
            for i in range(10)
        ]
        assert sum(fired) == 2
        assert fired[:2] == [True, True]

    def test_suppression_blocks_firing(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("feed.partition", "transient"),)
        )
        injector = plan.injector()
        with fault_suppression():
            assert injector.fire("feed.partition", key="x") is None
        assert injector.fire("feed.partition", key="x") is not None

    def test_injection_recorded_in_log(self):
        log = FaultLog()
        plan = FaultPlan(
            seed=1, specs=(FaultSpec("feed.partition", "transient"),)
        )
        injector = FaultInjector(plan, log=log)
        injector.fire("feed.partition", key="x")
        assert log.to_dict()["injected"] == {"feed.partition/transient": 1}
        assert injector.fired_counts() == [1]


class TestFaultLog:
    def test_clean_log(self):
        log = FaultLog()
        assert log.is_clean()
        assert log.injections() == 0

    def test_counters_roundtrip(self):
        log = FaultLog()
        log.record_injection(FaultEvent("feed.partition", "transient"))
        log.record_retry("feed.partition", backoff_ticks=3)
        log.record_recovery("feed.partition")
        log.record_drop("storage.segment_read", count=2)
        log.record_quarantine("nl", "poisoned")
        log.record_shard_retry()
        payload = log.to_dict()
        assert FaultLog.from_dict(payload).to_dict() == payload
        assert not log.is_clean()
        assert log.backoff_ticks == 3
        assert log.quarantined_scopes == {"nl": "poisoned"}

    def test_release_moves_scope_out_of_quarantine(self):
        log = FaultLog()
        log.record_quarantine("nl", "poisoned")
        log.record_release("nl")
        payload = log.to_dict()
        assert payload["quarantined"] == {}
        assert payload["released"] == ["nl"]

    def test_merge_sums_counters(self):
        a, b = FaultLog(), FaultLog()
        for log in (a, b):
            log.record_injection(FaultEvent("feed.partition", "transient"))
            log.record_retry("feed.partition", backoff_ticks=1)
        b.record_quarantine("gtld", "first reason")
        merged = FaultLog.merge([a, b])
        payload = merged.to_dict()
        assert payload["injected"] == {"feed.partition/transient": 2}
        assert payload["retries"] == {"feed.partition": 2}
        assert merged.backoff_ticks == 2
        assert merged.quarantined_scopes == {"gtld": "first reason"}

    def test_first_quarantine_reason_sticks(self):
        log = FaultLog()
        log.record_quarantine("nl", "first")
        log.record_quarantine("nl", "second")
        assert log.quarantined_scopes == {"nl": "first"}
