"""Segment-read faults: corruption helpers and the hardened store load."""

import json
import os

import pytest

from repro.faults.inject import corrupt_blob, corrupt_store_files
from repro.faults.plan import FaultPlan, FaultSpec
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore, StorageError


def observation(domain, day, tld="com"):
    return DomainObservation(
        day=day,
        domain=domain,
        tld=tld,
        ns_names=(f"ns1.{domain}.",),
        apex_addrs=("192.0.2.1",),
        asns=frozenset({64500}),
    )


def populated_store():
    store = ColumnStore()
    for day in range(3):
        store.append(
            "com", day, [observation(f"a{i}.com", day) for i in range(4)]
        )
        store.append(
            "nl",
            day,
            [observation(f"b{i}.nl", day, tld="nl") for i in range(2)],
        )
    return store


def rows_of(store):
    return {
        key: list(store.rows(*key)) for key in store.partitions()
    }


class TestCorruptBlob:
    def test_truncate_halves(self):
        blob = bytes(range(16))
        assert corrupt_blob(blob, "truncate") == blob[:8]

    def test_bitflip_is_deterministic_and_single_bit(self):
        blob = bytes(range(64))
        mutated = corrupt_blob(blob, "bitflip", salt="com/1")
        assert mutated == corrupt_blob(blob, "bitflip", salt="com/1")
        assert mutated != blob
        diffs = [
            (a ^ b) for a, b in zip(blob, mutated) if a != b
        ]
        assert len(diffs) == 1
        assert bin(diffs[0]).count("1") == 1

    def test_different_salts_differ(self):
        blob = bytes(range(64))
        assert corrupt_blob(blob, "bitflip", salt="com/1") != corrupt_blob(
            blob, "bitflip", salt="nl/2"
        )

    def test_empty_blob_untouched(self):
        assert corrupt_blob(b"", "truncate") == b""

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="corruption kind"):
            corrupt_blob(b"xy", "melt")


class TestCorruptStoreFiles:
    def plan(self, kind, keys=None):
        return FaultPlan(
            seed=11,
            specs=(
                FaultSpec("storage.segment_read", kind, keys=keys),
            ),
        )

    def test_missing_removes_segment_file(self, tmp_path):
        store = populated_store()
        store.save(str(tmp_path))
        affected = corrupt_store_files(
            str(tmp_path), self.plan("missing", keys=("com/1",)).injector()
        )
        # Sorted partition order: ("com", 1) is the second segment.
        assert affected == [
            str(tmp_path / "segments" / "g0-000001.rseg")
        ]
        assert not os.path.exists(affected[0])

    def test_bitflip_touches_one_segment_file(self, tmp_path):
        store = populated_store()
        store.save(str(tmp_path))
        affected = corrupt_store_files(
            str(tmp_path), self.plan("bitflip", keys=("nl/0",)).injector()
        )
        assert len(affected) == 1
        assert affected[0].endswith(".rseg")

    def test_legacy_missing_removes_partition_dir(self, tmp_path):
        store = populated_store()
        store.save_legacy(str(tmp_path))
        affected = corrupt_store_files(
            str(tmp_path), self.plan("missing", keys=("com/1",)).injector()
        )
        assert affected == [str(tmp_path / "com" / "1")]
        assert not os.path.exists(affected[0])

    def test_legacy_bitflip_touches_one_column_file(self, tmp_path):
        store = populated_store()
        store.save_legacy(str(tmp_path))
        affected = corrupt_store_files(
            str(tmp_path), self.plan("bitflip", keys=("nl/0",)).injector()
        )
        assert len(affected) == 1
        assert affected[0].endswith(".col")
        assert os.sep + "nl" + os.sep + "0" + os.sep in affected[0]


class TestHardenedLoad:
    def damage(self, directory, kind, keys):
        plan = FaultPlan(
            seed=11,
            specs=(FaultSpec("storage.segment_read", kind, keys=keys),),
        )
        return corrupt_store_files(str(directory), plan.injector())

    @pytest.mark.parametrize("kind", ["truncate", "bitflip", "missing"])
    def test_damage_raises_typed_error(self, tmp_path, kind):
        populated_store().save(str(tmp_path))
        self.damage(tmp_path, kind, keys=("com/1",))
        with pytest.raises(StorageError):
            ColumnStore.load(str(tmp_path))

    @pytest.mark.parametrize("kind", ["truncate", "bitflip", "missing"])
    def test_lenient_load_drops_only_damaged_partition(
        self, tmp_path, kind
    ):
        store = populated_store()
        store.save(str(tmp_path))
        self.damage(tmp_path, kind, keys=("com/1",))
        loaded = ColumnStore.load(str(tmp_path), on_error="skip")
        assert [
            (source, day)
            for source, day, _reason in loaded.skipped_partitions
        ] == [("com", 1)]
        expected = rows_of(store)
        expected.pop(("com", 1))
        assert rows_of(loaded) == expected

    def test_checksum_mismatch_is_named(self, tmp_path):
        populated_store().save(str(tmp_path))
        self.damage(tmp_path, "bitflip", keys=("com/0",))
        with pytest.raises(StorageError, match="checksum mismatch"):
            ColumnStore.load(str(tmp_path))

    @pytest.mark.parametrize("kind", ["truncate", "bitflip", "missing"])
    def test_legacy_lenient_load_drops_only_damaged_partition(
        self, tmp_path, kind
    ):
        store = populated_store()
        store.save_legacy(str(tmp_path))
        self.damage(tmp_path, kind, keys=("com/1",))
        loaded = ColumnStore.load(str(tmp_path), on_error="skip")
        assert [
            (source, day)
            for source, day, _reason in loaded.skipped_partitions
        ] == [("com", 1)]
        expected = rows_of(store)
        expected.pop(("com", 1))
        assert rows_of(loaded) == expected

    def test_legacy_manifest_without_checksums_loads(self, tmp_path):
        store = populated_store()
        store.save_legacy(str(tmp_path))
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest:
            del entry["checksums"]
        manifest_path.write_text(json.dumps(manifest))
        loaded = ColumnStore.load(str(tmp_path))
        assert rows_of(loaded) == rows_of(store)

    def test_clean_roundtrip_is_exact(self, tmp_path):
        store = populated_store()
        store.save(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert loaded.skipped_partitions == []
        assert rows_of(loaded) == rows_of(store)

    def test_invalid_on_error_rejected(self, tmp_path):
        populated_store().save(str(tmp_path))
        with pytest.raises(ValueError, match="on_error"):
            ColumnStore.load(str(tmp_path), on_error="ignore")
