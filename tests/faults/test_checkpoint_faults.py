"""Checkpoint damage: digest verification, rotation, and fallback."""

import hashlib
import json
import zlib

import pytest

from repro.core.references import RefType
from repro.faults.inject import corrupt_blob
from repro.faults.plan import FaultPlan, FaultSpec
from repro.measurement.scheduler import DayPartition
from repro.measurement.snapshot import DomainObservation
from repro.stream.checkpoint import (
    PREVIOUS_SUFFIX,
    CheckpointError,
    load_checkpoint,
    load_checkpoint_with_fallback,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine

_MAGIC = b"REPROCKPT"
HORIZON = 8


class StubCatalog:
    def match(self, observation):
        if observation.domain.startswith("prot"):
            return {"StubDPS": frozenset({RefType.NS})}
        return {}


def partition(day):
    rows = [
        DomainObservation(
            day=day,
            domain=name,
            tld="com",
            ns_names=(f"ns1.{name}.",),
            apex_addrs=("192.0.2.1",),
            asns=frozenset({64500}),
        )
        for name in ("prot-a.com", "plain-b.com")
    ]
    return DayPartition(
        source="com", day=day, zone_size=len(rows), observations=rows
    )


def engine_at(days):
    engine = StreamEngine(HORIZON, catalog=StubCatalog(), sources=("com",))
    for day in range(days):
        engine.ingest(partition(day))
    return engine


def rewrite(path, mutate):
    """Decompress a checkpoint, let *mutate* edit the document, rewrite."""
    with open(path, "rb") as handle:
        blob = handle.read()
    document = json.loads(zlib.decompress(blob[len(_MAGIC):]))
    mutate(document)
    payload = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(_MAGIC + zlib.compress(payload, 6))


class TestLoadDamage:
    def test_clean_roundtrip(self, tmp_path):
        engine = engine_at(3)
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine, path)
        loaded = load_checkpoint(path, catalog=StubCatalog())
        assert state_digest(loaded) == state_digest(engine)

    def test_non_magic_file(self, tmp_path):
        path = tmp_path / "ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="not a stream checkpoint"):
            load_checkpoint(str(path))

    def test_truncated_blob(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine_at(3), path)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(corrupt_blob(blob, "truncate"))
        with pytest.raises(CheckpointError, match="decompression failed"):
            load_checkpoint(str(path))

    def test_tampered_state_fails_digest(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine_at(3), path)

        def tamper(document):
            document["engine"]["partitions_applied"] += 1

        rewrite(path, tamper)
        with pytest.raises(CheckpointError, match="digest mismatch"):
            load_checkpoint(str(path))

    def test_unsupported_format(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine_at(1), path)
        rewrite(path, lambda document: document.update(format=99))
        with pytest.raises(CheckpointError, match="unsupported"):
            load_checkpoint(str(path))

    def test_missing_engine_payload(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine_at(1), path)
        rewrite(path, lambda document: document.pop("engine"))
        with pytest.raises(CheckpointError, match="no engine payload"):
            load_checkpoint(str(path))

    def test_format1_without_digest_still_loads(self, tmp_path):
        path = str(tmp_path / "ckpt")
        engine = engine_at(2)
        save_checkpoint(engine, path)

        def downgrade(document):
            document["format"] = 1
            document.pop("digest")
            # A format-1 writer could not have produced a digest, so a
            # bit-flip here goes undetected — exactly why format 2 exists.
            document["engine"]["late_arrivals"] = 0

        rewrite(path, downgrade)
        loaded = load_checkpoint(path, catalog=StubCatalog())
        assert state_digest(loaded) == state_digest(engine)


class TestRotationAndFallback:
    def save_twice(self, tmp_path):
        path = str(tmp_path / "ckpt")
        first = engine_at(2)
        save_checkpoint(first, path)
        second = engine_at(4)
        save_checkpoint(second, path)
        return path, first, second

    def test_second_save_rotates_previous(self, tmp_path):
        path, first, second = self.save_twice(tmp_path)
        previous = load_checkpoint(
            path + PREVIOUS_SUFFIX, catalog=StubCatalog()
        )
        assert state_digest(previous) == state_digest(first)
        current = load_checkpoint(path, catalog=StubCatalog())
        assert state_digest(current) == state_digest(second)

    def test_fallback_recovers_previous_good(self, tmp_path):
        path, first, _second = self.save_twice(tmp_path)
        # A torn write: the current checkpoint only half-landed.
        injector = FaultPlan(
            seed=3, specs=(FaultSpec("checkpoint.save", "torn_write"),)
        ).injector()
        event = injector.fire("checkpoint.save", key=path)
        assert event is not None and event.kind == "torn_write"
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(corrupt_blob(blob, "truncate", salt=path))
        engine, used_fallback = load_checkpoint_with_fallback(
            path, catalog=StubCatalog()
        )
        assert used_fallback
        assert state_digest(engine) == state_digest(first)

    def test_clean_load_reports_no_fallback(self, tmp_path):
        path, _first, second = self.save_twice(tmp_path)
        engine, used_fallback = load_checkpoint_with_fallback(
            path, catalog=StubCatalog()
        )
        assert not used_fallback
        assert state_digest(engine) == state_digest(second)

    def test_both_damaged_raises_original_error(self, tmp_path):
        path, _first, _second = self.save_twice(tmp_path)
        for target in (path, path + PREVIOUS_SUFFIX):
            with open(target, "wb") as handle:
                handle.write(b"garbage")
        with pytest.raises(CheckpointError, match="not a stream checkpoint"):
            load_checkpoint_with_fallback(path, catalog=StubCatalog())

    def test_damaged_without_previous_raises(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_checkpoint(engine_at(1), path)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        with pytest.raises(CheckpointError):
            load_checkpoint_with_fallback(path, catalog=StubCatalog())

    def test_resume_from_fallback_converges(self, tmp_path):
        """Resuming from the rotated checkpoint replays the overlap
        harmlessly (duplicates skipped) and converges to the clean state."""
        path, _first, _second = self.save_twice(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        engine, used_fallback = load_checkpoint_with_fallback(
            path, catalog=StubCatalog()
        )
        assert used_fallback
        for day in range(engine.resume_day("com") - 2, 6):
            engine.ingest(partition(day), on_duplicate="skip")
        assert state_digest(engine) == state_digest(engine_at(6))
