"""The chaos acceptance invariant (and the CI ``chaos-smoke`` target).

Under any injected non-fatal fault schedule the study run must
*complete* and be byte-identical to the clean run on every scope that
was not quarantined — serial and sharded-parallel alike. Three fixed
fault-plan seeds keep the check deterministic while exercising
different schedules (which scopes get poisoned, whether the prober's
retry budget is ever exhausted, which shard loses its worker).
"""

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import SCOPE_EXPORT_KEYS, scope_digest, strip_scopes
from repro.parallel.backend import LocalPoolBackend, SerialBackend
from repro.parallel.cluster import ClusterBackend, ClusterSchedule
from repro.reporting.export import study_to_dict
from repro.world.scenario import ScenarioConfig, build_paper_world

CHAOS_SCALE = 120000
CHAOS_WORLD_SEED = 2016

#: The fixed plan seeds CI's chaos-smoke job runs (keep in sync with
#: .github/workflows/ci.yml).
CHAOS_SEEDS = (11, 23, 37)


def chaos_plan(seed):
    """A mixed fault schedule: flaky prober, poisoned detection, and a
    worker death (the last only fires on parallel runs — serial runs
    never cross the ``parallel.executor`` seam)."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec("prober.observe", "transient", rate=0.08),
            FaultSpec("study.detect", "poison", rate=0.4),
            FaultSpec("parallel.executor", "worker_crash", rate=0.3),
        ),
    )


@pytest.fixture(scope="module")
def chaos_world():
    return build_paper_world(
        ScenarioConfig(scale=CHAOS_SCALE, seed=CHAOS_WORLD_SEED)
    )


@pytest.fixture(scope="module")
def clean_payload(chaos_world):
    return study_to_dict(AdoptionStudy(chaos_world).run())


def assert_invariant(results, clean_payload):
    payload = study_to_dict(results)
    quarantined = sorted(results.quarantined_scopes)
    # The faulted run is byte-identical to the clean run everywhere
    # outside the quarantined scopes.
    assert scope_digest(payload, quarantined) == scope_digest(
        clean_payload, quarantined
    )
    # Degradation is visible, never silent: the export names every
    # quarantined scope and the log agrees.
    assert results.fault_log is not None
    assert payload["quarantined"] == dict(results.quarantined_scopes)
    assert (
        results.fault_log.quarantined_scopes == results.quarantined_scopes
    )
    assert set(quarantined) <= set(SCOPE_EXPORT_KEYS)
    return payload


class TestChaosInvariant:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_serial(self, chaos_world, clean_payload, seed):
        results = AdoptionStudy(
            chaos_world, fault_plan=chaos_plan(seed)
        ).run()
        assert_invariant(results, clean_payload)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_parallel(self, chaos_world, clean_payload, seed):
        results = AdoptionStudy(
            chaos_world, fault_plan=chaos_plan(seed)
        ).run(parallel=True, workers=2, shard_count=4)
        assert_invariant(results, clean_payload)

    def test_schedules_actually_inject(self, chaos_world, clean_payload):
        """The three seeds are not vacuous: at least one injects faults
        and at least one escalates to a quarantine."""
        injections = 0
        quarantines = 0
        for seed in CHAOS_SEEDS:
            results = AdoptionStudy(
                chaos_world, fault_plan=chaos_plan(seed)
            ).run()
            injections += results.fault_log.injections()
            quarantines += len(results.quarantined_scopes)
        assert injections > 0
        assert quarantines > 0

    def test_empty_plan_matches_clean_run_exactly(
        self, chaos_world, clean_payload
    ):
        results = AdoptionStudy(
            chaos_world, fault_plan=FaultPlan(seed=1, specs=())
        ).run()
        payload = study_to_dict(results)
        assert payload["quarantined"] == {}
        assert results.fault_log.is_clean()
        assert strip_scopes(payload, ()) == strip_scopes(clean_payload, ())

    @pytest.mark.parametrize(
        "backend",
        [
            lambda: SerialBackend(shard_count=4),
            lambda: LocalPoolBackend(workers=2, shard_count=4),
            lambda: ClusterBackend(
                nodes=2,
                shard_count=4,
                schedule=ClusterSchedule.scripted(
                    (2, "leave", 0), (5, "join", 9)
                ),
            ),
        ],
        ids=["serial-backend", "pool-w2", "cluster-2-churn"],
    )
    def test_each_backend_upholds_the_invariant(
        self, chaos_world, clean_payload, backend
    ):
        """One fixed-seed scenario per backend: a faulted cluster run
        with mid-run worker loss stays byte-identical to the clean
        serial run on every non-quarantined scope."""
        results = AdoptionStudy(
            chaos_world, fault_plan=chaos_plan(CHAOS_SEEDS[0])
        ).run(parallel=True, backend=backend())
        assert_invariant(results, clean_payload)

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_serial_and_parallel_agree_under_faults(
        self, chaos_world, seed
    ):
        """Hash-keyed fault decisions make the schedule itself identical
        across execution layouts, so even the *degraded* results agree
        wherever both runs kept a scope healthy."""
        serial = AdoptionStudy(
            chaos_world, fault_plan=chaos_plan(seed)
        ).run()
        parallel = AdoptionStudy(
            chaos_world, fault_plan=chaos_plan(seed)
        ).run(parallel=True, workers=2, shard_count=4)
        union = sorted(
            set(serial.quarantined_scopes) | set(parallel.quarantined_scopes)
        )
        assert scope_digest(study_to_dict(serial), union) == scope_digest(
            study_to_dict(parallel), union
        )
