"""End-to-end invariants of the full study and Table 2 derivation."""

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.core.references import SignatureCatalog


class TestTable2Derivation:
    @pytest.fixture(scope="class")
    def fingerprints(self, study_world):
        return AdoptionStudy(study_world).derive_table2(day=30)

    def test_all_nine_derived(self, fingerprints):
        assert len(fingerprints) == 9

    def test_seed_asns_recovered(self, fingerprints):
        assert 13335 in fingerprints["CloudFlare"].asns
        assert {26415, 30060} <= fingerprints["Verisign"].asns

    def test_cloudflare_slds_recovered(self, fingerprints):
        assert "cloudflare.com" in fingerprints["CloudFlare"].ns_slds

    def test_incapsula_cname_sld_recovered(self, fingerprints):
        assert "incapdns.net" in fingerprints["Incapsula"].cname_slds

    def test_no_hoster_slds_absorbed(self, fingerprints, study_world):
        hoster_slds = {h.ns_sld for h in study_world.hosters}
        for result in fingerprints.values():
            assert not (result.ns_slds & hoster_slds), result.provider
            assert not (result.cname_slds & hoster_slds), result.provider

    def test_no_hoster_asns_absorbed(self, fingerprints, study_world):
        hoster_asns = {h.primary_asn() for h in study_world.hosters}
        for result in fingerprints.values():
            assert not (result.asns & hoster_asns), result.provider

    def test_derived_catalog_detects_like_paper_catalog(
        self, fingerprints, study_world
    ):
        """Detection with the derived Table 2 ≈ detection with ground truth."""
        from repro.measurement.scheduler import ClusterManager

        derived = SignatureCatalog(
            result.to_signature() for result in fingerprints.values()
        )
        truth = SignatureCatalog.paper_table2()
        manager = ClusterManager(study_world, enrich=True)
        rows = manager.measure_day("com", 30)
        derived_hits = {
            row.domain for row in rows if derived.match(row)
        }
        truth_hits = {row.domain for row in rows if truth.match(row)}
        # The derived catalog may miss references that are rare on the
        # chosen day, but must agree on the overwhelming majority.
        missing = truth_hits - derived_hits
        spurious = derived_hits - truth_hits
        assert len(missing) <= max(2, 0.05 * len(truth_hits))
        assert len(spurious) <= max(2, 0.02 * len(truth_hits))


class TestCrossArtifactConsistency:
    def test_fig2_combined_equals_sum_consistency(self, study_results):
        detection = study_results.detection_gtld
        for day in (0, 250, 549):
            total = sum(
                detection.any_use_by_tld.get(tld, [0] * (day + 1))[day]
                for tld in ("com", "net", "org")
            )
            assert detection.any_use_combined[day] == total

    def test_provider_totals_bounded_by_combined(self, study_results):
        detection = study_results.detection_gtld
        for day in (0, 250, 549):
            biggest = max(
                series.total[day]
                for series in detection.providers.values()
            )
            assert biggest <= detection.any_use_combined[day]

    def test_interval_days_match_series_mass(self, study_results):
        """Σ interval days per provider == Σ daily counts (same data)."""
        detection = study_results.detection_gtld
        for provider, series in detection.providers.items():
            interval_days = sum(
                interval.days
                for (domain, p), intervals in detection.intervals.items()
                if p == provider
                for interval in intervals
            )
            assert interval_days == sum(series.total), provider

    def test_dataset_dps_counts_match_zone_series(
        self, study_results, study_world
    ):
        from repro.measurement.snapshot import MEASUREMENTS_PER_DOMAIN_DAY

        for row in study_results.dataset_table:
            if row.source == "alexa":
                continue
            sizes = study_world.zone_size_series(row.source)
            window = sizes[row.start_day : row.start_day + row.days]
            assert row.data_points == (
                sum(window) * MEASUREMENTS_PER_DOMAIN_DAY
            )

    def test_growth_series_lengths(self, study_results):
        adoption = study_results.growth_gtld["DPS adoption"]
        assert len(adoption.raw) == study_results.horizon
        assert len(adoption.smoothed) == study_results.horizon
