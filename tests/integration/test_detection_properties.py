"""Property-based correctness of the streaming detector.

For random piecewise-constant observation histories, the detector's
intervals and daily series must equal what brute-force per-day matching
computes. This is the strongest guard on the run-length-compressed fast
path.
"""

from hypothesis import given, settings, strategies as st

from repro.core.detection import SegmentDetector, UseInterval
from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment

CATALOG = SignatureCatalog.paper_table2()
HORIZON = 60

#: A small universe of observation states: unprotected, three providers.
STATES = (
    DomainObservation(
        day=0, domain="d.com", tld="com",
        ns_names=("ns1.hostco-dns.com",), apex_addrs=("10.0.0.1",),
        asns=frozenset({64500}),
    ),
    DomainObservation(
        day=0, domain="d.com", tld="com",
        ns_names=("kate.ns.cloudflare.com",), apex_addrs=("10.1.0.1",),
        asns=frozenset({13335}),
    ),
    DomainObservation(
        day=0, domain="d.com", tld="com",
        ns_names=("ns1.hostco-dns.com",),
        www_cnames=("x.incapdns.net",), apex_addrs=("10.2.0.1",),
        asns=frozenset({19551}),
    ),
    DomainObservation(
        day=0, domain="d.com", tld="com",
        ns_names=("ns1.hostco-dns.com",), apex_addrs=("10.3.0.1",),
        asns=frozenset({26415}),
    ),
)


@st.composite
def histories(draw):
    """A random segmentation of [0, HORIZON) into observation states."""
    cut_count = draw(st.integers(min_value=0, max_value=8))
    cuts = sorted(
        set(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=HORIZON - 1),
                    min_size=cut_count,
                    max_size=cut_count,
                )
            )
        )
    )
    boundaries = [0] + cuts + [HORIZON]
    segments = []
    for start, end in zip(boundaries, boundaries[1:]):
        state = draw(st.integers(min_value=0, max_value=len(STATES) - 1))
        segments.append(ObservationSegment(start, end, STATES[state]))
    return segments


def brute_force(segments):
    """Per-day matching → daily counts and intervals, the slow way."""
    daily = {}
    for day in range(HORIZON):
        observation = None
        for segment in segments:
            if segment.start <= day < segment.end:
                observation = segment.observation
                break
        daily[day] = CATALOG.match(observation) if observation else {}
    intervals = {}
    for provider in {p for match in daily.values() for p in match}:
        runs = []
        run_start = None
        for day in range(HORIZON):
            used = provider in daily[day]
            if used and run_start is None:
                run_start = day
            if not used and run_start is not None:
                runs.append(UseInterval(run_start, day))
                run_start = None
        if run_start is not None:
            runs.append(UseInterval(run_start, HORIZON))
        intervals[provider] = runs
    series = {}
    for provider in intervals:
        series[provider] = [
            1 if provider in daily[day] else 0 for day in range(HORIZON)
        ]
    return intervals, series


@given(histories())
@settings(max_examples=120, deadline=None)
def test_detector_matches_brute_force(segments):
    detector = SegmentDetector(CATALOG, HORIZON)
    detector.process_domain("d.com", "com", segments)
    result = detector.result()

    expected_intervals, expected_series = brute_force(segments)

    got_intervals = {
        provider: intervals
        for (domain, provider), intervals in result.intervals.items()
    }
    assert got_intervals == expected_intervals

    for provider, series in expected_series.items():
        assert result.providers[provider].total == series

    combined_expected = [
        1 if any(series[day] for series in expected_series.values()) else 0
        for day in range(HORIZON)
    ]
    if expected_series:
        assert result.any_use_combined == combined_expected


@given(histories())
@settings(max_examples=60, deadline=None)
def test_detector_ref_breakdown_matches_brute_force(segments):
    detector = SegmentDetector(CATALOG, HORIZON)
    detector.process_domain("d.com", "com", segments)
    result = detector.result()

    for (domain, provider), _ in result.intervals.items():
        series = result.providers[provider]
        for ref, values in series.by_ref.items():
            for day in range(HORIZON):
                observation = None
                for segment in segments:
                    if segment.start <= day < segment.end:
                        observation = segment.observation
                        break
                expected = 0
                if observation is not None:
                    refs = CATALOG.match(observation).get(
                        provider, frozenset()
                    )
                    expected = 1 if ref in refs else 0
                assert values[day] == expected
