"""Equivalence: the Hadoop-style batch path equals the segment path.

The paper's pipeline is daily batch aggregation on a cluster; our fast
pipeline is streaming over run-length-compressed segments. On any given
day both must count exactly the same (domain, provider) references.
"""

import pytest

from repro.core.detection import SegmentDetector
from repro.core.references import SignatureCatalog
from repro.mapreduce.engine import run_job
from repro.mapreduce.jobs import daily_detection_job, reference_count_job
from repro.measurement.enrich import AsnEnricher
from repro.measurement.prober import FastProber
from repro.measurement.scheduler import ClusterManager

CATALOG = SignatureCatalog.paper_table2()
SAMPLE_DAYS = (0, 5, 100, 266, 410, 549)


@pytest.fixture(scope="module")
def segment_detection(tiny_world):
    prober = FastProber(tiny_world)
    enricher = AsnEnricher(tiny_world)
    detector = SegmentDetector(CATALOG, tiny_world.horizon)
    for name, timeline in tiny_world.domains.items():
        if timeline.tld not in ("com", "net", "org"):
            continue
        segments = enricher.enrich_segments(prober.observe_segments(name))
        detector.process_domain(name, timeline.tld, segments)
    return detector.result()


@pytest.fixture(scope="module")
def batch_counts(tiny_world):
    manager = ClusterManager(tiny_world, enrich=True)
    observations = []
    for day in SAMPLE_DAYS:
        for source in ("com", "net", "org"):
            observations.extend(manager.measure_day(source, day))
    totals = dict(run_job(daily_detection_job(CATALOG), observations))
    refs = dict(run_job(reference_count_job(CATALOG), observations))
    return totals, refs


def test_daily_totals_agree(segment_detection, batch_counts):
    totals, _ = batch_counts
    for day in SAMPLE_DAYS:
        for provider, series in segment_detection.providers.items():
            batch = totals.get((day, provider), 0)
            assert series.total[day] == batch, (day, provider)


def test_reference_breakdowns_agree(segment_detection, batch_counts):
    _, refs = batch_counts
    from repro.core.references import RefType

    for day in SAMPLE_DAYS:
        for provider, series in segment_detection.providers.items():
            for ref in RefType:
                streaming = (
                    series.by_ref[ref][day] if ref in series.by_ref else 0
                )
                batch = refs.get((day, provider, ref.value), 0)
                assert streaming == batch, (day, provider, ref)


def test_combined_any_use_agrees(tiny_world, segment_detection):
    """Cross-check the any-provider daily count against direct matching."""
    manager = ClusterManager(tiny_world, enrich=True)
    for day in (0, 410):
        rows = []
        for source in ("com", "net", "org"):
            rows.extend(manager.measure_day(source, day))
        direct = sum(1 for row in rows if CATALOG.match(row))
        assert segment_detection.any_use_combined[day] == direct
