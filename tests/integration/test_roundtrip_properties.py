"""Property-based round-trip guarantees on the serialisation formats."""

import ipaddress

from hypothesis import given, settings, strategies as st

from repro.dnscore.name import DomainName
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import Zone, parse_zone_text
from repro.dnscore.records import SOAData
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore
from repro.routing.pfx2as import Pfx2As, Pfx2AsEntry

_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1,
                 max_size=10)


@st.composite
def _pfx2as_entries(draw):
    prefixlen = draw(st.integers(min_value=8, max_value=28))
    base = draw(st.integers(min_value=0, max_value=2**prefixlen - 1))
    network = ipaddress.IPv4Network((base << (32 - prefixlen), prefixlen))
    origins = frozenset(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=4_000_000_000),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
    )
    return Pfx2AsEntry(network, origins)


@given(st.lists(_pfx2as_entries(), min_size=1, max_size=25))
@settings(max_examples=80, deadline=None)
def test_pfx2as_text_roundtrip(entries):
    dataset = Pfx2As(entries)
    parsed = Pfx2As.from_text(dataset.to_text())
    assert list(parsed) == list(dataset)


@given(
    hosts=st.lists(
        st.tuples(_label, st.integers(min_value=1, max_value=254)),
        min_size=0, max_size=15, unique_by=lambda t: t[0],
    ),
    aliases=st.lists(_label, min_size=0, max_size=5, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_zone_master_file_roundtrip(hosts, aliases):
    origin = DomainName.from_text("zone.example.com")
    soa = SOAData(
        DomainName.from_text("ns1.zone.example.com"),
        DomainName.from_text("host.zone.example.com"),
        serial=7,
    )
    zone = Zone(origin, soa)
    zone.add("zone.example.com", RRType.NS, "ns1.zone.example.com.")
    host_names = set()
    for label, octet in hosts:
        zone.add(
            f"{label}.zone.example.com", RRType.A, f"10.0.0.{octet}"
        )
        host_names.add(label)
    for alias in aliases:
        if alias in host_names or alias == "www":
            continue
        zone.add(
            f"{alias}-alias.zone.example.com",
            RRType.CNAME,
            "target.example.net.",
        )
    parsed = parse_zone_text(zone.to_text())
    assert parsed.origin == zone.origin
    assert parsed.to_text() == zone.to_text()


@st.composite
def _observations(draw):
    index = draw(st.integers(min_value=0, max_value=10_000))
    ns_count = draw(st.integers(min_value=0, max_value=3))
    return DomainObservation(
        day=draw(st.integers(min_value=0, max_value=549)),
        domain=f"d{index}.com",
        tld="com",
        ns_names=tuple(f"ns{i}.provider-dns.com" for i in range(ns_count)),
        apex_addrs=tuple(
            f"10.0.{draw(st.integers(min_value=0, max_value=255))}.1"
            for _ in range(draw(st.integers(min_value=0, max_value=2)))
        ),
        www_cnames=(
            (f"tok{index}.incapdns.net",)
            if draw(st.booleans())
            else ()
        ),
        asns=frozenset(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=70_000),
                    max_size=3,
                )
            )
        ),
    )


@given(st.lists(_observations(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_column_store_roundtrip(observations):
    day = observations[0].day
    normalised = [
        DomainObservation(
            day=day,
            domain=o.domain,
            tld=o.tld,
            ns_names=o.ns_names,
            apex_addrs=o.apex_addrs,
            www_cnames=o.www_cnames,
            asns=o.asns,
        )
        for o in observations
    ]
    store = ColumnStore()
    store.append("com", day, normalised)
    assert list(store.rows("com", day)) == normalised
    # The encoded form decodes to the same columns.
    decoded = store.decode_partition("com", day)
    assert decoded["domain"] == [o.domain for o in normalised]
    assert decoded["asns"] == [sorted(o.asns) for o in normalised]
