"""Fidelity: the fast prober must agree byte-for-byte with real resolution.

This is the test that justifies running 550-day sweeps through the fast
state-reading path: on sampled domains and days, a full wire-format
iterative resolution through materialised zones produces the *identical*
observation rows.
"""

import random

import pytest

from repro.measurement.prober import FastProber, WireProber


@pytest.fixture(scope="module")
def probers(tiny_world):
    return FastProber(tiny_world), WireProber(tiny_world)


def sample_names(world, day, count, rng):
    alive = [
        name
        for name, timeline in world.domains.items()
        if timeline.alive(day) and timeline.tld in ("com", "net", "org")
    ]
    return rng.sample(alive, min(count, len(alive)))


@pytest.mark.parametrize("day", [0, 100, 266, 410, 549])
def test_probers_agree_on_random_domains(tiny_world, probers, day):
    fast, wire = probers
    rng = random.Random(day)
    names = sample_names(tiny_world, day, 12, rng)
    fast_rows = {row.domain: row for row in fast.observe_day(names, day)}
    wire_rows = {row.domain: row for row in wire.observe_day(names, day)}
    assert set(fast_rows) == set(wire_rows)
    for domain in fast_rows:
        assert fast_rows[domain] == wire_rows[domain], domain


def test_probers_agree_on_third_party_domains(tiny_world, probers):
    """Cover the interesting configs: Wix CNAME chains, parked domains."""
    fast, wire = probers
    for party_name in ("Wix", "Sedo", "Namecheap", "ENOM"):
        party = tiny_world.thirdparties[party_name]
        names = party.domains[:3]
        for day in (0, 300):
            fast_rows = fast.observe_day(names, day)
            wire_rows = wire.observe_day(names, day)
            assert fast_rows == wire_rows, (party_name, day)


def test_probers_agree_on_protected_domains(tiny_world, probers):
    """Cover every provider's protection shapes present in the world."""
    fast, wire = probers
    protected = []
    for name, timeline in tiny_world.domains.items():
        config = timeline.config_at(max(timeline.created, 0)) \
            if timeline.alive(0) else None
        if config is None:
            continue
        slds = {ns.split(".", 1)[-1] for ns in config.ns_names}
        if config.www_cnames or any(
            "cloudflare" in sld or "ultradns" in sld or "verisign" in sld
            for sld in slds
        ):
            protected.append(name)
        if len(protected) >= 10:
            break
    if not protected:
        pytest.skip("no protected day-0 domains at this scale")
    assert fast.observe_day(protected, 0) == wire.observe_day(protected, 0)


def test_wire_prober_counts_queries(tiny_world, probers):
    _, wire = probers
    before = wire.queries_sent
    names = sample_names(tiny_world, 0, 3, random.Random(1))
    wire.observe_day(names, 0)
    assert wire.queries_sent > before
