"""Cross-mode byte-identity of the sketch plane, three seeds.

The plane is a commutative fold over observation facts, so every way of
producing it must land on the same bytes: the live engine maintaining
it row by row, the serial store rebuild, the ``workers=2`` sharded
rebuild merged shard by shard, and an engine killed mid-history and
resumed from its checkpoint. ``SketchPlane.state_digest`` hashes the
canonical serialized form, so digest equality is byte equality.
"""

from __future__ import annotations

import os

from repro.sketch import SketchConfig
from repro.sketch.build import (
    sketch_from_store,
    sketch_from_store_sharded,
)
from repro.stream.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed

from tests.sketch.conftest import KILL_DAY


def _engine_plane(world, results, store):
    """A live engine fed the replayed history, plane enabled."""
    windows = SegmentReplayFeed(world, results.segments).windows()
    engine = StreamEngine(
        world.horizon, windows=windows, sketches=SketchConfig()
    )
    engine.ingest_feed(StoreReplayFeed(store).days())
    return engine


class TestThreeSeedSketchIdentity:
    def test_engine_matches_serial_store_rebuild(self, sketch_seeded):
        world, _, results, store = sketch_seeded
        engine = _engine_plane(world, results, store)
        rebuilt = sketch_from_store(store)
        assert engine.sketches is not None
        assert (
            engine.sketches.state_digest() == rebuilt.state_digest()
        )

    def test_sharded_rebuild_is_byte_identical(self, sketch_seeded):
        _, _, _, store = sketch_seeded
        serial = sketch_from_store(store)
        sharded = sketch_from_store_sharded(
            store, workers=2, shard_count=4
        )
        assert sharded.state_digest() == serial.state_digest()
        assert sharded.to_dict() == serial.to_dict()

    def test_kill_resume_plane_is_byte_identical(
        self, sketch_seeded, tmp_path
    ):
        world, _, results, store = sketch_seeded
        windows = SegmentReplayFeed(world, results.segments).windows()

        straight = StreamEngine(
            world.horizon, windows=windows, sketches=SketchConfig()
        )
        straight.ingest_feed(StoreReplayFeed(store).days())

        interrupted = StreamEngine(
            world.horizon, windows=windows, sketches=SketchConfig()
        )
        interrupted.ingest_feed(
            StoreReplayFeed(store).days(end=KILL_DAY)
        )
        path = os.path.join(str(tmp_path), "sketch.ckpt")
        save_checkpoint(interrupted, path)
        del interrupted  # the "kill": only the checkpoint survives

        resumed = load_checkpoint(path)
        assert resumed.sketches is not None
        start = min(
            resumed.resume_day(source) for source in resumed.sources
        )
        assert start == KILL_DAY
        resumed.ingest_feed(StoreReplayFeed(store).days(start=start))

        # The whole engine — counters AND plane — lands on one state.
        assert state_digest(resumed) == state_digest(straight)
        assert straight.sketches is not None
        assert (
            resumed.sketches.state_digest()
            == straight.sketches.state_digest()
        )

    def test_space_saving_streams_stay_exact(self, sketch_seeded):
        """In-world key universes never overflow the summaries, so the
        rankings are exact — the regime the byte-identity relies on."""
        _, _, _, store = sketch_seeded
        plane = sketch_from_store(store)
        for name in sorted(plane.scopes):
            scope = plane.scope(name)
            assert scope.provider_topk.exact
            assert scope.third_party.exact
