"""Shared fixtures for the sketch-plane suites.

Mirrors ``tests/batch/test_identity.py``: three fixed worlds, the batch
study as exact ground truth, and a landed :class:`ColumnStore` holding
every daily partition — the history both the engine replay and the
store rebuild fold into sketch planes.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.measurement.storage import ColumnStore
from repro.stream.feed import SegmentReplayFeed

SCALE = 300000
SEEDS = (3, 7, 11)
#: Kill/resume split point: mid-study, with every scope active.
KILL_DAY = 400


@pytest.fixture(scope="session", params=SEEDS)
def sketch_seeded(request):
    """(world, study, results, landed store) for one fixed seed."""
    from repro.world.scenario import ScenarioConfig, build_paper_world

    world = build_paper_world(
        ScenarioConfig(scale=SCALE, seed=request.param)
    )
    study = AdoptionStudy(world)
    results = study.run()
    assert any(results.detection_gtld.any_use_combined)
    store = ColumnStore()
    feed = SegmentReplayFeed(world, results.segments)
    for part in feed.days():
        store.append(part.source, part.day, list(part.observations))
    return world, study, results, store
