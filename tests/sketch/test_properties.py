"""Property-based guarantees of the three sketch families.

Runs only where ``hypothesis`` is installed (optional dev dependency,
same convention as ``tests/property``). ``derandomize=True`` keeps the
statistical asserts reproducible: the ``εN``-at-``δ`` CMS bound and the
``1.04/√m`` HLL error are confidence claims, so a fresh example stream
every run would turn their tail probability into CI flakes.
"""

from __future__ import annotations

import json
import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sketch import (  # noqa: E402
    CountMinSketch,
    HyperLogLog,
    SpaceSaving,
)
from repro.sketch.cms import SketchMergeError  # noqa: E402

DETERMINISTIC = settings(
    max_examples=40, deadline=None, derandomize=True
)

key = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1,
    max_size=16,
)
stream = st.lists(
    st.tuples(key, st.integers(min_value=1, max_value=50)),
    min_size=1,
    max_size=120,
)


def _truth(events):
    exact = {}
    for name, count in events:
        exact[name] = exact.get(name, 0) + count
    return exact


# -- count-min ----------------------------------------------------------------


@DETERMINISTIC
@given(stream)
def test_cms_never_undercounts(events):
    sketch = CountMinSketch(depth=4, width=512, seed=11)
    for name, count in events:
        sketch.update(name, count)
    exact = _truth(events)
    assert sketch.total == sum(exact.values())
    for name, count in exact.items():
        assert sketch.estimate(name) >= count


@DETERMINISTIC
@given(st.lists(stream, min_size=2, max_size=60))
def test_cms_overestimate_rate_within_delta(streams):
    """P(estimate > truth + eN) <= delta, checked as a rate."""
    sketch = CountMinSketch(depth=4, width=256, seed=7)
    events = [pair for chunk in streams for pair in chunk]
    for name, count in events:
        sketch.update(name, count)
    exact = _truth(events)
    bound = sketch.error_bound()
    assert bound == pytest.approx(sketch.epsilon * sketch.total)
    violations = sum(
        sketch.estimate(name) > count + bound
        for name, count in exact.items()
    )
    assert violations <= max(2, 2 * sketch.delta * len(exact))


@DETERMINISTIC
@given(stream, st.integers(min_value=0, max_value=120))
def test_cms_merge_equals_feed_byte_identically(events, split):
    split = min(split, len(events))
    whole = CountMinSketch(depth=4, width=128, seed=3)
    for name, count in events:
        whole.update(name, count)

    left = CountMinSketch(depth=4, width=128, seed=3)
    right = CountMinSketch(depth=4, width=128, seed=3)
    for name, count in events[:split]:
        left.update(name, count)
    for name, count in events[split:]:
        right.update(name, count)
    left.merge(right)
    assert json.dumps(left.to_dict(), sort_keys=True) == json.dumps(
        whole.to_dict(), sort_keys=True
    )


def test_cms_conservative_tightens_but_cannot_merge():
    additive = CountMinSketch(depth=4, width=64, seed=5)
    conservative = CountMinSketch(
        depth=4, width=64, seed=5, conservative=True
    )
    events = [(f"key-{i % 23}", 1 + i % 7) for i in range(500)]
    for name, count in events:
        additive.update(name, count)
        conservative.update(name, count)
    exact = _truth(events)
    for name, count in exact.items():
        assert count <= conservative.estimate(name) <= additive.estimate(
            name
        )
    # Conservative update is order-dependent: merging would silently
    # break the serial == sharded identity, so it must refuse.
    other = CountMinSketch(depth=4, width=64, seed=5, conservative=True)
    with pytest.raises(SketchMergeError):
        conservative.merge(other)
    with pytest.raises(SketchMergeError):
        additive.merge(CountMinSketch(depth=4, width=32, seed=5))
    with pytest.raises(SketchMergeError):
        additive.merge(CountMinSketch(depth=4, width=64, seed=6))


# -- space-saving -------------------------------------------------------------


@DETERMINISTIC
@given(stream)
def test_space_saving_guaranteed_frequency_invariant(events):
    summary = SpaceSaving(capacity=8)
    for name, count in events:
        summary.update(name, count)
    exact = _truth(events)
    floor = min(
        (count for count, _ in summary.counters.values()), default=0
    )
    for name, count, error in summary.top(len(summary.counters)):
        # count - error <= truth <= count for every tracked key.
        assert count - error <= exact[name] <= count
    for name, true_count in exact.items():
        if name not in summary.counters:
            # An evicted key's true count cannot beat the floor.
            assert true_count <= floor
    if summary.evictions == 0:
        assert summary.exact
        for name, count, error in summary.top(len(exact)):
            assert error == 0 and count == exact[name]


@DETERMINISTIC
@given(stream, st.integers(min_value=0, max_value=120))
def test_space_saving_merge_equals_feed_in_exact_regime(events, split):
    """Below capacity the summary is an exact counter, so any shard
    split must land on the identical bytes the serial feed produces."""
    split = min(split, len(events))
    whole = SpaceSaving(capacity=4096)
    left = SpaceSaving(capacity=4096)
    right = SpaceSaving(capacity=4096)
    for name, count in events:
        whole.update(name, count)
    for name, count in events[:split]:
        left.update(name, count)
    for name, count in events[split:]:
        right.update(name, count)
    left.merge(right)
    assert left.exact and whole.exact
    assert json.dumps(left.to_dict(), sort_keys=True) == json.dumps(
        whole.to_dict(), sort_keys=True
    )


# -- hyperloglog --------------------------------------------------------------


@pytest.mark.parametrize("cardinality", [0, 1, 1000, 1_000_000])
def test_hll_relative_error_within_3_sigma(cardinality):
    counter = HyperLogLog(precision=12, seed=2016)
    for index in range(cardinality):
        counter.add(f"domain-{index}.example")
    estimate = counter.estimate()
    if cardinality <= 1:
        # Linear counting bias at one touched register is ~1/(2m).
        assert estimate == pytest.approx(cardinality, abs=0.01)
        return
    sigma = counter.relative_error
    assert abs(estimate - cardinality) <= 3 * sigma * cardinality


def test_hll_duplicates_do_not_count():
    counter = HyperLogLog(precision=12, seed=1)
    for _ in range(5000):
        counter.add("same-key")
    assert counter.estimate() == pytest.approx(1.0, abs=0.01)


@DETERMINISTIC
@given(
    st.lists(key, min_size=0, max_size=200),
    st.integers(min_value=0, max_value=200),
)
def test_hll_merge_equals_feed_byte_identically(keys, split):
    split = min(split, len(keys))
    whole = HyperLogLog(precision=6, seed=9)
    left = HyperLogLog(precision=6, seed=9)
    right = HyperLogLog(precision=6, seed=9)
    for name in keys:
        whole.add(name)
    for name in keys[:split]:
        left.add(name)
    for name in keys[split:]:
        right.add(name)
    left.merge(right)
    # Precision 6 -> 64 registers, sparse limit 16: these streams cross
    # the sparse->dense promotion on one side or both, and the merged
    # representation must still match the serial feed byte for byte.
    assert json.dumps(left.to_dict(), sort_keys=True) == json.dumps(
        whole.to_dict(), sort_keys=True
    )


def test_hll_dense_promotion_is_set_determined():
    """The representation depends on the key set, never insert order."""
    forward = HyperLogLog(precision=6, seed=4)
    backward = HyperLogLog(precision=6, seed=4)
    keys = [f"key-{index}" for index in range(120)]
    for name in keys:
        forward.add(name)
    for name in reversed(keys):
        backward.add(name)
    assert forward.to_dict() == backward.to_dict()


def test_hll_large_merge_matches_union():
    left = HyperLogLog(precision=12, seed=2)
    right = HyperLogLog(precision=12, seed=2)
    union = HyperLogLog(precision=12, seed=2)
    for index in range(20_000):
        left.add(f"left-{index}")
        union.add(f"left-{index}")
    for index in range(20_000):
        right.add(f"right-{index}")
        union.add(f"right-{index}")
    left.merge(right)
    assert left.to_dict() == union.to_dict()
    sigma = union.relative_error
    assert abs(left.estimate() - 40_000) <= 3 * sigma * 40_000


def test_hll_seed_mismatch_refuses_merge():
    with pytest.raises(SketchMergeError):
        HyperLogLog(precision=6, seed=1).merge(
            HyperLogLog(precision=6, seed=2)
        )
    with pytest.raises(SketchMergeError):
        HyperLogLog(precision=6, seed=1).merge(
            HyperLogLog(precision=7, seed=1)
        )


def test_error_parameters_match_theory():
    sketch = CountMinSketch(depth=5, width=2048, seed=0)
    assert sketch.epsilon == pytest.approx(math.e / 2048)
    assert sketch.delta == pytest.approx(math.exp(-5))
    counter = HyperLogLog(precision=12, seed=0)
    assert counter.relative_error == pytest.approx(1.04 / 64.0)
