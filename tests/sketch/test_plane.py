"""Unit coverage for the plane itself: wiring, codecs, edge cases."""

from __future__ import annotations

import json

import pytest

from repro.core.references import SignatureCatalog
from repro.sketch import SketchConfig, SketchPlane
from repro.sketch.cms import CountMinSketch, SketchMergeError
from repro.sketch.hll import HyperLogLog
from repro.sketch.plane import KEY_SEP, ScopeSketches, provider_slds_of
from repro.sketch.topk import SpaceSaving
from repro.stream.engine import StreamEngine


def tiny_plane():
    return SketchPlane(
        SketchConfig(),
        scope_names=("gtld", "nl"),
        provider_slds=("cloudflare.net", "akamai.net"),
    )


def observe_some(plane):
    scope = plane.scope("gtld")
    scope.observe(
        "shop.example", 3, {"CloudFlare": frozenset()}, ()
    )
    scope.observe(
        "blog.example", 3,
        {"CloudFlare": frozenset(), "Akamai": frozenset()}, (),
    )
    scope.observe(
        "bare.example", 3, {}, ("ns:hostco.net",)
    )
    return scope


class TestScopeSketches:
    def test_observe_routes_matched_and_third_party(self):
        plane = tiny_plane()
        scope = observe_some(plane)
        assert scope.rows_observed == 3
        assert scope.matched_rows == 2
        assert scope.provider_names() == ["Akamai", "CloudFlare"]
        assert scope.adoption_estimate("CloudFlare", 3) >= 2
        assert scope.adoption_estimate("Akamai", 3) >= 1
        assert scope.top_third_parties(5)[0][0] == "ns:hostco.net"
        assert scope.distinct_domains() == pytest.approx(3, abs=0.5)

    def test_compound_keys_cannot_collide_across_days(self):
        plane = tiny_plane()
        scope = plane.scope("gtld")
        scope.observe("a.example", 1, {"CloudFlare": frozenset()}, ())
        scope.observe("b.example", 11, {"CloudFlare": frozenset()}, ())
        assert KEY_SEP not in "CloudFlare"
        assert scope.active_days("CloudFlare") == [1, 11]
        assert scope.adoption_estimate("CloudFlare", 1) >= 1
        assert scope.adoption_estimate("CloudFlare", 111) <= (
            scope.adoption_error_bound()
        )

    def test_joins_series_counts_first_seen_once(self):
        plane = tiny_plane()
        scope = plane.scope("gtld")
        for day in (5, 6, 7):
            scope.observe(
                "stay.example", day, {"CloudFlare": frozenset()}, ()
            )
        scope.observe(
            "late.example", 7, {"CloudFlare": frozenset()}, ()
        )
        series = dict(scope.joins_series("CloudFlare"))
        assert series[5] == 1
        assert series[6] == 0
        assert series[7] == 1
        assert scope.churn_score("CloudFlare") == 1

    def test_migration_anomalies_flag_spikes_only(self):
        plane = tiny_plane()
        scope = plane.scope("gtld")
        # Background: one new domain per day; then a 30-domain day.
        for day in range(10):
            scope.observe(
                f"bg-{day}.example", day,
                {"CloudFlare": frozenset()}, (),
            )
        for index in range(30):
            scope.observe(
                f"wave-{index}.example", 10,
                {"CloudFlare": frozenset()}, (),
            )
        anomalies = scope.migration_anomalies(
            "CloudFlare", factor=4.0, floor=8
        )
        assert [day for day, _ in anomalies] == [10]
        assert anomalies[0][1] >= 25
        # The background alone shows nothing.
        assert scope.migration_anomalies(
            "CloudFlare", factor=4.0, floor=40
        ) == []

    def test_roundtrip_is_byte_identical(self):
        plane = tiny_plane()
        observe_some(plane)
        payload = plane.to_dict()
        clone = SketchPlane.from_dict(payload)
        assert clone.to_dict() == payload
        assert clone.state_digest() == plane.state_digest()
        # JSON round-trip too: the checkpoint rides dump_state's JSON.
        rehydrated = SketchPlane.from_dict(
            json.loads(json.dumps(payload))
        )
        assert rehydrated.state_digest() == plane.state_digest()

    def test_merge_requires_matching_config(self):
        left = ScopeSketches(SketchConfig())
        right = ScopeSketches(SketchConfig(seed=999))
        with pytest.raises(SketchMergeError):
            left.merge(right)

    def test_plane_merge_requires_matching_scopes(self):
        left = tiny_plane()
        right = SketchPlane(
            SketchConfig(), scope_names=("gtld",), provider_slds=()
        )
        with pytest.raises(SketchMergeError):
            left.merge(right)

    def test_copy_without_day_domains_drops_only_day_streams(self):
        plane = tiny_plane()
        scope = observe_some(plane)
        view = scope.copy(include_day_domains=False)
        assert view.rows_observed == scope.rows_observed
        assert view.provider_day_domains == {}
        assert view.adoption_estimate(
            "CloudFlare", 3
        ) == scope.adoption_estimate("CloudFlare", 3)


class TestThirdPartyKeys:
    def test_provider_slds_are_not_third_parties(self):
        plane = tiny_plane()
        keys = plane.third_party_keys(
            ("ns1.cloudflare.net.", "ns1.hostco.net."),
            ("edge.akamai.net.", "cdn.fastcdn.org."),
        )
        assert keys == ("cname:fastcdn.org", "ns:hostco.net")

    def test_catalog_slds_extraction(self):
        slds = provider_slds_of(SignatureCatalog.paper_table2())
        assert "cloudflare.net" in slds

    def test_keys_are_memoized(self):
        plane = tiny_plane()
        first = plane.third_party_keys(("ns1.hostco.net.",), ())
        second = plane.third_party_keys(("ns1.hostco.net.",), ())
        assert first is second


class TestConfig:
    def test_roundtrip(self):
        config = SketchConfig(seed=99, cms_width=1024)
        assert SketchConfig.from_dict(config.to_dict()) == config

    def test_role_seeds_differ_by_role_and_seed(self):
        config = SketchConfig(seed=1)
        other = SketchConfig(seed=2)
        assert config.role_seed("cms:provider-day") != config.role_seed(
            "hll:domains"
        )
        assert config.role_seed("hll:domains") != other.role_seed(
            "hll:domains"
        )


class TestCodecValidation:
    def test_cms_rejects_wrong_shape(self):
        payload = CountMinSketch(depth=2, width=8, seed=1).to_dict()
        payload["rows"] = [[0] * 7, [0] * 8]
        with pytest.raises(ValueError):
            CountMinSketch.from_dict(payload)

    def test_cms_rejects_wrong_kind(self):
        payload = CountMinSketch(depth=2, width=8, seed=1).to_dict()
        payload["kind"] = "bogus"
        with pytest.raises(ValueError):
            CountMinSketch.from_dict(payload)

    def test_hll_rejects_wrong_register_count(self):
        counter = HyperLogLog(precision=4, seed=1)
        for index in range(40):
            counter.add(f"k{index}")
        payload = counter.to_dict()
        assert payload["dense"] is not None
        payload["dense"] = payload["dense"][:-1]
        with pytest.raises(ValueError):
            HyperLogLog.from_dict(payload)

    def test_space_saving_roundtrip_keeps_evictions(self):
        summary = SpaceSaving(capacity=2)
        for name in ("a", "b", "c", "d"):
            summary.update(name)
        assert summary.evictions > 0 and not summary.exact
        clone = SpaceSaving.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert not clone.exact


class TestEngineIntegration:
    def test_engine_without_plane_serializes_none(self):
        engine = StreamEngine(10, sources=("com",))
        payload = engine.to_dict()
        assert payload["sketches"] is None
        assert StreamEngine.from_dict(payload).sketches is None

    def test_legacy_checkpoint_without_sketches_key_loads(self):
        engine = StreamEngine(10, sources=("com",))
        payload = engine.to_dict()
        del payload["sketches"]
        restored = StreamEngine.from_dict(payload)
        assert restored.sketches is None

    def test_engine_with_plane_roundtrips(self):
        engine = StreamEngine(
            10, sources=("com",), sketches=SketchConfig(seed=5)
        )
        assert engine.sketches is not None
        restored = StreamEngine.from_dict(engine.to_dict())
        assert restored.sketches is not None
        assert (
            restored.sketches.state_digest()
            == engine.sketches.state_digest()
        )
