"""Sketch estimates against exact columnar answers, three seeds.

Every estimate the plane serves — provider top-K by adoption, churn
heavy-hitters, per-provider-day adoption counters, distinct-domain
cardinalities, third-party hoster rankings — is checked against an
exact fold over the same landed store, and the fold itself is tied to
:meth:`AdoptionStudy.detect_from_store` output (the interval keys are
exactly the matched domains). All asserts are error-bound claims the
sketches guarantee, never golden values: CMS may only overestimate and
by at most ``εN``; space-saving in its exact regime is exact; HLL must
land within a few standard errors of ``1.04/√m``.
"""

from __future__ import annotations

import math
from typing import Dict, Set, Tuple

from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import sld_of
from repro.sketch.build import sketch_from_store, store_partitions
from repro.stream.engine import SCOPE_OF_SOURCE

SCOPE = "gtld"


def _exact_facts(store, catalog):
    """The exact answers, folded straight off the columnar store.

    Returns (row counts per provider-day, distinct domains per
    provider, first-seen day per provider-domain, distinct domains
    overall, third-party key row counts) for the gTLD scope.
    """
    counts: Dict[Tuple[str, int], int] = {}
    members: Dict[str, Set[str]] = {}
    first_seen: Dict[Tuple[str, str], int] = {}
    domains: Set[str] = set()
    third: Dict[str, int] = {}

    provider_slds = set()
    for signature in catalog:
        provider_slds |= set(signature.cname_slds)
        provider_slds |= set(signature.ns_slds)

    cache = {}
    for source, day in store_partitions(store):
        if SCOPE_OF_SOURCE[source] != SCOPE:
            continue
        batch = store.batch(source, day)
        names = batch.names
        for index in range(len(batch)):
            domain = names.value(batch.domains[index])
            domains.add(domain)
            text_key = (
                batch.ns_texts(index),
                batch.cname_texts(index),
                batch.asn_set(index),
            )
            matches = cache.get(text_key)
            if matches is None:
                matches = catalog.match(batch.row(index))
                cache[text_key] = matches
            if not matches:
                keys = set()
                for name in batch.ns_texts(index):
                    sld = sld_of(name)
                    if sld and sld not in provider_slds:
                        keys.add("ns:" + sld)
                for name in batch.cname_texts(index):
                    sld = sld_of(name)
                    if sld and sld not in provider_slds:
                        keys.add("cname:" + sld)
                for key in keys:
                    third[key] = third.get(key, 0) + 1
                continue
            for provider in matches:
                counts[provider, day] = counts.get((provider, day), 0) + 1
                members.setdefault(provider, set()).add(domain)
                first_seen.setdefault((provider, domain), day)
    return counts, members, first_seen, domains, third


def _exact_joins(first_seen, provider):
    """Exact first-seen arrivals per day for *provider*."""
    joins: Dict[int, int] = {}
    for (name, domain), day in first_seen.items():
        if name == provider:
            joins[day] = joins.get(day, 0) + 1
    return joins


class TestSketchCrossValidation:
    def test_estimates_within_error_bounds(self, sketch_seeded):
        _, _, results, store = sketch_seeded
        catalog = SignatureCatalog.paper_table2()
        counts, members, first_seen, domains, third = _exact_facts(
            store, catalog
        )
        plane = sketch_from_store(store, catalog=catalog)
        scope = plane.scope(SCOPE)

        # The exact fold agrees with detect_from_store's output: the
        # matched-domain sets are the detection interval keys.
        detected = {
            (domain, provider)
            for domain, provider in results.detection_gtld.intervals
        }
        folded = {
            (domain, provider)
            for (provider, domain) in first_seen
        }
        assert folded == detected

        # -- CMS provider-day adoption: never under; over by <= eN ----
        # The eN bound is probabilistic, holding per key with confidence
        # 1 - delta (delta = e^-depth), so it is asserted as a rate over
        # every key, while never-undercounting is absolute.
        bound = scope.adoption_error_bound()
        assert bound == scope.provider_day.error_bound()
        checked = 0
        over_bound = 0
        for provider in sorted(members):
            days = scope.active_days(provider)
            assert days == sorted(
                day for name, day in counts if name == provider
            )
            for day in days:
                exact = counts[provider, day]
                estimate = scope.adoption_estimate(provider, day)
                assert estimate >= exact
                checked += 1
                over_bound += estimate > exact + bound
            # A never-active day never under-reports its zero either.
            quiet = scope.adoption_estimate(provider, max(days) + 1000)
            assert quiet >= 0
            checked += 1
            over_bound += quiet > bound
        assert checked > 0
        assert over_bound <= max(2, 2 * scope.provider_day.delta * checked)

        # -- space-saving top-K: exact regime, guarantees hold --------
        assert scope.provider_topk.exact
        exact_rows = {
            provider: sum(
                count
                for (name, day), count in counts.items()
                if name == provider
            )
            for provider in members
        }
        top = scope.top_providers(len(members))
        assert [name for name, _, _ in top] == sorted(
            exact_rows, key=lambda name: (-exact_rows[name], name)
        )
        for name, count, error in top:
            assert count - error <= exact_rows[name] <= count
            assert count == exact_rows[name]

        assert scope.third_party.exact
        for name, count, error in scope.top_third_parties(10):
            assert count - error <= third[name] <= count
            assert count == third[name]

        # -- HLL distinct counts: within 3-4 sigma of 1.04/sqrt(m) ----
        exact_domains = len(domains)
        rsd = scope.domains.relative_error
        assert abs(scope.distinct_domains() - exact_domains) <= max(
            2.0, 4 * rsd * exact_domains
        )
        for provider in sorted(members):
            exact_n = len(members[provider])
            estimate = scope.provider_distinct(provider)
            assert abs(estimate - exact_n) <= max(2.0, 4 * rsd * exact_n)

    def test_churn_heavy_hitters_track_exact_flux(self, sketch_seeded):
        _, _, _, store = sketch_seeded
        catalog = SignatureCatalog.paper_table2()
        _, members, first_seen, _, _ = _exact_facts(store, catalog)
        plane = sketch_from_store(store, catalog=catalog)
        scope = plane.scope(SCOPE)

        day_rsd = 1.04 / math.sqrt(
            1 << plane.config.day_hll_precision
        )
        exact_churn: Dict[str, int] = {}
        for provider in sorted(members):
            joins = _exact_joins(first_seen, provider)
            first_day = min(joins)
            exact_churn[provider] = sum(
                count for day, count in joins.items() if day != first_day
            )
            # Per-day arrivals from the prefix-union walk track the
            # exact first-seen counts within HLL error of the base.
            tolerance = max(
                2.0, math.ceil(4 * day_rsd * len(members[provider])) + 1
            )
            for day, estimate in scope.joins_series(provider):
                exact = joins.get(day, 0)
                assert abs(estimate - exact) <= tolerance
            assert (
                abs(scope.churn_score(provider) - exact_churn[provider])
                <= tolerance * 2
            )

        # The churn ranking's head is a genuine heavy hitter: its
        # exact churn is within tolerance of the exact maximum.
        ranking = scope.top_churn(3)
        assert ranking
        head = ranking[0][0]
        best = max(exact_churn.values())
        head_tolerance = max(
            4.0, 4 * day_rsd * len(members[head]) + 2
        )
        assert exact_churn[head] >= best - head_tolerance

        # Anomaly counters are consistent with the series they scan.
        for provider in sorted(members):
            series = dict(scope.joins_series(provider))
            for day, joins in scope.migration_anomalies(provider):
                assert series[day] == joins
                assert day in scope.active_days(provider)
                assert joins > 0
