"""Regenerate the golden detection fixtures.

Run from the repository root after an *intentional* change to detection
or rendering output:

    PYTHONPATH=src python tests/fixtures/golden/regen.py

then review the diff — every changed line must be explainable by the
change you made. The fixtures pin the full output of a study over the
same world ``tests/conftest.py`` builds as ``tiny_world``
(``scale=40000, seed=7``), so unintended drift anywhere in measurement,
detection, or rendering shows up as a golden-test failure.
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "..", "src")
)

from repro.core.pipeline import AdoptionStudy  # noqa: E402
from repro.reporting import figures  # noqa: E402
from repro.reporting.export import study_to_dict  # noqa: E402
from repro.world.scenario import ScenarioConfig, build_paper_world  # noqa: E402

GOLDEN_SCALE = 40000
GOLDEN_SEED = 7

GOLDEN_ARTIFACTS = {
    "table1.txt": figures.render_table1,
    "fig2.txt": figures.render_figure2,
    "fig6.txt": figures.render_figure6,
}


def build_results():
    world = build_paper_world(
        ScenarioConfig(scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    )
    return AdoptionStudy(world).run()


def detection_summary(results):
    """The Table-2-style slice of the export: who was detected, how
    much, via which reference types."""
    payload = study_to_dict(results)
    return {
        "any_use": payload["any_use"],
        "providers": payload["providers"],
        "growth": payload["growth"],
        "dps_distribution": payload["dps_distribution"],
    }


def main():
    directory = os.path.dirname(os.path.abspath(__file__))
    results = build_results()
    for filename, renderer in sorted(GOLDEN_ARTIFACTS.items()):
        path = os.path.join(directory, filename)
        with open(path, "w") as handle:
            handle.write(renderer(results))
            handle.write("\n")
        print(f"wrote {path}")
    path = os.path.join(directory, "detection.json")
    with open(path, "w") as handle:
        json.dump(
            detection_summary(results), handle, indent=1, sort_keys=True
        )
        handle.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
