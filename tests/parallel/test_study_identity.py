"""The tentpole contract: ``run(parallel=True)`` is byte-identical to serial.

Identity is asserted on the canonical JSON export (``study_to_dict``
dumped with sorted keys) — the same bytes ``repro study --output``
writes — plus the per-domain segments, across worker counts and shard
counts.
"""

import json

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.reporting.export import study_to_dict


def _canonical(results) -> str:
    return json.dumps(study_to_dict(results), sort_keys=True)


@pytest.fixture(scope="module")
def serial_results(tiny_world):
    return AdoptionStudy(tiny_world).run()


@pytest.fixture(scope="module")
def serial_json(serial_results):
    return _canonical(serial_results)


class TestByteIdentity:
    @pytest.mark.parametrize(
        "workers,shard_count",
        [(1, 1), (1, 5), (2, 3), (2, 8)],
    )
    def test_export_identical(
        self, tiny_world, serial_json, workers, shard_count
    ):
        parallel = AdoptionStudy(tiny_world).run(
            parallel=True, workers=workers, shard_count=shard_count
        )
        assert _canonical(parallel) == serial_json

    def test_segments_identical(self, tiny_world, serial_results):
        parallel = AdoptionStudy(tiny_world).run(
            parallel=True, workers=2, shard_count=5
        )
        assert list(parallel.segments) == list(serial_results.segments)
        assert parallel.segments == serial_results.segments

    def test_intervals_identical(self, tiny_world, serial_results):
        parallel = AdoptionStudy(tiny_world).run(
            parallel=True, workers=1, shard_count=7
        )
        for serial_det, parallel_det in [
            (serial_results.detection_gtld, parallel.detection_gtld),
            (serial_results.detection_nl, parallel.detection_nl),
            (serial_results.detection_alexa, parallel.detection_alexa),
        ]:
            assert parallel_det.intervals == serial_det.intervals
            assert list(parallel_det.intervals) == list(
                serial_det.intervals
            )
            assert parallel_det.domains_seen == serial_det.domains_seen

    def test_env_workers_respected(self, tiny_world, serial_json,
                                   monkeypatch):
        from repro.parallel.executor import REPRO_WORKERS_ENV

        monkeypatch.setenv(REPRO_WORKERS_ENV, "2")
        parallel = AdoptionStudy(tiny_world).run(parallel=True)
        assert _canonical(parallel) == serial_json
