"""ClusterBackend: deterministic scheduling under elastic membership.

The byte-identity matrix in ``test_backend_identity.py`` proves the
cluster backend on the real study; these tests pin the scheduler
itself — placement, stealing, speculation, crash retry — and drive
random join/leave schedules through hypothesis to show the *results*
never see the schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.retry import RetryPolicy
from repro.parallel.backend import SerialBackend
from repro.parallel.cluster import (
    ClusterBackend,
    ClusterEvent,
    ClusterSchedule,
)


def _describe(shard_index, payload):
    return (shard_index, tuple(payload), sum(payload))


class _Crash(Exception):
    shard_retryable = True


# Random membership churn: events at small ticks over a small node id
# space, so leaves hit both queued and in-flight shards and joins
# revive dead ids as often as they add fresh ones.
schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=24),
        st.sampled_from(["leave", "join"]),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=8,
).map(lambda events: ClusterSchedule.scripted(*events))

workloads = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=9), min_size=0, max_size=6
    ),
    min_size=1,
    max_size=14,
)


class TestScheduleValidation:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="action"):
            ClusterEvent(0, "reboot", 1)

    def test_rejects_negative_tick_and_node(self):
        with pytest.raises(ValueError):
            ClusterEvent(-1, "leave", 0)
        with pytest.raises(ValueError):
            ClusterEvent(0, "join", -1)

    def test_ordered_resolves_ties_leaves_first(self):
        schedule = ClusterSchedule.scripted(
            (3, "join", 7), (3, "leave", 1), (1, "join", 2)
        )
        assert [
            (event.tick, event.action) for event in schedule.ordered()
        ] == [(1, "join"), (3, "leave"), (3, "join")]

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError):
            ClusterBackend(nodes=0)


class TestDeterminism:
    def test_repeated_runs_schedule_identically(self):
        shards = [[1] * cost for cost in (5, 1, 2, 1, 3, 1)]
        traces = []
        for _ in range(2):
            cluster = ClusterBackend(nodes=3, shard_count=6)
            cluster.map_shards(_describe, shards)
            traces.append(
                (cluster.completions, cluster.makespan_ticks)
            )
        assert traces[0] == traces[1]

    def test_results_land_in_shard_index_order(self):
        shards = [[index] for index in range(8)]
        cluster = ClusterBackend(nodes=3, shard_count=8)
        assert cluster.map_shards(_describe, shards) == [
            _describe(index, payload)
            for index, payload in enumerate(shards)
        ]

    def test_stealing_shortens_skewed_makespan(self):
        # Round-robin parks every expensive shard on node 0; only
        # stealing lets nodes 1..3 relieve it.
        shards = [
            [1] * (9 if index % 4 == 0 else 1) for index in range(12)
        ]
        lazy = ClusterBackend(nodes=4, shard_count=12, work_stealing=False)
        eager = ClusterBackend(nodes=4, shard_count=12, work_stealing=True)
        assert lazy.map_shards(_describe, shards) == eager.map_shards(
            _describe, shards
        )
        assert eager.shards_stolen > 0
        assert eager.makespan_ticks < lazy.makespan_ticks

    def test_lost_in_flight_shard_is_speculated(self):
        shards = [[1, 1, 1, 1]] * 4
        cluster = ClusterBackend(
            nodes=2,
            shard_count=4,
            schedule=ClusterSchedule.scripted((2, "leave", 0)),
        )
        results = cluster.map_shards(_describe, shards)
        assert results == [
            _describe(index, payload)
            for index, payload in enumerate(shards)
        ]
        assert cluster.shards_speculated >= 1

    def test_all_nodes_leaving_spins_up_recovery_node(self):
        cluster = ClusterBackend(
            nodes=2,
            shard_count=4,
            schedule=ClusterSchedule.scripted(
                (1, "leave", 0), (1, "leave", 1)
            ),
        )
        payload = [7, 7, 7]  # three ticks: both leaves land mid-flight
        results = cluster.map_shards(_describe, [payload] * 4)
        assert results == [
            _describe(index, payload) for index in range(4)
        ]
        # The recovery node id never collides with scripted ids.
        recovery_nodes = {node for _, node, _ in cluster.completions}
        assert recovery_nodes and min(recovery_nodes) >= 2


class TestCrashRecovery:
    def test_retryable_crash_reruns_suppressed(self):
        runs = {}

        def flaky(shard_index, payload):
            runs[shard_index] = runs.get(shard_index, 0) + 1
            if shard_index == 2 and runs[shard_index] == 1:
                raise _Crash("injected")
            return shard_index

        cluster = ClusterBackend(nodes=2, shard_count=4)
        assert cluster.map_shards(flaky, [[1]] * 4) == [0, 1, 2, 3]
        assert cluster.shards_retried == 1
        assert runs[2] == 2

    def test_crash_budget_is_bounded_by_retry_policy(self):
        def doomed(shard_index, payload):
            raise _Crash("persistent")

        cluster = ClusterBackend(
            nodes=1,
            shard_count=2,
            retry_policy=RetryPolicy(attempts=3),
        )
        with pytest.raises(_Crash):
            cluster.map_shards(doomed, [[1], [2]])
        assert cluster.shards_retried == 2

    def test_non_retryable_crash_escalates_immediately(self):
        def broken(shard_index, payload):
            raise KeyError("bug")

        cluster = ClusterBackend(nodes=2, shard_count=4)
        with pytest.raises(KeyError):
            cluster.map_shards(broken, [[1]] * 4)
        assert cluster.shards_retried == 0


class TestScheduleInvariance:
    @settings(max_examples=60, deadline=None)
    @given(schedule=schedules, shards=workloads, nodes=st.integers(2, 5))
    def test_any_schedule_matches_serial(self, schedule, shards, nodes):
        serial = SerialBackend(shard_count=len(shards)).map_shards(
            _describe, shards
        )
        cluster = ClusterBackend(
            nodes=nodes, shard_count=len(shards), schedule=schedule
        )
        assert cluster.map_shards(_describe, shards) == serial

    @settings(max_examples=30, deadline=None)
    @given(schedule=schedules, shards=workloads)
    def test_any_schedule_replays_identically(self, schedule, shards):
        traces = []
        for _ in range(2):
            cluster = ClusterBackend(
                nodes=3, shard_count=len(shards), schedule=schedule
            )
            results = cluster.map_shards(_describe, shards)
            traces.append((results, cluster.completions))
        assert traces[0] == traces[1]
