"""Sharding primitives: stable assignment, disjoint cover, contiguity."""

import pytest

from repro.parallel.sharding import chunk_records, partition_names, shard_of
from repro.world.ipam import stable_hash

NAMES = [f"domain-{i:04d}.com" for i in range(500)]


class TestShardOf:
    def test_matches_stable_hash(self):
        for name in NAMES[:50]:
            assert shard_of(name, 7) == stable_hash(name) % 7

    def test_stable_across_calls(self):
        assert [shard_of(n, 13) for n in NAMES] == [
            shard_of(n, 13) for n in NAMES
        ]

    def test_in_range(self):
        assert all(0 <= shard_of(n, 5) < 5 for n in NAMES)

    def test_single_shard(self):
        assert all(shard_of(n, 1) == 0 for n in NAMES)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of("example.com", 0)


class TestPartitionNames:
    def test_disjoint_cover(self):
        shards = partition_names(NAMES, 8)
        assert len(shards) == 8
        flat = [name for shard in shards for name in shard]
        assert sorted(flat) == sorted(NAMES)
        assert len(flat) == len(set(flat))

    def test_members_keep_input_order(self):
        shards = partition_names(NAMES, 8)
        order = {name: index for index, name in enumerate(NAMES)}
        for shard in shards:
            assert shard == sorted(shard, key=order.__getitem__)

    def test_assignment_independent_of_membership(self):
        """A name's shard doesn't depend on which other names are present."""
        full = partition_names(NAMES, 8)
        half = partition_names(NAMES[::2], 8)
        for index, shard in enumerate(half):
            for name in shard:
                assert name in full[index]

    def test_roughly_balanced(self):
        shards = partition_names(NAMES, 8)
        sizes = [len(shard) for shard in shards]
        assert min(sizes) > 0
        assert max(sizes) < 3 * len(NAMES) // 8


class TestChunkRecords:
    def test_contiguous_cover(self):
        records = list(range(103))
        chunks = chunk_records(records, 8)
        assert len(chunks) == 8
        assert [r for chunk in chunks for r in chunk] == records

    def test_sizes_differ_by_at_most_one(self):
        chunks = chunk_records(list(range(103)), 8)
        sizes = {len(chunk) for chunk in chunks}
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_records(self):
        chunks = chunk_records([1, 2], 5)
        assert [r for chunk in chunks for r in chunk] == [1, 2]
        assert len(chunks) == 5

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            chunk_records([1], 0)
