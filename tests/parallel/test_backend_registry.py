"""Backend registry: resolution precedence, specs, and fallbacks."""

from __future__ import annotations

import pytest

from repro.parallel import backend as backend_module
from repro.parallel.backend import (
    REPRO_BACKEND_ENV,
    BackendError,
    LocalPoolBackend,
    SerialBackend,
    backend_names,
    resolve_backend,
)
from repro.parallel.cluster import ClusterBackend


def _double(shard_index, payload):
    return [value * 2 for value in payload]


class TestRegistry:
    def test_shipped_backends_are_registered(self):
        assert backend_names() == ["cluster", "local", "serial"]

    def test_register_backend_round_trips(self, monkeypatch):
        monkeypatch.setitem(
            backend_module._REGISTRY,
            "custom",
            lambda workers, shard_count, nodes: SerialBackend(
                shard_count=shard_count
            ),
        )
        resolved = resolve_backend("custom", shard_count=3)
        assert isinstance(resolved, SerialBackend)
        assert resolved.shard_count == 3


class TestPrecedence:
    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "cluster:4")
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_explicit_instance_passes_through(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "serial")
        instance = ClusterBackend(nodes=3)
        assert resolve_backend(instance) is instance

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "serial")
        assert isinstance(resolve_backend(), SerialBackend)

    def test_default_is_local(self, monkeypatch):
        monkeypatch.delenv(REPRO_BACKEND_ENV, raising=False)
        assert isinstance(
            resolve_backend(workers=1), LocalPoolBackend
        )

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(REPRO_BACKEND_ENV, "")
        assert isinstance(
            resolve_backend(workers=1), LocalPoolBackend
        )


class TestSpecs:
    def test_cluster_spec_sets_node_count(self):
        resolved = resolve_backend("cluster:3")
        assert isinstance(resolved, ClusterBackend)
        assert resolved.nodes == 3
        assert resolved.workers == 3

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(BackendError, match="cluster, local, serial"):
            resolve_backend("bogus")

    def test_non_integer_node_count_raises(self):
        with pytest.raises(BackendError, match="not an integer"):
            resolve_backend("cluster:many")

    def test_nonpositive_node_count_raises(self):
        with pytest.raises(BackendError, match=">= 1"):
            resolve_backend("cluster:0")

    @pytest.mark.parametrize("spec", ["serial:2", "local:2"])
    def test_nodes_argument_rejected_off_cluster(self, spec):
        with pytest.raises(BackendError):
            resolve_backend(spec)


class TestSpawnFallback:
    def test_no_fork_degrades_to_serial_path(self, monkeypatch):
        monkeypatch.setattr(
            backend_module, "fork_available", lambda: False
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            resolved = resolve_backend("local", workers=4, shard_count=4)
        assert resolved.workers == 1
        results = resolved.map_shards(_double, [[1], [2], [3], [4]])
        assert results == [[2], [4], [6], [8]]

    def test_fork_platforms_keep_their_workers(self, monkeypatch):
        monkeypatch.setattr(
            backend_module, "fork_available", lambda: True
        )
        resolved = resolve_backend("local", workers=2, shard_count=4)
        assert resolved.workers == 2
