"""The backend byte-identity matrix (acceptance for the backend layer).

Three fixed worlds × every shipped backend — serial, local pool at one
and two workers, simulated cluster at two and four nodes, each cluster
size with and without a scripted mid-run leave/join — must produce:

* byte-identical canonical study exports through ``AdoptionStudy.run``,
* byte-identical stream-engine state digests when the run's segments
  replay through :class:`StreamEngine`,
* byte-identical sketch-plane state digests through the sharded store
  rebuild, and
* equal whole-history detection through store manifest slices,

all pinned against the serial baselines. The slice tests also prove
detection runs partition-by-partition from disk: no slice worker ever
materialises the whole-history batch.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.parallel.backend import LocalPoolBackend, SerialBackend
from repro.parallel.cluster import ClusterBackend, ClusterSchedule
from repro.reporting.export import study_to_dict
from repro.sketch.build import sketch_from_store, sketch_from_store_sharded
from repro.store import SegmentStore
from repro.stream.checkpoint import state_digest
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed

SCALE = 400000
SEEDS = (5, 17, 31)
SOURCES = ("com", "net", "org")

#: One node leaves mid-run and a fresh one joins later — the churn
#: every cluster variant must shrug off byte-for-byte.
CHURN = ClusterSchedule.scripted((2, "leave", 0), (5, "join", 9))

VARIANTS = {
    "serial": lambda: SerialBackend(),
    "pool-w1": lambda: LocalPoolBackend(workers=1),
    "pool-w2": lambda: LocalPoolBackend(workers=2),
    "cluster-2": lambda: ClusterBackend(nodes=2),
    "cluster-4": lambda: ClusterBackend(nodes=4),
    "cluster-2-churn": lambda: ClusterBackend(nodes=2, schedule=CHURN),
    "cluster-4-churn": lambda: ClusterBackend(nodes=4, schedule=CHURN),
}


def _canonical(results) -> str:
    return json.dumps(study_to_dict(results), sort_keys=True)


def _stream_digest(world, segments) -> str:
    feed = SegmentReplayFeed(world, segments)
    engine = StreamEngine(world.horizon, windows=feed.windows())
    engine.ingest_feed(feed.days())
    return state_digest(engine)


@pytest.fixture(scope="module", params=SEEDS)
def baseline(request, tmp_path_factory):
    """Serial ground truth per seed: study, landed store, digests."""
    from repro.world.scenario import ScenarioConfig, build_paper_world

    world = build_paper_world(
        ScenarioConfig(scale=SCALE, seed=request.param)
    )
    study = AdoptionStudy(world)
    results = study.run()
    assert any(results.detection_gtld.any_use_combined)
    directory = tmp_path_factory.mktemp(f"backends-{request.param}")
    store = SegmentStore(str(directory), create=True)
    pending = []
    for part in SegmentReplayFeed(world, results.segments).days():
        pending.append((part.source, part.day, list(part.observations)))
        if len(pending) >= 250:
            store.append_partitions(pending)
            pending = []
    store.append_partitions(pending)
    truth = {
        "export": _canonical(results),
        "stream": _stream_digest(world, results.segments),
        "sketch": sketch_from_store(
            store, sources=SOURCES
        ).state_digest(),
    }
    yield world, study, results, store, truth
    store.close()


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_backend_matrix_byte_identity(baseline, variant):
    """Exports and stream/sketch digests across the whole matrix."""
    world, _, _, store, truth = baseline
    run = AdoptionStudy(world).run(
        parallel=True, backend=VARIANTS[variant]()
    )
    assert _canonical(run) == truth["export"]
    assert _stream_digest(world, run.segments) == truth["stream"]
    sharded = sketch_from_store_sharded(
        store, sources=SOURCES, backend=VARIANTS[variant]()
    )
    assert sharded.state_digest() == truth["sketch"]


#: Slice detection re-decodes the partition list once per slice, so
#: these variants pin shard_count explicitly to keep the pass cheap.
DETECT_VARIANTS = {
    "serial": lambda: SerialBackend(shard_count=2),
    "cluster-2-churn": lambda: ClusterBackend(
        nodes=2, shard_count=2, schedule=CHURN
    ),
    "cluster-4": lambda: ClusterBackend(nodes=4, shard_count=4),
}


@pytest.mark.parametrize("variant", sorted(DETECT_VARIANTS))
def test_detect_from_slices_equal(baseline, variant):
    _, study, results, store, _ = baseline
    detected = study.detect_from_store(
        store, SOURCES, backend=DETECT_VARIANTS[variant]()
    )
    assert detected == results.detection_gtld


class TestManifestSlices:
    def test_domain_slices_cover_disjointly(self, baseline):
        _, _, _, store, _ = baseline
        slices = store.manifest_slices(2, sources=SOURCES)
        assert [s.domain_shard for s in slices] == [(0, 2), (1, 2)]
        partitions = slices[0].partitions
        assert partitions == tuple(sorted(partitions))
        sizes = []
        for manifest_slice in slices:
            assert manifest_slice.partitions == partitions
            sizes.append(len(manifest_slice.load_batch()))
        total = sum(
            len(store.batch(source, day)) for source, day in partitions
        )
        # Disjoint hash shards that sum to the full history; no single
        # slice ever materialises the whole-history batch.
        assert sum(sizes) == total
        assert all(0 < size < total for size in sizes)

    def test_partition_slices_split_contiguously(self, baseline):
        _, _, _, store, _ = baseline
        slices = store.manifest_slices(
            3, sources=SOURCES, by="partitions"
        )
        full = store.manifest_slices(1, sources=SOURCES)[0].partitions
        joined = tuple(key for s in slices for key in s.partitions)
        assert joined == full
        assert all(s.domain_shard is None for s in slices)

    def test_rejects_bad_split(self, baseline):
        _, _, _, store, _ = baseline
        with pytest.raises(ValueError):
            store.manifest_slices(0)
        with pytest.raises(ValueError):
            store.manifest_slices(2, by="bogus")
