"""ShardedExecutor: worker resolution, serial fallback, ordering."""

import os
import time

import pytest

from repro.parallel.executor import (
    REPRO_WORKERS_ENV,
    SHARDS_PER_WORKER,
    ShardedExecutor,
    resolve_workers,
)

_INIT_STATE = {}


def _record_pid(shard_index, payload):
    return (shard_index, payload, os.getpid())


def _sleepy_identity(shard_index, payload):
    # Shard 0 finishes last; collection order must not care.
    if shard_index == 0:
        time.sleep(0.3)
    return shard_index


def _set_init_state(value):
    _INIT_STATE["value"] = value


def _read_init_state(shard_index, payload):
    return _INIT_STATE.get("value")


def _explode(shard_index, payload):
    raise ValueError(f"shard {shard_index} exploded")


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "9")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "6")
        assert resolve_workers() == 6

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(REPRO_WORKERS_ENV, raising=False)
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_env_garbage_clamps_to_one_with_warning(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "garbage")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers() == 1

    def test_env_zero_clamps_to_one_with_warning(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "0")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers() == 1

    def test_env_negative_clamps_to_one_with_warning(self, monkeypatch):
        monkeypatch.setenv(REPRO_WORKERS_ENV, "-3")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_workers() == 1

    def test_shard_count_defaults_to_multiple_of_workers(self):
        executor = ShardedExecutor(workers=3)
        assert executor.shard_count == 3 * SHARDS_PER_WORKER

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ShardedExecutor(workers=1, shard_count=0)


class TestSerialFallback:
    def test_single_worker_runs_in_process(self):
        executor = ShardedExecutor(workers=1, shard_count=4)
        results = executor.map_shards(_record_pid, ["a", "b", "c", "d"])
        assert [payload for _, payload, _ in results] == ["a", "b", "c", "d"]
        assert {pid for _, _, pid in results} == {os.getpid()}

    def test_single_shard_runs_in_process(self):
        executor = ShardedExecutor(workers=4, shard_count=1)
        results = executor.map_shards(_record_pid, ["only"])
        assert results == [(0, "only", os.getpid())]

    def test_initializer_runs_in_process(self):
        _INIT_STATE.clear()
        executor = ShardedExecutor(workers=1, shard_count=2)
        results = executor.map_shards(
            _read_init_state,
            ["x", "y"],
            initializer=_set_init_state,
            initargs=("seeded",),
        )
        assert results == ["seeded", "seeded"]
        assert _INIT_STATE["value"] == "seeded"

    def test_errors_propagate(self):
        executor = ShardedExecutor(workers=1, shard_count=2)
        with pytest.raises(ValueError, match="shard 0 exploded"):
            executor.map_shards(_explode, ["a", "b"])


class TestProcessPool:
    def test_results_in_shard_index_order(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        results = executor.map_shards(_sleepy_identity, list("abcd"))
        assert results == [0, 1, 2, 3]

    def test_work_happens_in_child_processes(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        results = executor.map_shards(_record_pid, list("abcd"))
        assert [payload for _, payload, _ in results] == list("abcd")
        assert os.getpid() not in {pid for _, _, pid in results}

    def test_initializer_reaches_workers(self):
        executor = ShardedExecutor(workers=2, shard_count=4)
        results = executor.map_shards(
            _read_init_state,
            list("abcd"),
            initializer=_set_init_state,
            initargs=("forked",),
        )
        assert results == ["forked"] * 4

    def test_errors_propagate_from_workers(self):
        executor = ShardedExecutor(workers=2, shard_count=3)
        with pytest.raises(ValueError, match="exploded"):
            executor.map_shards(_explode, ["a", "b", "c"])
