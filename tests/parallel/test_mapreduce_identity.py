"""ParallelBackend: engine outputs and counters are deterministic.

Two guarantees, both exercised against real measurement records:

* at a fixed shard count, outputs **and aggregated counters** are
  identical for any worker count (the chunking — and hence every
  per-chunk map+combine — doesn't depend on who executes it);
* across shard counts, and against the backend-less serial engine,
  outputs are identical (the jobs' combiners are associative sums, and
  chunk-order merging preserves per-key value order).
"""

from dataclasses import asdict

import pytest

from repro.core.references import SignatureCatalog
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.jobs import (
    daily_detection_job,
    ns_sld_frequency_job,
    reference_count_job,
)
from repro.measurement.scheduler import ClusterManager
from repro.parallel.mapreduce import ParallelBackend

CATALOG = SignatureCatalog.paper_table2()

JOBS = {
    "daily-detection": lambda: daily_detection_job(CATALOG),
    "reference-count": lambda: reference_count_job(CATALOG),
    "ns-sld-frequency": lambda: ns_sld_frequency_job(),
}


@pytest.fixture(scope="module")
def records(tiny_world):
    manager = ClusterManager(tiny_world, enrich=True)
    rows = []
    for source in ("com", "net", "org"):
        rows.extend(manager.measure_day(source, 30))
    return rows


@pytest.fixture(scope="module")
def serial_runs(records):
    runs = {}
    for name, make_job in JOBS.items():
        engine = MapReduceEngine(partitions=8)
        outputs = engine.run(make_job(), records)
        runs[name] = (outputs, asdict(engine.last_counters))
    return runs


@pytest.mark.parametrize("job_name", sorted(JOBS))
class TestAcrossWorkerCounts:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_outputs_match_serial_engine(
        self, records, serial_runs, job_name, workers
    ):
        engine = MapReduceEngine(
            partitions=8,
            backend=ParallelBackend(workers=workers, shard_count=6),
        )
        outputs = engine.run(JOBS[job_name](), records)
        assert outputs == serial_runs[job_name][0]

    def test_counters_independent_of_worker_count(self, records, job_name):
        counters = []
        for workers in (1, 2, 8):
            engine = MapReduceEngine(
                partitions=8,
                backend=ParallelBackend(workers=workers, shard_count=6),
            )
            engine.run(JOBS[job_name](), records)
            counters.append(asdict(engine.last_counters))
        assert counters[0] == counters[1] == counters[2]

    def test_map_side_counters_match_serial(
        self, records, serial_runs, job_name
    ):
        """records_read / pairs_emitted / reduce counters equal serial.

        ``pairs_after_combine`` legitimately differs (combine runs per
        chunk), so it is excluded here and pinned by the cross-worker
        test above instead.
        """
        engine = MapReduceEngine(
            partitions=8,
            backend=ParallelBackend(workers=2, shard_count=6),
        )
        engine.run(JOBS[job_name](), records)
        sharded = asdict(engine.last_counters)
        serial = dict(serial_runs[job_name][1])
        for counters in (sharded, serial):
            counters.pop("pairs_after_combine")
        assert sharded == serial


@pytest.mark.parametrize("job_name", sorted(JOBS))
@pytest.mark.parametrize("shard_count", [1, 3, 16])
def test_outputs_independent_of_shard_count(
    records, serial_runs, job_name, shard_count
):
    engine = MapReduceEngine(
        partitions=8,
        backend=ParallelBackend(workers=2, shard_count=shard_count),
    )
    outputs = engine.run(JOBS[job_name](), records)
    assert outputs == serial_runs[job_name][0]


def test_backend_resolves_executor_defaults():
    backend = ParallelBackend(workers=3)
    assert backend.workers == 3
    assert backend.shard_count == 12


@pytest.mark.parametrize("spec", ["serial", "cluster:2"])
@pytest.mark.parametrize("job_name", sorted(JOBS))
def test_outputs_identical_through_execution_backends(
    records, serial_runs, job_name, spec
):
    """map_combine honours --backend-style specs end to end."""
    engine = MapReduceEngine(
        partitions=8,
        backend=ParallelBackend(shard_count=6, backend=spec),
    )
    outputs = engine.run(JOBS[job_name](), records)
    assert outputs == serial_runs[job_name][0]
