"""Shared fixtures: small worlds and study results, built once per session."""

from __future__ import annotations

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.world.scenario import ScenarioConfig, build_paper_world

#: Tiny scale for unit-ish tests that need a full world.
TEST_SCALE = 40000
#: Small-but-meaningful scale for integration assertions.
STUDY_SCALE = 12000


@pytest.fixture(scope="session")
def tiny_world():
    """A very small paper world (~3.5k domains)."""
    return build_paper_world(ScenarioConfig(scale=TEST_SCALE, seed=7))


@pytest.fixture(scope="session")
def study_world():
    """A mid-size paper world for integration tests (~12k domains)."""
    return build_paper_world(ScenarioConfig(scale=STUDY_SCALE, seed=3))


@pytest.fixture(scope="session")
def study_results(study_world):
    """Full study results over the mid-size world."""
    return AdoptionStudy(study_world).run()
