"""Tests for the routing table (announce/withdraw/MOAS)."""

from repro.routing.table import RoutingTable


class TestAnnouncements:
    def test_announce_and_lookup(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        assert table.origins_for_address("10.1.2.3") == frozenset({100})

    def test_most_specific_wins(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.announce("10.1.0.0/16", 200)
        assert table.origins_for_address("10.1.2.3") == frozenset({200})
        assert table.origins_for_address("10.2.0.1") == frozenset({100})

    def test_moas_accumulates_origins(self):
        table = RoutingTable()
        table.announce("10.1.2.0/24", 300)
        table.announce("10.1.2.0/24", 301)
        assert table.origins_for_address("10.1.2.9") == frozenset({300, 301})

    def test_idempotent_per_origin(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.announce("10.0.0.0/8", 100)
        assert table.origins_for_prefix("10.0.0.0/8") == frozenset({100})

    def test_unrouted_address(self):
        assert RoutingTable().origins_for_address("10.0.0.1") == frozenset()

    def test_most_specific_returns_route(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        route = table.most_specific("10.1.2.3")
        assert route.origin == 100
        assert str(route.prefix) == "10.0.0.0/8"
        assert "via AS100" in str(route)

    def test_most_specific_unrouted(self):
        assert RoutingTable().most_specific("10.0.0.1") is None


class TestWithdrawals:
    def test_withdraw_single_origin(self):
        table = RoutingTable()
        table.announce("10.1.2.0/24", 300)
        table.announce("10.1.2.0/24", 301)
        assert table.withdraw("10.1.2.0/24", 300)
        assert table.origins_for_address("10.1.2.9") == frozenset({301})

    def test_withdraw_entirely(self):
        table = RoutingTable()
        table.announce("10.1.2.0/24", 300)
        table.announce("10.1.2.0/24", 301)
        assert table.withdraw("10.1.2.0/24")
        assert table.origins_for_address("10.1.2.9") == frozenset()
        assert len(table) == 0

    def test_withdraw_missing_returns_false(self):
        assert not RoutingTable().withdraw("10.0.0.0/8")

    def test_withdraw_exposes_covering_prefix(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.announce("10.1.0.0/16", 200)
        table.withdraw("10.1.0.0/16", 200)
        assert table.origins_for_address("10.1.2.3") == frozenset({100})


class TestExportAndStats:
    def test_routes_iteration(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.announce("10.1.2.0/24", 300)
        table.announce("10.1.2.0/24", 301)
        routes = [(str(r.prefix), r.origin) for r in table.routes()]
        assert ("10.1.2.0/24", 300) in routes
        assert ("10.1.2.0/24", 301) in routes
        assert len(routes) == 3

    def test_counters(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.withdraw("10.0.0.0/8", 100)
        assert table.announcements_processed == 1
        assert table.withdrawals_processed == 1

    def test_snapshot_pfx2as(self):
        table = RoutingTable()
        table.announce("10.0.0.0/8", 100)
        table.announce("10.1.2.0/24", 300)
        table.announce("10.1.2.0/24", 301)
        snapshot = table.snapshot_pfx2as()
        assert snapshot.lookup("10.1.2.5") == frozenset({300, 301})
        assert snapshot.lookup("10.5.5.5") == frozenset({100})
        assert len(snapshot.moas_entries()) == 1
