"""Tests for the binary radix trie, incl. a reference-model property test."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.routing.prefixtrie import PrefixTrie


class TestBasics:
    def test_insert_and_get(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.get("10.0.0.0/8") == "a"

    def test_get_missing(self):
        assert PrefixTrie().get("10.0.0.0/8") is None

    def test_get_is_exact_not_covering(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.get("10.0.0.0/16") is None

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.0.0.0/8", "b")
        assert trie.get("10.0.0.0/8") == "b"
        assert len(trie) == 1

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.0/24", 1)
        assert "192.0.2.0/24" in trie
        assert "192.0.3.0/24" not in trie

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.remove("10.0.0.0/8")
        assert len(trie) == 0
        assert trie.get("10.0.0.0/8") is None

    def test_remove_missing_returns_false(self):
        assert not PrefixTrie().remove("10.0.0.0/8")

    def test_remove_keeps_more_specific(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.1.0.0/16", "b")
        trie.remove("10.0.0.0/8")
        assert trie.get("10.1.0.0/16") == "b"
        assert trie.longest_match("10.1.2.3")[1] == "b"

    def test_strict_network_required(self):
        with pytest.raises(ValueError):
            PrefixTrie().insert("10.0.0.1/8", "x")


class TestLongestMatch:
    def test_most_specific_wins(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.0.0/16", "mid")
        trie.insert("10.1.2.0/24", "long")
        prefix, value = trie.longest_match("10.1.2.3")
        assert value == "long"
        assert prefix == ipaddress.IPv4Network("10.1.2.0/24")

    def test_fallback_to_covering(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.2.0/24", "long")
        assert trie.longest_match("10.9.9.9")[1] == "short"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.longest_match("11.0.0.1") is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "default")
        prefix, value = trie.longest_match("203.0.113.7")
        assert value == "default"
        assert prefix.prefixlen == 0

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.1/32", "host")
        assert trie.longest_match("192.0.2.1")[1] == "host"
        assert trie.longest_match("192.0.2.2") is None

    def test_ipv6(self):
        trie = PrefixTrie()
        trie.insert("2001:db8::/32", "doc")
        trie.insert("2001:db8:1::/48", "sub")
        assert trie.longest_match("2001:db8:1::5")[1] == "sub"
        assert trie.longest_match("2001:db8:2::5")[1] == "doc"

    def test_families_are_separate(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "v4")
        assert trie.longest_match("2001:db8::1") is None


class TestItems:
    def test_items_yield_all(self):
        trie = PrefixTrie()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24",
                    "2001:db8::/32"]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        got = {str(prefix) for prefix, _ in trie.items()}
        assert got == set(prefixes)

    def test_len(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        trie.insert("10.1.0.0/16", 2)
        trie.insert("2001:db8::/32", 3)
        assert len(trie) == 3


@st.composite
def _prefixes(draw):
    prefixlen = draw(st.integers(min_value=1, max_value=28))
    base = draw(st.integers(min_value=0, max_value=2**prefixlen - 1))
    network = ipaddress.IPv4Network((base << (32 - prefixlen), prefixlen))
    return network


@given(
    entries=st.lists(_prefixes(), min_size=1, max_size=30, unique=True),
    probe=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_longest_match_agrees_with_linear_scan(entries, probe):
    trie = PrefixTrie()
    for index, network in enumerate(entries):
        trie.insert(network, index)
    address = ipaddress.IPv4Address(probe)
    expected = None
    for index, network in enumerate(entries):
        if address in network:
            if expected is None or network.prefixlen > expected[0].prefixlen:
                expected = (network, index)
    got = trie.longest_match(address)
    assert got == expected


@given(entries=st.lists(_prefixes(), min_size=1, max_size=20, unique=True))
def test_insert_remove_leaves_trie_empty(entries):
    trie = PrefixTrie()
    for network in entries:
        trie.insert(network, str(network))
    for network in entries:
        assert trie.remove(network)
    assert len(trie) == 0
    for network in entries:
        assert trie.get(network) is None
