"""Tests for the binary radix trie, incl. a reference-model property test."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.routing.prefixtrie import PrefixTrie


class TestBasics:
    def test_insert_and_get(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.get("10.0.0.0/8") == "a"

    def test_get_missing(self):
        assert PrefixTrie().get("10.0.0.0/8") is None

    def test_get_is_exact_not_covering(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.get("10.0.0.0/16") is None

    def test_replace_value(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.0.0.0/8", "b")
        assert trie.get("10.0.0.0/8") == "b"
        assert len(trie) == 1

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.0/24", 1)
        assert "192.0.2.0/24" in trie
        assert "192.0.3.0/24" not in trie

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.remove("10.0.0.0/8")
        assert len(trie) == 0
        assert trie.get("10.0.0.0/8") is None

    def test_remove_missing_returns_false(self):
        assert not PrefixTrie().remove("10.0.0.0/8")

    def test_remove_keeps_more_specific(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.1.0.0/16", "b")
        trie.remove("10.0.0.0/8")
        assert trie.get("10.1.0.0/16") == "b"
        assert trie.longest_match("10.1.2.3")[1] == "b"

    def test_strict_network_required(self):
        with pytest.raises(ValueError):
            PrefixTrie().insert("10.0.0.1/8", "x")


class TestLongestMatch:
    def test_most_specific_wins(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.0.0/16", "mid")
        trie.insert("10.1.2.0/24", "long")
        prefix, value = trie.longest_match("10.1.2.3")
        assert value == "long"
        assert prefix == ipaddress.IPv4Network("10.1.2.0/24")

    def test_fallback_to_covering(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.2.0/24", "long")
        assert trie.longest_match("10.9.9.9")[1] == "short"

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        assert trie.longest_match("11.0.0.1") is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "default")
        prefix, value = trie.longest_match("203.0.113.7")
        assert value == "default"
        assert prefix.prefixlen == 0

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert("192.0.2.1/32", "host")
        assert trie.longest_match("192.0.2.1")[1] == "host"
        assert trie.longest_match("192.0.2.2") is None

    def test_ipv6(self):
        trie = PrefixTrie()
        trie.insert("2001:db8::/32", "doc")
        trie.insert("2001:db8:1::/48", "sub")
        assert trie.longest_match("2001:db8:1::5")[1] == "sub"
        assert trie.longest_match("2001:db8:2::5")[1] == "doc"

    def test_families_are_separate(self):
        trie = PrefixTrie()
        trie.insert("0.0.0.0/0", "v4")
        assert trie.longest_match("2001:db8::1") is None


class TestItems:
    def test_items_yield_all(self):
        trie = PrefixTrie()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24",
                    "2001:db8::/32"]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        got = {str(prefix) for prefix, _ in trie.items()}
        assert got == set(prefixes)

    def test_len(self):
        trie = PrefixTrie()
        trie.insert("10.0.0.0/8", 1)
        trie.insert("10.1.0.0/16", 2)
        trie.insert("2001:db8::/32", 3)
        assert len(trie) == 3


@st.composite
def _prefixes(draw):
    prefixlen = draw(st.integers(min_value=1, max_value=28))
    base = draw(st.integers(min_value=0, max_value=2**prefixlen - 1))
    network = ipaddress.IPv4Network((base << (32 - prefixlen), prefixlen))
    return network


@given(
    entries=st.lists(_prefixes(), min_size=1, max_size=30, unique=True),
    probe=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_longest_match_agrees_with_linear_scan(entries, probe):
    trie = PrefixTrie()
    for index, network in enumerate(entries):
        trie.insert(network, index)
    address = ipaddress.IPv4Address(probe)
    expected = None
    for index, network in enumerate(entries):
        if address in network:
            if expected is None or network.prefixlen > expected[0].prefixlen:
                expected = (network, index)
    got = trie.longest_match(address)
    assert got == expected


@given(entries=st.lists(_prefixes(), min_size=1, max_size=20, unique=True))
def test_insert_remove_leaves_trie_empty(entries):
    trie = PrefixTrie()
    for network in entries:
        trie.insert(network, str(network))
    for network in entries:
        assert trie.remove(network)
    assert len(trie) == 0
    for network in entries:
        assert trie.get(network) is None


class TestLpmCache:
    def _trie(self, **kwargs):
        trie = PrefixTrie(**kwargs)
        trie.insert("10.0.0.0/8", "coarse")
        trie.insert("10.1.0.0/16", "fine")
        return trie

    def test_repeat_lookup_hits_cache(self):
        trie = self._trie()
        first = trie.longest_match("10.1.2.3")
        assert (trie.lpm_cache_hits, trie.lpm_cache_misses) == (0, 1)
        second = trie.longest_match("10.1.2.3")
        assert (trie.lpm_cache_hits, trie.lpm_cache_misses) == (1, 1)
        assert second == first

    def test_negative_lookup_is_cached(self):
        trie = self._trie()
        assert trie.longest_match("192.0.2.1") is None
        assert trie.longest_match("192.0.2.1") is None
        assert trie.lpm_cache_hits == 1

    def test_string_and_parsed_forms_share_entries_and_agree(self):
        trie = self._trie()
        from_text = trie.longest_match("10.1.2.3")
        from_parsed = trie.longest_match(ipaddress.ip_address("10.1.2.3"))
        assert from_parsed == from_text
        assert trie.lpm_cache_hits == 1  # same packed-int key

    def test_insert_invalidates(self):
        trie = self._trie()
        assert trie.longest_match("10.1.2.3")[1] == "fine"
        trie.insert("10.1.2.0/24", "finer")
        result = trie.longest_match("10.1.2.3")
        assert result[1] == "finer"
        assert trie.lpm_cache_hits == 0

    def test_remove_invalidates(self):
        trie = self._trie()
        assert trie.longest_match("10.1.2.3")[1] == "fine"
        trie.remove("10.1.0.0/16")
        assert trie.longest_match("10.1.2.3")[1] == "coarse"
        assert trie.lpm_cache_hits == 0

    def test_size_zero_disables_caching(self):
        trie = self._trie(lpm_cache_size=0)
        for _ in range(3):
            assert trie.longest_match("10.1.2.3")[1] == "fine"
        assert (trie.lpm_cache_hits, trie.lpm_cache_misses) == (0, 0)
        assert not trie._lpm_cache

    def test_rejects_negative_cache_size(self):
        with pytest.raises(ValueError):
            PrefixTrie(lpm_cache_size=-1)

    def test_lru_eviction_bounds_size(self):
        trie = self._trie(lpm_cache_size=2)
        trie.longest_match("10.1.0.1")
        trie.longest_match("10.1.0.2")
        trie.longest_match("10.1.0.3")  # evicts 10.1.0.1
        assert len(trie._lpm_cache) == 2
        trie.longest_match("10.1.0.1")
        assert trie.lpm_cache_misses == 4
        assert trie.lpm_cache_hits == 0

    def test_lru_recency_is_refreshed_on_hit(self):
        trie = self._trie(lpm_cache_size=2)
        trie.longest_match("10.1.0.1")
        trie.longest_match("10.1.0.2")
        trie.longest_match("10.1.0.1")  # refresh → 10.1.0.2 is now LRU
        trie.longest_match("10.1.0.3")  # evicts 10.1.0.2
        trie.longest_match("10.1.0.1")
        assert trie.lpm_cache_hits == 2

    def test_cached_results_agree_with_uncached(self):
        cached = self._trie()
        uncached = self._trie(lpm_cache_size=0)
        probes = [f"10.{i % 3}.{i % 7}.{i % 11}" for i in range(50)] * 2
        for probe in probes:
            assert cached.longest_match(probe) == uncached.longest_match(
                probe
            )
        assert cached.lpm_cache_hits > 0
