"""Tests for the AS registry."""

import pytest

from repro.routing.asn import ASRegistry, AutonomousSystem


class TestAutonomousSystem:
    def test_valid(self):
        assert AutonomousSystem(13335, "CloudFlare").number == 13335

    @pytest.mark.parametrize("number", [0, -1, 2**32])
    def test_invalid_numbers(self, number):
        with pytest.raises(ValueError):
            AutonomousSystem(number, "bad")

    def test_str(self):
        assert str(AutonomousSystem(7, "X")) == "AS7 (X)"


class TestRegistry:
    def test_register_explicit_number(self):
        registry = ASRegistry()
        asys = registry.register("Incapsula", 19551)
        assert asys.number == 19551
        assert registry.get(19551) == asys

    def test_register_auto_allocates(self):
        registry = ASRegistry()
        first = registry.register("A")
        second = registry.register("B")
        assert second.number == first.number + 1

    def test_duplicate_number_rejected(self):
        registry = ASRegistry()
        registry.register("A", 100)
        with pytest.raises(ValueError):
            registry.register("B", 100)

    def test_auto_allocation_skips_taken(self):
        registry = ASRegistry(first_number=100)
        registry.register("A", 100)
        assert registry.register("B").number == 101

    def test_find_by_name_case_insensitive(self):
        registry = ASRegistry()
        registry.register("CloudFlare, Inc.", 13335)
        registry.register("Level 3 Communications", 3356)
        registry.register("Level 3 Communications", 3549)
        assert [a.number for a in registry.find_by_name("level 3")] == [
            3356,
            3549,
        ]
        assert registry.find_by_name("cloudflare")[0].number == 13335

    def test_name_of_unknown(self):
        assert ASRegistry().name_of(42) == "AS42"

    def test_contains_and_len(self):
        registry = ASRegistry()
        registry.register("A", 5)
        assert 5 in registry
        assert 6 not in registry
        assert len(registry) == 1

    def test_iteration_sorted(self):
        registry = ASRegistry()
        registry.register("B", 20)
        registry.register("A", 10)
        assert [a.number for a in registry] == [10, 20]
