"""Tests for the Routeviews-style pfx2as dataset."""

import ipaddress

import pytest

from repro.routing.pfx2as import Pfx2As, Pfx2AsEntry


def entry(prefix, *origins):
    return Pfx2AsEntry(ipaddress.ip_network(prefix), frozenset(origins))


class TestEntry:
    def test_requires_origin(self):
        with pytest.raises(ValueError):
            entry("10.0.0.0/8")

    def test_single_origin_line(self):
        assert entry("10.0.0.0/8", 100).to_line() == "10.0.0.0\t8\t100"

    def test_moas_line_joined_with_underscore(self):
        assert entry("10.1.2.0/24", 301, 300).to_line() == (
            "10.1.2.0\t24\t300_301"
        )

    def test_from_line(self):
        parsed = Pfx2AsEntry.from_line("10.1.2.0\t24\t300_301")
        assert parsed == entry("10.1.2.0/24", 300, 301)
        assert parsed.is_moas()

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            Pfx2AsEntry.from_line("10.0.0.0 8 100")


class TestDataset:
    def test_lookup_most_specific(self):
        dataset = Pfx2As(
            [entry("10.0.0.0/8", 1), entry("10.1.0.0/16", 2)]
        )
        assert dataset.lookup("10.1.9.9") == frozenset({2})
        assert dataset.lookup("10.9.9.9") == frozenset({1})

    def test_lookup_unrouted_is_empty(self):
        dataset = Pfx2As([entry("10.0.0.0/8", 1)])
        assert dataset.lookup("203.0.113.1") == frozenset()

    def test_lookup_prefix(self):
        dataset = Pfx2As([entry("10.0.0.0/8", 1)])
        assert str(dataset.lookup_prefix("10.2.3.4")) == "10.0.0.0/8"
        assert dataset.lookup_prefix("203.0.113.1") is None

    def test_duplicate_prefixes_merge_origins(self):
        dataset = Pfx2As(
            [entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)]
        )
        assert dataset.lookup("10.0.0.1") == frozenset({1, 2})
        assert len(dataset) == 1

    def test_text_roundtrip(self):
        dataset = Pfx2As(
            [
                entry("10.0.0.0/8", 100),
                entry("10.1.2.0/24", 300, 301),
                entry("2001:db8::/32", 500),
            ]
        )
        parsed = Pfx2As.from_text(dataset.to_text())
        assert len(parsed) == 3
        assert parsed.lookup("10.1.2.1") == frozenset({300, 301})
        assert parsed.lookup("2001:db8::1") == frozenset({500})

    def test_from_text_ignores_comments(self):
        text = "# comment\n10.0.0.0\t8\t42\n\n"
        dataset = Pfx2As.from_text(text)
        assert dataset.lookup("10.0.0.1") == frozenset({42})

    def test_iteration_sorted(self):
        dataset = Pfx2As(
            [entry("192.0.2.0/24", 3), entry("10.0.0.0/8", 1)]
        )
        listed = [str(e.prefix) for e in dataset]
        assert listed == ["10.0.0.0/8", "192.0.2.0/24"]

    def test_moas_entries(self):
        dataset = Pfx2As(
            [entry("10.0.0.0/8", 1), entry("10.1.0.0/16", 2, 3)]
        )
        assert [e.origins for e in dataset.moas_entries()] == [
            frozenset({2, 3})
        ]
