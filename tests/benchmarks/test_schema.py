"""The benchmark-JSON schema gate (benchmarks/schema.py).

CI uploads ``BENCH_*.json`` artifacts whose ``extra_info`` blocks are
read downstream; the schema gate is what turns "a bench quietly stopped
emitting extra_info" into a red CI step. These tests pin the validator
itself, and a static sweep asserts every bench file CI uploads actually
writes ``extra_info`` so the gate keeps passing for the right reason.
"""

from __future__ import annotations

import importlib.util
import json
import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parents[2]
BENCHMARKS = REPO / "benchmarks"

_spec = importlib.util.spec_from_file_location(
    "bench_schema", BENCHMARKS / "schema.py"
)
schema = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
_spec.loader.exec_module(schema)


def entry(name="bench_x.py::test_x", **overrides):
    payload = {
        "name": name,
        "fullname": name,
        "stats": {"mean": 0.5, "rounds": 2},
        "extra_info": {"rows": 10},
    }
    payload.update(overrides)
    return payload


def test_valid_payload_passes():
    names = schema.validate_payload({"benchmarks": [entry()]})
    assert names == ["bench_x.py::test_x"]


def test_missing_benchmarks_list_fails():
    with pytest.raises(schema.SchemaError, match="benchmarks"):
        schema.validate_payload({})
    with pytest.raises(schema.SchemaError, match="benchmarks"):
        schema.validate_payload({"benchmarks": []})


def test_entry_without_name_fails():
    bad = entry()
    del bad["name"], bad["fullname"]
    with pytest.raises(schema.SchemaError, match="name"):
        schema.validate_payload({"benchmarks": [bad]})


def test_entry_without_stats_fails():
    with pytest.raises(schema.SchemaError, match="stats"):
        schema.validate_payload(
            {"benchmarks": [entry(stats={})]}
        )


def test_missing_extra_info_fails():
    bad = entry()
    del bad["extra_info"]
    with pytest.raises(schema.SchemaError, match="extra_info"):
        schema.validate_payload({"benchmarks": [bad]})


def test_empty_extra_info_fails():
    with pytest.raises(schema.SchemaError, match="extra_info"):
        schema.validate_payload(
            {"benchmarks": [entry(extra_info={})]}
        )


def test_validate_file_round_trip(tmp_path):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"benchmarks": [entry()]}))
    assert schema.validate_file(str(good)) == ["bench_x.py::test_x"]

    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(schema.SchemaError, match="unreadable"):
        schema.validate_file(str(bad))


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps({"benchmarks": [entry()]}))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"benchmarks": [entry(extra_info={})]}))

    assert schema.main([str(good)]) == 0
    assert schema.main([str(good), str(bad)]) == 1
    assert schema.main([]) == 2
    err = capsys.readouterr().err
    assert "FAIL" in err


def _uploaded_bench_files():
    """Bench modules CI runs with ``--benchmark-json`` for upload."""
    workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    return sorted(
        set(re.findall(r"benchmarks/(bench_\w+\.py)", workflow))
    )


def test_ci_validates_every_uploaded_bench():
    """Each BENCH_*.json CI produces is schema-checked before upload."""
    workflow = (REPO / ".github" / "workflows" / "ci.yml").read_text()
    produced = set(re.findall(r"--benchmark-json=(BENCH_\w+\.json)", workflow))
    validated = set()
    for line in workflow.splitlines():
        if "benchmarks/schema.py" in line:
            validated.update(re.findall(r"BENCH_\w+\.json", line))
    assert produced, "CI no longer produces benchmark JSON?"
    assert produced <= validated, (
        f"uploaded bench JSON missing a schema gate: "
        f"{sorted(produced - validated)}"
    )


def test_uploaded_benches_emit_extra_info():
    """The gate must pass for the right reason: benches write extra_info."""
    missing = [
        name
        for name in _uploaded_bench_files()
        if "extra_info" not in (BENCHMARKS / name).read_text()
    ]
    assert not missing, (
        f"CI-run bench modules never touch extra_info: {missing}"
    )


def test_real_bench_output_passes_gate(tmp_path):
    """A minimal pytest-benchmark-shaped payload passes end to end."""
    payload = {
        "machine_info": {"python_version": sys.version.split()[0]},
        "benchmarks": [
            entry(
                "benchmarks/bench_sketch.py::test_sketch",
                extra_info={"rows": 174384, "speedup": 17.7},
            )
        ],
    }
    path = tmp_path / "BENCH_sketch.json"
    path.write_text(json.dumps(payload))
    assert schema.validate_file(str(path))
