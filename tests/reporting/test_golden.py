"""Golden-fixture regression suite for detection output.

The fixtures under ``tests/fixtures/golden/`` pin the rendered artifacts
and the Table-2-style detection summary of a study over the same world
``tiny_world`` builds (``scale=40000, seed=7``). A failure here means
detection output changed: if the change is intentional, regenerate with

    PYTHONPATH=src python tests/fixtures/golden/regen.py

and review the diff; if not, you just caught a regression.
"""

import json
import os

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.reporting import figures
from repro.reporting.export import study_to_dict

GOLDEN_DIR = os.path.join(
    os.path.dirname(__file__), "..", "fixtures", "golden"
)

RENDERERS = {
    "table1.txt": figures.render_table1,
    "fig2.txt": figures.render_figure2,
    "fig6.txt": figures.render_figure6,
}


def read_golden(filename):
    with open(os.path.join(GOLDEN_DIR, filename)) as handle:
        return handle.read()


@pytest.fixture(scope="module")
def golden_results(tiny_world):
    return AdoptionStudy(tiny_world).run()


class TestGoldenArtifacts:
    @pytest.mark.parametrize("filename", sorted(RENDERERS))
    def test_rendered_artifact_matches_fixture(
        self, golden_results, filename
    ):
        rendered = RENDERERS[filename](golden_results) + "\n"
        assert rendered == read_golden(filename)

    def test_detection_summary_matches_fixture(self, golden_results):
        payload = study_to_dict(golden_results)
        summary = {
            "any_use": payload["any_use"],
            "providers": payload["providers"],
            "growth": payload["growth"],
            "dps_distribution": payload["dps_distribution"],
        }
        golden = json.loads(read_golden("detection.json"))
        # Round-trip through JSON so both sides carry JSON's type system
        # (tuples become lists, enum keys become strings).
        assert json.loads(json.dumps(summary, sort_keys=True)) == golden
