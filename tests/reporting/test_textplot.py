"""Tests for terminal plotting."""

from repro.reporting.textplot import cdf_chart, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_ramp(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_length_matches_input(self):
        assert len(sparkline(list(range(40)))) == 40


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(empty chart)"

    def test_contains_legend_and_axis(self):
        chart = line_chart(
            {"adoption": [1, 2, 3, 4], "expansion": [1, 1, 1, 1]},
            x_labels=("Mar '15", "Aug '16"),
        )
        assert "adoption" in chart
        assert "expansion" in chart
        assert "Mar '15" in chart
        assert "Aug '16" in chart

    def test_resampling_long_series(self):
        chart = line_chart({"s": list(range(10_000))}, width=40)
        longest = max(len(line) for line in chart.splitlines())
        assert longest < 70

    def test_flat_series_does_not_crash(self):
        assert line_chart({"s": [5, 5, 5]})


class TestCdfChart:
    def test_empty(self):
        assert cdf_chart([]) == "(empty cdf)"

    def test_axes_and_marker(self):
        points = [(d, min(1.0, d / 10)) for d in range(1, 21)]
        chart = cdf_chart(points, marker=8.0, marker_label="P80=8d")
        assert "1.0 |" in chart
        assert "0.0 |" in chart
        assert "P80=8d" in chart
        assert ":" in chart

    def test_single_point(self):
        assert cdf_chart([(5.0, 1.0)])
