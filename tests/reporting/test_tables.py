"""Tests for table rendering and number formatting."""

from repro.reporting.tables import (
    format_bytes,
    format_count,
    render_dict_table,
    render_table,
)


class TestFormatCount:
    def test_paper_style(self):
        assert format_count(161_200_000) == "161.2M"
        assert format_count(534_500_000_000) == "534.5G"
        assert format_count(5_900) == "5.9k"
        assert format_count(550) == "550"


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(17.5 * 1024**4) == "17.5TiB"
        assert format_bytes(77.5 * 1024**3) == "77.5GiB"
        assert format_bytes(2.5 * 1024**2) == "2.5MiB"
        assert format_bytes(512) == "512B"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["Name", "Count"],
            [["a", "1"], ["longer-name", "22"]],
        )
        lines = table.splitlines()
        assert lines[0].startswith("Name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        table = render_table(["H"], [["v"]], title="Table X")
        assert table.splitlines()[0] == "Table X"

    def test_dict_table(self):
        table = render_dict_table(
            [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]
        )
        assert "a" in table.splitlines()[0]

    def test_empty_dict_table(self):
        assert render_dict_table([], title="T") == "T"
