"""Tests for study export (text artifacts + JSON)."""

import json
import os

import pytest

from repro.reporting.export import export_study, study_to_dict


class TestStudyToDict:
    def test_json_serialisable(self, study_results):
        payload = study_to_dict(study_results)
        encoded = json.dumps(payload)
        assert "growth" in payload
        assert json.loads(encoded)["horizon"] == study_results.horizon

    def test_growth_factors_present(self, study_results):
        payload = study_to_dict(study_results)
        assert payload["growth"]["DPS adoption"]["factor"] == pytest.approx(
            study_results.provider_growth_factor()
        )

    def test_series_lengths(self, study_results):
        payload = study_to_dict(study_results)
        assert len(payload["any_use"]["combined"]) == study_results.horizon
        for provider, series in payload["providers"].items():
            assert len(series["total"]) == study_results.horizon

    def test_anomalies_have_groups(self, study_results):
        payload = study_to_dict(study_results)
        assert payload["anomalies"]
        assert all("top_group" in a for a in payload["anomalies"])

    def test_exposure_included(self, study_results):
        payload = study_to_dict(study_results)
        assert "CloudFlare" in payload["exposure"]
        assert 0.0 <= payload["exposure"]["CloudFlare"][
            "exposure_ratio"
        ] <= 1.0


class TestExport:
    def test_writes_all_artifacts(self, study_results, tmp_path):
        written = export_study(study_results, str(tmp_path))
        names = {os.path.basename(path) for path in written}
        assert "fig5.txt" in names
        assert "series.json" in names
        with open(tmp_path / "fig5.txt") as handle:
            assert "DPS adoption grew" in handle.read()
        with open(tmp_path / "series.json") as handle:
            assert json.load(handle)["horizon"] == study_results.horizon

    def test_selected_artifacts_only(self, study_results, tmp_path):
        written = export_study(
            study_results, str(tmp_path), artifacts=["fig8"]
        )
        names = {os.path.basename(path) for path in written}
        assert names == {"fig8.txt", "series.json"}

    def test_unknown_artifact_rejected(self, study_results, tmp_path):
        with pytest.raises(ValueError):
            export_study(study_results, str(tmp_path), artifacts=["nope"])

    def test_creates_directory(self, study_results, tmp_path):
        target = tmp_path / "nested" / "out"
        export_study(study_results, str(target), artifacts=["fig4"])
        assert (target / "fig4.txt").exists()
