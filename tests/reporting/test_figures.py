"""Tests for the per-artifact renderers (on the shared study results)."""

from repro.reporting.figures import (
    render_attributions,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_table1,
    render_table2,
)


class TestTableRenderers:
    def test_table1_lists_all_sources(self, study_results):
        text = render_table1(study_results)
        for token in (".com", ".net", ".org", ".nl", "Alexa", "Total"):
            assert token in text

    def test_table2_with_reference_marks_matches(self, study_world):
        from repro.core.pipeline import AdoptionStudy
        from repro.core.references import SignatureCatalog

        study = AdoptionStudy(study_world)
        fingerprints = study.derive_table2(day=30)
        text = render_table2(
            fingerprints, reference=SignatureCatalog.paper_table2()
        )
        assert "CloudFlare" in text
        assert "matches Table 2" in text


class TestFigureRenderers:
    def test_figure2(self, study_results):
        text = render_figure2(study_results)
        assert "Combined" in text
        assert "peak" in text

    def test_figure3(self, study_results):
        text = render_figure3(study_results)
        assert "CloudFlare" in text
        assert "Method breakdown" in text

    def test_figure4(self, study_results):
        text = render_figure4(study_results)
        assert ".com" in text and "%" in text

    def test_figure5_mentions_growth(self, study_results):
        text = render_figure5(study_results)
        assert "DPS adoption grew" in text
        assert "anomalous days cleaned" in text

    def test_figure6(self, study_results):
        text = render_figure6(study_results)
        assert ".nl" in text or "nl" in text
        assert "Alexa" in text

    def test_figure7(self, study_results):
        text = render_figure7(study_results)
        assert "influx" in text
        assert "CloudFlare" in text

    def test_figure8(self, study_results):
        text = render_figure8(study_results)
        assert "P80" in text
        assert "Neustar" in text

    def test_attributions(self, study_results):
        text = render_attributions(study_results)
        assert "traced to" in text

    def test_provider_detail(self, study_results):
        from repro.reporting.figures import render_provider_detail

        text = render_provider_detail(study_results, "CloudFlare")
        assert "CloudFlare" in text
        assert "total" in text
        assert "NS" in text

    def test_provider_detail_unknown(self, study_results):
        from repro.reporting.figures import render_provider_detail

        assert "no data" in render_provider_detail(study_results, "Nope")

    def test_peak_cdf_renderer(self, study_results):
        from repro.reporting.figures import render_peak_cdf

        stats = study_results.peaks["Incapsula"]
        if not stats.durations:
            import pytest

            pytest.skip("no Incapsula peaks at this scale")
        text = render_peak_cdf(stats)
        assert "P80" in text
