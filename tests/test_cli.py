"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "60000", "--seed", "7"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_study_artifacts_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--artifact", "fig99"])


class TestZonefile:
    def test_listing(self, capsys):
        code = main(["zonefile", "com", "--day", "0", "--limit", "5"] + SCALE)
        out = capsys.readouterr().out
        assert code == 0
        assert "zone com day 0" in out
        assert ".com" in out

    def test_alexa_listing(self, capsys):
        code = main(["zonefile", "alexa", "--day", "400"] + SCALE)
        assert code == 0
        assert "alexa" in capsys.readouterr().out

    def test_out_of_window(self, capsys):
        code = main(["zonefile", "nl", "--day", "0"] + SCALE)
        assert code == 1


class TestPfx2as:
    def test_dump(self, capsys):
        code = main(["pfx2as", "--day", "0", "--limit", "5"] + SCALE)
        out = capsys.readouterr().out
        assert code == 0
        assert "\t" in out

    def test_lookup_cloudflare_space(self, capsys):
        from repro.world.scenario import ScenarioConfig, build_paper_world

        world = build_paper_world(ScenarioConfig(scale=60000, seed=7))
        address = world.providers["CloudFlare"].shared_addresses("x.com")[0]
        code = main(["pfx2as", "--lookup", address] + SCALE)
        out = capsys.readouterr().out
        assert code == 0
        assert "AS13335" in out

    def test_lookup_unrouted(self, capsys):
        code = main(["pfx2as", "--lookup", "203.0.113.1"] + SCALE)
        assert code == 1


class TestResolve:
    def test_resolves_existing_domain(self, capsys):
        from repro.world.scenario import ScenarioConfig, build_paper_world

        world = build_paper_world(ScenarioConfig(scale=60000, seed=7))
        name = next(iter(world.zone_names("com", 0)))
        code = main(["resolve", name, "--day", "0"] + SCALE)
        out = capsys.readouterr().out
        assert code == 0
        assert "ANSWER SECTION" in out
        assert "status NOERROR" in out

    def test_www_label(self, capsys):
        from repro.world.scenario import ScenarioConfig, build_paper_world

        world = build_paper_world(ScenarioConfig(scale=60000, seed=7))
        name = next(iter(world.zone_names("com", 0)))
        code = main(["resolve", f"www.{name}", "--day", "0"] + SCALE)
        assert code == 0

    def test_missing_domain_fails(self, capsys):
        code = main(["resolve", "no-such-name.com", "--day", "0"] + SCALE)
        assert code == 1


class TestFingerprint:
    def test_cloudflare(self, capsys):
        code = main(["fingerprint", "CloudFlare", "--day", "10"] + SCALE)
        out = capsys.readouterr().out
        assert code == 0
        assert "13335" in out
        assert "cloudflare.com" in out

    def test_unknown_provider(self, capsys):
        code = main(["fingerprint", "NoSuchDPS"] + SCALE)
        assert code == 1


class TestStudy:
    def test_selected_artifacts(self, capsys):
        code = main(
            ["study", "--artifact", "fig5", "--artifact", "exposure"]
            + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DPS adoption grew" in out
        assert "name-server exposure" in out
        assert "Table 1" not in out

    def test_output_directory(self, capsys, tmp_path):
        code = main(
            ["study", "--artifact", "fig4", "--output", str(tmp_path)]
            + SCALE
        )
        assert code == 0
        assert (tmp_path / "fig4.txt").exists()
        assert (tmp_path / "series.json").exists()

    def test_cluster_backend_runs_study(self, capsys):
        code = main(
            ["study", "--artifact", "fig5", "--backend", "cluster:2"]
            + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "DPS adoption grew" in out

    def test_unknown_backend_exits_2(self, capsys):
        code = main(["study", "--backend", "bogus"] + SCALE)
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown backend 'bogus'" in captured.err
        assert "cluster" in captured.err

    def test_malformed_backend_nodes_exits_2(self, capsys):
        code = main(["study", "--backend", "cluster:lots"] + SCALE)
        captured = capsys.readouterr()
        assert code == 2
        assert "not an integer" in captured.err


class TestMeasure:
    def test_measure_writes_partition(self, capsys, tmp_path):
        from repro.measurement.storage import ColumnStore

        code = main(
            ["measure", "org", "--day", "0", "--output", str(tmp_path)]
            + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measured" in out
        loaded = ColumnStore.load(str(tmp_path))
        assert loaded.row_count("org", 0) > 0

    def test_measure_bad_day(self, capsys, tmp_path):
        code = main(
            ["measure", "nl", "--day", "0", "--output", str(tmp_path)]
            + SCALE
        )
        assert code == 1


class TestStream:
    def test_tail_prints_live_counters(self, capsys):
        code = main(
            ["stream", "--days", "5", "--sources", "com,org",
             "--interval", "2"] + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tailed through day 4" in out
        assert "[gtld] day 4" in out
        assert "any provider" in out

    def test_checkpoint_and_resume_cycle(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "stream.ckpt")
        code = main(
            ["stream", "--days", "3", "--sources", "com",
             "--checkpoint", checkpoint] + SCALE
        )
        assert code == 0
        assert "checkpoint:" in capsys.readouterr().out
        code = main(
            ["stream", "--days", "6", "--sources", "com",
             "--checkpoint", checkpoint, "--resume"] + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert ";; resumed from com@3" in out
        assert "tailed through day 5" in out

    def test_unknown_source_fails(self, capsys):
        code = main(["stream", "--sources", "bogus", "--days", "2"] + SCALE)
        assert code == 1

    def test_json_tail_emits_canonical_snapshots(self, capsys):
        import json

        from repro.serve.protocol import canonical_json

        code = main(
            ["stream", "--days", "5", "--sources", "com,org", "--json"]
            + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "tailed through day 4" in out
        lines = [
            line for line in out.splitlines() if line.startswith("{")
        ]
        assert lines, "expected at least one JSON snapshot line"
        snapshot = json.loads(lines[-1])
        assert snapshot["scope"] == "gtld"
        assert snapshot["day"] == 4
        # The line is the shared canonical encoding, byte for byte.
        assert lines[-1] == canonical_json(snapshot)
        # The human table is replaced, not duplicated.
        assert "any provider" not in out


class TestServe:
    def test_self_test_round_trip_and_limiter(self, capsys):
        code = main(
            ["serve", "--days", "5", "--self-test", "--limit", "4"]
            + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "index version" in out
        assert "responses ok" in out
        assert "burst client 4/12 admitted" in out
        assert "compliant client admitted" in out
        assert "serve self-test ok" in out

    def test_self_test_without_guard(self, capsys):
        code = main(
            ["serve", "--days", "3", "--self-test", "--strategy",
             "none"] + SCALE
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serve self-test ok" in out


class TestStore:
    def seeded_v1(self, tmp_path):
        from repro.measurement.snapshot import DomainObservation
        from repro.measurement.storage import ColumnStore

        store = ColumnStore()
        for day in range(3):
            store.append(
                "com",
                day,
                [
                    DomainObservation(
                        day=day,
                        domain=f"a{i}.com",
                        tld="com",
                        ns_names=("ns1.hostco.net.",),
                        apex_addrs=("192.0.2.1",),
                        asns=frozenset({64500}),
                    )
                    for i in range(4)
                ],
            )
        v1 = tmp_path / "v1"
        store.save_legacy(str(v1))
        return store, v1

    def test_migrate_then_stats(self, capsys, tmp_path):
        from repro.store import SegmentStore

        store, v1 = self.seeded_v1(tmp_path)
        v2 = tmp_path / "v2"
        code = main(["store", "migrate", str(v1), str(v2)])
        out = capsys.readouterr().out
        assert code == 0
        assert "migrated 3 partitions (12 rows)" in out
        with SegmentStore(str(v2)) as migrated:
            assert migrated.partitions() == store.partitions()

        code = main(["store", "stats", str(v2)])
        out = capsys.readouterr().out
        assert code == 0
        assert "SOURCE" in out and "com" in out
        assert "generations" in out

    def test_compact_command(self, capsys, tmp_path):
        import os

        _, v1 = self.seeded_v1(tmp_path)
        v2 = tmp_path / "v2"
        assert main(["store", "migrate", str(v1), str(v2)]) == 0
        capsys.readouterr()
        code = main(["store", "compact", str(v2), "--fanout", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert ".rseg" in out
        assert len(os.listdir(v2 / "segments")) == 1

    def test_compact_nothing_to_do(self, capsys, tmp_path):
        _, v1 = self.seeded_v1(tmp_path)
        v2 = tmp_path / "v2"
        assert main(["store", "migrate", str(v1), str(v2)]) == 0
        capsys.readouterr()
        code = main(["store", "compact", str(v2), "--fanout", "8"])
        assert code == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_stats_missing_store_fails(self, capsys, tmp_path):
        code = main(["store", "stats", str(tmp_path / "nope")])
        assert code == 1
        assert capsys.readouterr().err != ""

    def test_stats_on_v1_store_points_at_migrate(self, capsys, tmp_path):
        _, v1 = self.seeded_v1(tmp_path)
        code = main(["store", "stats", str(v1)])
        assert code == 1
        assert "repro store migrate" in capsys.readouterr().err


class TestSketch:
    TINY = ["--scale", "300000", "--seed", "7", "--days", "200"]

    def test_stats_emits_canonical_scope_lines(self, capsys):
        import json

        code = main(["sketch", "stats"] + self.TINY)
        assert code == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line
        ]
        assert "plane_digest" in lines[-1]
        scopes = {line["scope"] for line in lines[:-1]}
        assert "gtld" in scopes
        for line in lines[:-1]:
            assert line["rows_observed"] > 0
            assert line["adoption_error_bound"] >= 0
            assert line["topk_exact"] is True

    def test_stats_digest_is_reproducible(self, capsys):
        import json

        main(["sketch", "stats"] + self.TINY)
        first = capsys.readouterr().out
        main(["sketch", "stats"] + self.TINY)
        second = capsys.readouterr().out
        assert first == second
        digest = json.loads(first.splitlines()[-1])["plane_digest"]
        assert len(digest) == 64

    def test_topk_streams(self, capsys):
        import json

        for stream in ("providers", "churn", "third-party"):
            code = main(
                ["sketch", "topk", "--stream", stream, "--k", "3",
                 "--scope", "gtld"] + self.TINY
            )
            assert code == 0
            line = json.loads(capsys.readouterr().out.splitlines()[0])
            assert line["stream"] == stream
            assert len(line["ranking"]) <= 3
            assert line["ranking"], f"{stream} ranking is empty"

    def test_unknown_scope_fails(self, capsys):
        code = main(
            ["sketch", "topk", "--scope", "nope"] + self.TINY
        )
        assert code == 1
        assert "unknown scope" in capsys.readouterr().err

    def test_unknown_source_fails(self, capsys):
        code = main(
            ["sketch", "stats", "--sources", "com,bogus"] + self.TINY
        )
        assert code == 1
        assert "unknown sources" in capsys.readouterr().err
