"""Tests for the attack-episode model behind on-demand protection."""

import random

import pytest

from repro.world.attacks import AttackEpisode, AttackModel


@pytest.fixture
def model():
    return AttackModel(random.Random(7), p80_days=10, mean_gap_days=20.0)


class TestEpisode:
    def test_end(self):
        episode = AttackEpisode(start=5, duration=3, peak_gbps=50.0)
        assert episode.end == 8

    def test_volumetric_classification(self):
        assert AttackEpisode(0, 1, 300.0).is_volumetric()
        assert not AttackEpisode(0, 1, 0.5).is_volumetric()


class TestModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            AttackModel(random.Random(0), p80_days=0)
        with pytest.raises(ValueError):
            AttackModel(random.Random(0), p80_days=5, mean_gap_days=0)

    def test_duration_p80_calibration(self):
        model = AttackModel(random.Random(3), p80_days=10)
        durations = sorted(model.episode_duration() for _ in range(4000))
        p80 = durations[int(0.8 * len(durations)) - 1]
        assert 8 <= p80 <= 13

    def test_durations_capped(self):
        model = AttackModel(random.Random(3), p80_days=80, max_duration=100)
        assert max(model.episode_duration() for _ in range(2000)) <= 100

    def test_volumes_bounded_and_heavy_tailed(self, model):
        volumes = [model.episode_volume() for _ in range(2000)]
        assert max(volumes) <= 600.0
        assert min(volumes) > 0
        # Heavy tail: some attacks are >10x the median.
        median = sorted(volumes)[len(volumes) // 2]
        assert max(volumes) > 10 * median

    def test_episodes_ordered_and_disjoint(self, model):
        episodes = list(model.episodes(0, 550))
        for left, right in zip(episodes, episodes[1:]):
            assert left.end < right.start

    def test_episodes_within_horizon(self, model):
        assert all(e.end < 550 for e in model.episodes(0, 550))

    def test_deterministic_for_seed(self):
        a = AttackModel(random.Random(5), p80_days=10)
        b = AttackModel(random.Random(5), p80_days=10)
        assert list(a.episodes(0, 550)) == list(b.episodes(0, 550))


class TestMitigationWindows:
    def test_windows_wrap_episodes(self, model):
        windows = model.mitigation_windows(0, 550)
        for window in windows:
            assert window.start == window.episode.start
            assert window.end >= window.episode.end - 1
            assert window.days >= 1

    def test_revert_margin_extends_windows(self):
        rng = random.Random(11)
        model = AttackModel(rng, p80_days=5)
        windows = model.mitigation_windows(0, 550, revert_margin=3)
        assert all(
            w.end - w.episode.end in (3,) or w.end == 549 for w in windows
        )

    def test_episode_count_bounds(self, model):
        windows = model.mitigation_windows(0, 550, episode_count=(3, 7))
        assert len(windows) <= 7
