"""Tests for TLD churn parameters and population realisation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.world.namespace import ChurnParameters, TldRegistry


def params(initial=10_000, target=10_900, horizon=550, rate=2e-4):
    return ChurnParameters(
        initial=initial, target_end=target, horizon=horizon,
        deletion_rate=rate,
    )


class TestChurnParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            params(initial=-1)
        with pytest.raises(ValueError):
            params(horizon=0)
        with pytest.raises(ValueError):
            params(rate=1.0)

    def test_survival(self):
        p = params(rate=0.0)
        assert p.survival == 1.0
        assert params(rate=2e-4).survival < 1.0

    def test_birth_rate_solver_hits_target(self):
        p = params()
        assert p.expected_end() == pytest.approx(p.target_end, rel=1e-6)

    def test_zero_deletion_rate(self):
        p = params(rate=0.0, initial=100, target=150, horizon=50)
        assert p.daily_births() == pytest.approx(1.0)
        assert p.expected_end() == pytest.approx(150)

    def test_shrinking_target_needs_no_births(self):
        p = params(initial=10_000, target=500)
        assert p.daily_births() == 0.0

    @given(
        initial=st.integers(min_value=100, max_value=100_000),
        growth=st.floats(min_value=1.0, max_value=1.5),
        rate=st.floats(min_value=0.0, max_value=0.002),
    )
    def test_solver_consistent_property(self, initial, growth, rate):
        p = ChurnParameters(
            initial=initial,
            target_end=int(initial * growth),
            horizon=550,
            deletion_rate=rate,
        )
        assert p.expected_end() == pytest.approx(
            max(p.target_end, p.expected_survivors()), rel=1e-6
        )


class TestTldRegistry:
    def make(self, **overrides):
        counter = iter(range(10**6))
        return TldRegistry(
            "com",
            params(**overrides),
            random.Random(5),
            name_factory=lambda tld: f"d{next(counter)}.{tld}",
        )

    def test_population_size_and_shape(self):
        registry = self.make(initial=2000, target=2180)
        rows = list(registry.population())
        day0 = [row for row in rows if row[1] == 0]
        assert len(day0) == 2000
        assert len(rows) > 2000  # births happened

    def test_realised_growth_close_to_target(self):
        registry = self.make(initial=5000, target=5450)
        alive_end = 0
        for name, created, deleted in registry.population():
            if deleted is None or deleted >= 550:
                alive_end += 1
        assert alive_end == pytest.approx(5450, rel=0.05)

    def test_deletions_within_horizon_only(self):
        registry = self.make(initial=3000, target=3200)
        for name, created, deleted in registry.population():
            if deleted is not None:
                assert created < deleted < 550

    def test_names_unique(self):
        registry = self.make(initial=1000, target=1050)
        names = [row[0] for row in registry.population()]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        assert list(self.make().population())[:50] == list(
            self.make().population()
        )[:50]
