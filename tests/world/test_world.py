"""Tests for the World container: zones, routing view, materialisation."""

import pytest

from repro.dnscore.name import DomainName
from repro.dnscore.resolver import IterativeResolver
from repro.dnscore.rrtypes import RRType
from repro.world.domain import DomainTimeline
from repro.world.entities import HostingProvider, provision_organization
from repro.world.world import World


@pytest.fixture
def world():
    world = World(horizon=100)
    hoster = HostingProvider(name="HostCo", ns_sld="hostco-dns.com")
    provision_organization(
        hoster, world.as_registry, world.allocator, prefixlen=20
    )
    world.announce(hoster)
    world.register_ns_owner("hostco-dns.com", hoster)
    world.hosters.append(hoster)
    world.tld_windows = {"com": (0, 100)}
    for index in range(5):
        name = f"d{index}.com"
        world.add_domain(
            DomainTimeline(
                name, "com", created=index * 10,
                base_config=hoster.base_config(name),
                deleted=90 if index == 0 else None,
            )
        )
    return world


class TestZoneAccounting:
    def test_zone_names_respects_lifetime(self, world):
        assert set(world.zone_names("com", 0)) == {"d0.com"}
        assert len(list(world.zone_names("com", 45))) == 5
        assert "d0.com" not in set(world.zone_names("com", 95))

    def test_zone_size_series(self, world):
        series = world.zone_size_series("com")
        assert series[0] == 1
        assert series[45] == 5
        assert series[95] == 4

    def test_unique_slds(self, world):
        assert world.unique_slds("com") == 5

    def test_duplicate_domain_rejected(self, world):
        with pytest.raises(ValueError):
            world.add_domain(
                DomainTimeline(
                    "d0.com", "com", created=0,
                    base_config=world.domains["d0.com"].config_at(0),
                )
            )


class TestRoutingView:
    def test_base_announcements_visible(self, world):
        hoster = world.hosters[0]
        address = hoster.host_address("d1.com")
        assert world.pfx2as_at(0).lookup(address) == frozenset(
            {hoster.primary_asn()}
        )

    def test_routing_event_takes_effect_from_its_day(self, world):
        hoster = world.hosters[0]
        prefix = str(hoster.prefixes[0])
        world.add_routing_event(50, prefix, frozenset({26415}))
        address = hoster.host_address("d1.com")
        assert world.pfx2as_at(49).lookup(address) == frozenset(
            {hoster.primary_asn()}
        )
        assert world.pfx2as_at(50).lookup(address) == frozenset({26415})

    def test_routing_change_days(self, world):
        world.add_routing_event(30, "10.200.0.0/24", frozenset({1}))
        assert 30 in world.routing_change_days()

    def test_routing_events_accessor_is_day_sorted(self, world):
        world.add_routing_event(50, "10.202.0.0/24", frozenset({3}))
        world.add_routing_event(20, "10.203.0.0/24", frozenset({4}))
        events = world.routing_events()
        days = [day for day, _, _ in events]
        assert days == sorted(days)
        assert (20, "10.203.0.0/24", frozenset({4})) in events
        assert (50, "10.202.0.0/24", frozenset({3})) in events

    def test_snapshot_caching_invalidated_by_new_events(self, world):
        first = world.pfx2as_at(10)
        assert world.pfx2as_at(10) is first
        world.add_routing_event(5, "10.201.0.0/24", frozenset({2}))
        assert world.pfx2as_at(10) is not first

    def test_ns_host_address_via_owner(self, world):
        address = world.ns_host_address("ns1.hostco-dns.com")
        assert address is not None
        assert world.ns_host_address("ns1.unknown-sld.com") is None


class TestMaterialization:
    def test_resolves_like_the_fast_state(self, world):
        network, roots = world.materialize_dns(45, ["d1.com", "d2.com"])
        resolver = IterativeResolver(network, roots)
        config = world.domains["d1.com"].config_at(45)
        result = resolver.resolve(DomainName.from_text("d1.com"), RRType.A)
        assert tuple(sorted(result.addresses())) == tuple(
            sorted(config.apex_ips)
        )
        www = resolver.resolve(DomainName.from_text("www.d1.com"), RRType.A)
        assert tuple(sorted(www.addresses())) == tuple(sorted(config.www_ips))

    def test_ns_resolution(self, world):
        network, roots = world.materialize_dns(45, ["d1.com"])
        resolver = IterativeResolver(network, roots)
        result = resolver.resolve(DomainName.from_text("d1.com"), RRType.NS)
        got = sorted(
            r.rdata.to_text().rstrip(".") for r in result.rrs(RRType.NS)
        )
        assert got == ["ns1.hostco-dns.com", "ns2.hostco-dns.com"]

    def test_dead_domain_not_materialized(self, world):
        network, roots = world.materialize_dns(95, ["d0.com"])
        resolver = IterativeResolver(network, roots)
        result = resolver.resolve(DomainName.from_text("d0.com"), RRType.A)
        assert result.addresses() == []

    def test_dark_domain_fails_resolution(self, world):
        from repro.world.domain import DARK_CONFIG

        world.domains["d1.com"].set_config(50, DARK_CONFIG)
        network, roots = world.materialize_dns(55, ["d1.com"])
        resolver = IterativeResolver(network, roots)
        result = resolver.resolve(DomainName.from_text("d1.com"), RRType.A)
        assert result.addresses() == []
