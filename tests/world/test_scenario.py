"""Tests for the calibrated paper scenario (small scale)."""

import pytest

from repro.world.scenario import (
    GTLD_SHARES,
    METHOD_MIXES,
    ON_DEMAND_TARGETS,
    ORGANIC_TARGETS,
    ScenarioConfig,
    build_paper_world,
)
from repro.world.timeline import CCTLD_START_DAY, GTLD_DAYS


class TestConfig:
    def test_scaled_rounds_and_floors(self):
        config = ScenarioConfig(scale=1000)
        assert config.scaled(1_000_000) == 1000
        assert config.scaled(100) == 1  # the minimum

    def test_method_mix_weights_sum_to_one(self):
        for provider, mixes in METHOD_MIXES.items():
            assert sum(w for _, w, _ in mixes) == pytest.approx(1.0), provider

    def test_every_target_provider_has_a_mix(self):
        assert set(ORGANIC_TARGETS) == set(METHOD_MIXES)
        assert set(ON_DEMAND_TARGETS) == set(METHOD_MIXES)

    def test_gtld_shares(self):
        assert sum(GTLD_SHARES.values()) == pytest.approx(1.0, abs=0.01)


class TestBuiltWorld:
    def test_deterministic_build(self):
        a = build_paper_world(ScenarioConfig(scale=60000, seed=9))
        b = build_paper_world(ScenarioConfig(scale=60000, seed=9))
        assert set(a.domains) == set(b.domains)
        name = sorted(a.domains)[0]
        assert a.domains[name].change_days == b.domains[name].change_days

    def test_world_shape(self, tiny_world):
        assert tiny_world.horizon == GTLD_DAYS
        assert len(tiny_world.providers) == 9
        assert set(tiny_world.tld_windows) == {"com", "net", "org", "nl"}
        assert tiny_world.tld_windows["nl"][0] == CCTLD_START_DAY

    def test_namespace_shares_roughly_hold(self, tiny_world):
        sizes = {
            tld: tiny_world.zone_size_series(tld)[0]
            for tld in ("com", "net", "org")
        }
        total = sum(sizes.values())
        assert sizes["com"] / total == pytest.approx(0.8247, abs=0.02)

    def test_zone_growth_close_to_paper(self, tiny_world):
        series = [
            sum(tiny_world.zone_size_series(tld)[day]
                for tld in ("com", "net", "org"))
            for day in (0, GTLD_DAYS - 1)
        ]
        assert series[1] / series[0] == pytest.approx(1.088, abs=0.03)

    def test_third_parties_present(self, tiny_world):
        assert set(tiny_world.thirdparties) == {
            "Wix", "ENOM", "ZOHO", "Namecheap", "Sedo", "Fabulous",
            "SiteMatrix",
        }

    def test_third_party_domains_exist_from_day_zero(self, tiny_world):
        for party in tiny_world.thirdparties.values():
            for name in party.domains:
                assert tiny_world.domains[name].created == 0

    def test_alexa_list_populated(self, tiny_world):
        assert tiny_world.alexa_names
        assert len(set(tiny_world.alexa_names)) == len(tiny_world.alexa_names)

    def test_nl_domains_exist(self, tiny_world):
        assert tiny_world.unique_slds("nl") > 0

    def test_enom_prefixes_flip_to_verisign(self, tiny_world):
        party = tiny_world.thirdparties["ENOM"]
        prefix = party.base_routing[0][0]
        probe = prefix.split("/")[0]
        during = tiny_world.pfx2as_at(90).lookup(probe)
        before = tiny_world.pfx2as_at(70).lookup(probe)
        assert before == frozenset({21740})
        assert during == frozenset({26415})

    def test_sedo_dark_day(self, tiny_world):
        party = tiny_world.thirdparties["Sedo"]
        timeline = tiny_world.domains[party.domains[0]]
        assert timeline.config_at(266).ns_names == ()
        assert timeline.config_at(267).ns_names != ()

    def test_providers_announce_their_space(self, tiny_world):
        cloudflare = tiny_world.providers["CloudFlare"]
        shared = cloudflare.shared_addresses("probe.com")[0]
        assert tiny_world.pfx2as_at(0).lookup(shared) == frozenset({13335})


class TestAlexaRanking:
    def test_unique_exceeds_daily(self, tiny_world):
        daily = len(tiny_world.alexa_list(400))
        unique = len(tiny_world.alexa_names)
        assert unique > daily

    def test_membership_windows_inside_measurement_window(self, tiny_world):
        from repro.world.timeline import CCTLD_START_DAY

        for name in tiny_world.alexa_names:
            for start, end in tiny_world.alexa_membership(name):
                assert CCTLD_START_DAY <= start < end <= tiny_world.horizon

    def test_daily_list_roughly_constant(self, tiny_world):
        sizes = [len(tiny_world.alexa_list(day)) for day in (370, 450, 530)]
        assert max(sizes) - min(sizes) <= max(3, max(sizes) // 4)

    def test_member_days_consistent_with_daily_lists(self, tiny_world):
        from repro.world.timeline import CCTLD_START_DAY

        start = CCTLD_START_DAY
        days = tiny_world.horizon - start
        # alexa_member_days counts membership windows; daily lists also
        # require the domain to be alive, so they can only be smaller.
        by_windows = tiny_world.alexa_member_days(start, days)
        sampled = sum(
            len(tiny_world.alexa_list(day)) for day in range(start, start + 5)
        )
        assert sampled <= by_windows
