"""Tests for the ground-truth event log."""


from repro.world.events import EventLog, MassEvent


def event(day=0, party="Wix", provider="Incapsula", kind="divert-on",
          domains=100, hint="ns:wixdns.net"):
    return MassEvent(
        day=day, party=party, provider=provider, kind=kind,
        domains=domains, group_hint=hint,
    )


class TestEventLog:
    def test_record_and_iterate_sorted(self):
        log = EventLog()
        log.record(event(day=10))
        log.record(event(day=3, party="ENOM", provider="Verisign"))
        assert [e.day for e in log] == [3, 10]
        assert len(log) == 2

    def test_filters(self):
        log = EventLog()
        log.record(event(day=1, provider="Incapsula", domains=50))
        log.record(event(day=2, party="ENOM", provider="Verisign",
                         domains=500))
        assert len(log.events_for(provider="Verisign")) == 1
        assert len(log.events_for(party="Wix")) == 1
        assert len(log.events_for(min_domains=100)) == 1


class TestWorldLog:
    def test_scenario_populates_log(self, tiny_world):
        log = tiny_world.event_log
        assert len(log) > 10
        kinds = {event.kind for event in log}
        assert {"divert-on", "divert-off", "outage", "migration"} <= kinds

    def test_known_events_present(self, tiny_world):
        log = tiny_world.event_log
        wix = log.events_for(party="Wix", provider="Incapsula")
        assert any(event.day == 4 for event in wix)
        sedo = log.events_for(party="Sedo")
        assert [event.day for event in sedo if event.kind == "outage"] == [266]
        fabulous = log.events_for(party="Fabulous")
        assert all(event.kind == "migration" for event in fabulous)

    def test_hints_recorded(self, tiny_world):
        hints = {
            event.group_hint
            for event in tiny_world.event_log
            if event.group_hint
        }
        assert "ns:wixdns.net" in hints
        assert "ns:enomdns.com" in hints


class TestAttributionValidation:
    """The §4.4.1 pipeline vs the world's ground truth."""

    def test_attribution_recall(self, study_world, study_results):
        """Every big scripted diversion event is found and attributed to
        the right shared infrastructure."""
        attributions = {
            (a.event.provider, a.event.day): a
            for a in study_results.attributions
        }
        checked = 0
        for event in study_world.event_log:
            if event.kind not in ("divert-on", "divert-off"):
                continue
            if not event.provider or event.domains < 15:
                continue
            if event.day == 0:
                # A day-0 event has no previous day to jump from; it sets
                # the baseline rather than producing an anomaly edge.
                continue
            # jittered windows land within a couple of days.
            hits = [
                attributions.get((event.provider, event.day + offset))
                for offset in (0, 1, 2)
            ]
            hit = next((h for h in hits if h is not None), None)
            assert hit is not None, f"missed {event}"
            assert hit.top_group == event.group_hint, event
            checked += 1
        assert checked >= 10

    def test_attribution_precision(self, study_world, study_results):
        """Every attributed anomaly corresponds to a scripted mass event
        (no phantom anomalies from organic noise)."""
        event_keys = set()
        outage_days = set()
        for event in study_world.event_log:
            for offset in (0, 1, 2):
                if event.provider:
                    event_keys.add((event.provider, event.day + offset))
                if event.kind == "outage":
                    # An outage dents whichever provider the party's
                    # domains referenced (Sedo → Akamai).
                    outage_days.add(event.day + offset)
        big = [
            a for a in study_results.attributions
            if a.domains_involved >= 15
        ]
        for attribution in big:
            key = (attribution.event.provider, attribution.event.day)
            assert key in event_keys or attribution.event.day in outage_days, (
                attribution.event
            )
