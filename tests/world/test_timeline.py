"""Tests for the study calendar."""

import datetime

from repro.world.timeline import (
    CCTLD_START_DAY,
    GTLD_DAYS,
    STUDY_START,
    date_of,
    day_of,
    month_label,
    two_week_bucket,
)


class TestCalendar:
    def test_day_zero_is_march_2015(self):
        assert date_of(0) == datetime.date(2015, 3, 1)

    def test_cctld_window_starts_march_2016(self):
        assert date_of(CCTLD_START_DAY) == datetime.date(2016, 3, 1)

    def test_sedo_incident_day(self):
        """Day 266 must be 22 Nov 2015, the paper's Akamai trough."""
        assert date_of(266) == datetime.date(2015, 11, 22)

    def test_horizon_reaches_late_summer_2016(self):
        assert date_of(GTLD_DAYS - 1) >= datetime.date(2016, 8, 30)

    def test_day_of_roundtrip(self):
        for day in (0, 100, 366, 549):
            assert day_of(date_of(day)) == day

    def test_day_of_before_start_is_negative(self):
        assert day_of(STUDY_START - datetime.timedelta(days=3)) == -3

    def test_month_labels(self):
        assert month_label(0) == "Mar '15"
        assert month_label(366) == "Mar '16"

    def test_two_week_buckets(self):
        assert two_week_bucket(0) == 0
        assert two_week_bucket(13) == 0
        assert two_week_bucket(14) == 1
        assert two_week_bucket(549) == 39
