"""Tests for organisations and hosting providers."""

import ipaddress

import pytest

from repro.routing.asn import ASRegistry
from repro.world.entities import (
    HostingProvider,
    Organization,
    provision_organization,
)
from repro.world.ipam import PrefixAllocator


@pytest.fixture
def provisioned():
    registry = ASRegistry()
    allocator = PrefixAllocator()
    hoster = HostingProvider(name="HostCo", ns_sld="hostco-dns.com")
    provision_organization(hoster, registry, allocator, prefixlen=20)
    return registry, hoster


class TestOrganization:
    def test_primary_asn_requires_provisioning(self):
        with pytest.raises(ValueError):
            Organization(name="X").primary_asn()

    def test_host_address_requires_prefix(self):
        with pytest.raises(ValueError):
            Organization(name="X").host_address("a.com")

    def test_provisioning_registers_as(self, provisioned):
        registry, hoster = provisioned
        assert registry.get(hoster.primary_asn()).name == "HostCo"

    def test_host_address_in_own_space(self, provisioned):
        _, hoster = provisioned
        address = ipaddress.ip_address(hoster.host_address("a.com"))
        assert any(address in prefix for prefix in hoster.prefixes)

    def test_host_address_stable(self, provisioned):
        _, hoster = provisioned
        assert hoster.host_address("a.com") == hoster.host_address("a.com")


class TestHostingProvider:
    def test_ns_names_under_sld(self, provisioned):
        _, hoster = provisioned
        assert hoster.ns_names() == (
            "ns1.hostco-dns.com",
            "ns2.hostco-dns.com",
        )

    def test_base_config_shape(self, provisioned):
        _, hoster = provisioned
        cfg = hoster.base_config("a.com")
        assert cfg.ns_names == hoster.ns_names()
        assert cfg.apex_ips == cfg.www_ips
        assert len(cfg.apex_ips) == 1
        assert cfg.www_cnames == ()

    def test_dual_stack_config(self):
        registry = ASRegistry()
        allocator = PrefixAllocator()
        hoster = HostingProvider(
            name="Host6", ns_sld="host6-dns.com", dual_stack=True
        )
        provision_organization(
            hoster, registry, allocator, prefixlen=20, v6=True
        )
        cfg = hoster.base_config("a.com")
        assert cfg.apex_ips6
        assert cfg.apex_ips6 == cfg.www_ips6

    def test_ns_address_resolves_in_own_space(self, provisioned):
        _, hoster = provisioned
        address = ipaddress.ip_address(
            hoster.ns_address("ns1.hostco-dns.com")
        )
        assert any(address in prefix for prefix in hoster.prefixes)
