"""Tests for DnsConfig and DomainTimeline."""

import pytest
from hypothesis import given, strategies as st

from repro.world.domain import (
    DARK_CONFIG,
    DnsConfig,
    DomainTimeline,
    intern_config,
)


def config(tag: str) -> DnsConfig:
    return DnsConfig(
        ns_names=(f"ns1.{tag}.com",),
        apex_ips=(f"10.0.0.{abs(hash(tag)) % 200 + 1}",),
    )


CFG_A = DnsConfig(ns_names=("ns1.a.com",), apex_ips=("10.0.0.1",))
CFG_B = DnsConfig(ns_names=("ns1.b.com",), apex_ips=("10.0.0.2",))
CFG_C = DnsConfig(ns_names=("ns1.c.com",), apex_ips=("10.0.0.3",))


class TestDnsConfig:
    def test_dark_config_has_nothing(self):
        assert DARK_CONFIG.ns_names == ()
        assert DARK_CONFIG.all_addresses() == ()

    def test_all_addresses_order(self):
        cfg = DnsConfig(
            ns_names=("ns1.x.com",),
            apex_ips=("10.0.0.1",),
            www_ips=("10.0.0.2",),
            apex_ips6=("2001:db8::1",),
        )
        assert cfg.all_addresses() == ("10.0.0.1", "10.0.0.2", "2001:db8::1")

    def test_with_www_defaulted(self):
        cfg = DnsConfig(ns_names=("ns1.x.com",), apex_ips=("10.0.0.1",))
        assert cfg.with_www_defaulted().www_ips == ("10.0.0.1",)

    def test_with_www_defaulted_noop_when_set(self):
        cfg = DnsConfig(
            ns_names=("n",), apex_ips=("10.0.0.1",), www_ips=("10.0.0.2",)
        )
        assert cfg.with_www_defaulted() is cfg

    def test_interning_shares_instances(self):
        a = DnsConfig(ns_names=("ns1.a.com",), apex_ips=("10.0.0.1",))
        b = DnsConfig(ns_names=("ns1.a.com",), apex_ips=("10.0.0.1",))
        assert intern_config(a) is intern_config(b)


class TestLifetime:
    def test_alive_window(self):
        timeline = DomainTimeline("a.com", "com", created=10, base_config=CFG_A,
                                  deleted=20)
        assert not timeline.alive(9)
        assert timeline.alive(10)
        assert timeline.alive(19)
        assert not timeline.alive(20)

    def test_never_deleted(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        assert timeline.alive(10_000)

    def test_lifespan_clipping(self):
        timeline = DomainTimeline("a.com", "com", created=5, base_config=CFG_A,
                                  deleted=900)
        assert timeline.lifespan(550) == (5, 550)


class TestConfigHistory:
    def test_base_config_from_creation(self):
        timeline = DomainTimeline("a.com", "com", created=3, base_config=CFG_A)
        assert timeline.config_at(3) == CFG_A
        assert timeline.config_at(100) == CFG_A

    def test_config_before_creation_rejected(self):
        timeline = DomainTimeline("a.com", "com", created=3, base_config=CFG_A)
        with pytest.raises(ValueError):
            timeline.config_at(2)

    def test_set_config_change(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_B)
        assert timeline.config_at(9) == CFG_A
        assert timeline.config_at(10) == CFG_B

    def test_set_config_before_creation_rejected(self):
        timeline = DomainTimeline("a.com", "com", created=5, base_config=CFG_A)
        with pytest.raises(ValueError):
            timeline.set_config(4, CFG_B)

    def test_same_day_override(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_B)
        timeline.set_config(10, CFG_C)
        assert timeline.config_at(10) == CFG_C
        assert len(timeline.change_days) == 2

    def test_identical_config_merges_segments(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_B)
        timeline.set_config(10, CFG_A)  # revert on the same day
        assert timeline.change_days == [0]

    def test_redundant_set_is_noop(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_A)
        assert timeline.change_days == [0]

    def test_monotonic_matches_bisect(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_B)
        timeline.set_config(20, CFG_C)
        for day in range(0, 30):
            assert timeline.config_at_monotonic(day) == timeline.config_at(day)

    def test_monotonic_handles_backwards_jump(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(10, CFG_B)
        assert timeline.config_at_monotonic(20) == CFG_B
        assert timeline.config_at_monotonic(5) == CFG_A


class TestSegments:
    def test_segments_cover_lifetime(self):
        timeline = DomainTimeline("a.com", "com", created=2, base_config=CFG_A,
                                  deleted=30)
        timeline.set_config(10, CFG_B)
        segments = list(timeline.segments(550))
        assert segments == [(2, 10, CFG_A), (10, 30, CFG_B)]

    def test_segments_clip_to_horizon(self):
        timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
        timeline.set_config(500, CFG_B)
        segments = list(timeline.segments(550))
        assert segments[-1] == (500, 550, CFG_B)

    def test_dead_domain_has_no_segments(self):
        timeline = DomainTimeline("a.com", "com", created=600,
                                  base_config=CFG_A)
        assert list(timeline.segments(550)) == []


@given(
    changes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=99),
            st.sampled_from([CFG_A, CFG_B, CFG_C]),
        ),
        max_size=12,
    )
)
def test_segments_agree_with_daily_lookup(changes):
    """Property: expanding segments day-by-day equals config_at per day."""
    timeline = DomainTimeline("a.com", "com", created=0, base_config=CFG_A)
    for day, cfg in changes:
        timeline.set_config(day, cfg)
    horizon = 100
    from_segments = {}
    for start, end, cfg in timeline.segments(horizon):
        for day in range(start, end):
            from_segments[day] = cfg
    for day in range(horizon):
        assert from_segments[day] == timeline.config_at(day)
