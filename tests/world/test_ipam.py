"""Tests for prefix allocation and stable addressing."""

import ipaddress

import pytest

from repro.world.ipam import (
    PrefixAllocator,
    address_in,
    addresses_in,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("example.com") == stable_hash("example.com")

    def test_spread(self):
        values = {stable_hash(f"d{i}") for i in range(1000)}
        assert len(values) > 990


class TestAllocator:
    def test_allocations_disjoint(self):
        allocator = PrefixAllocator()
        a = allocator.allocate(20)
        b = allocator.allocate(20)
        assert not a.overlaps(b)

    def test_alignment(self):
        allocator = PrefixAllocator()
        allocator.allocate(24)
        aligned = allocator.allocate(16)
        assert int(aligned.network_address) % aligned.num_addresses == 0

    def test_within_pool(self):
        allocator = PrefixAllocator(pool_v4="10.0.0.0/8")
        assert allocator.allocate(16).subnet_of(
            ipaddress.IPv4Network("10.0.0.0/8")
        )

    def test_bad_prefixlen(self):
        with pytest.raises(ValueError):
            PrefixAllocator().allocate(4)

    def test_exhaustion(self):
        allocator = PrefixAllocator(pool_v4="10.0.0.0/30")
        with pytest.raises((RuntimeError, ValueError)):
            for _ in range(10):
                allocator.allocate(30)

    def test_v6_allocation(self):
        allocator = PrefixAllocator()
        a = allocator.allocate_v6(48)
        b = allocator.allocate_v6(48)
        assert a.version == 6
        assert not a.overlaps(b)

    def test_allocated_listing(self):
        allocator = PrefixAllocator()
        allocator.allocate(24)
        allocator.allocate_v6()
        assert len(allocator.allocated) == 2


class TestAddressing:
    def test_address_in_network(self):
        network = ipaddress.IPv4Network("192.0.2.0/24")
        address = ipaddress.IPv4Address(address_in(network, "key"))
        assert address in network
        assert address != network.network_address
        assert address != network.broadcast_address

    def test_address_is_stable(self):
        network = ipaddress.IPv4Network("192.0.2.0/24")
        assert address_in(network, "a.com") == address_in(network, "a.com")

    def test_addresses_in_distinct(self):
        network = ipaddress.IPv4Network("192.0.2.0/24")
        got = list(addresses_in(network, "key", 10))
        assert len(set(got)) == 10

    def test_v6_address(self):
        network = ipaddress.IPv6Network("2001:db8::/48")
        assert ipaddress.IPv6Address(address_in(network, "x")) in network
