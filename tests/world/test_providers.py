"""Tests for the nine DPS providers and their protection actions."""

import ipaddress

import pytest

from repro.routing.asn import ASRegistry
from repro.world.domain import DnsConfig, Method
from repro.world.ipam import PrefixAllocator
from repro.world.providers import (
    PAPER_PROVIDER_BLUEPRINTS,
    PROVIDER_NAMES,
    build_paper_providers,
)


@pytest.fixture(scope="module")
def providers():
    return build_paper_providers(ASRegistry(), PrefixAllocator())


BASE = DnsConfig(
    ns_names=("ns1.hostco-dns.com", "ns2.hostco-dns.com"),
    apex_ips=("10.250.0.1",),
    www_ips=("10.250.0.1",),
)


class TestBlueprints:
    def test_all_nine_providers(self):
        assert len(PAPER_PROVIDER_BLUEPRINTS) == 9
        assert set(PROVIDER_NAMES) == {
            "Akamai", "CenturyLink", "CloudFlare", "DOSarrest",
            "F5 Networks", "Incapsula", "Level 3", "Neustar", "Verisign",
        }

    def test_table2_asns_exact(self, providers):
        assert set(providers["CloudFlare"].asns) == {13335}
        assert set(providers["Akamai"].asns) == {20940, 16625, 32787}
        assert set(providers["Level 3"].asns) == {3549, 3356, 11213, 10753}
        assert set(providers["Verisign"].asns) == {26415, 30060}

    def test_table2_slds_exact(self, providers):
        assert providers["Incapsula"].cname_slds == ("incapdns.net",)
        assert providers["Incapsula"].ns_slds == ("incapsecuredns.net",)
        assert providers["DOSarrest"].cname_slds == ()
        assert providers["DOSarrest"].ns_slds == ()
        assert "verisigndns.com" in providers["Verisign"].ns_slds

    def test_as_registry_knows_names(self):
        registry = ASRegistry()
        build_paper_providers(registry, PrefixAllocator())
        assert [a.number for a in registry.find_by_name("CloudFlare")] == [
            13335
        ]
        assert len(registry.find_by_name("Akamai")) == 3

    def test_prefix_origins_cover_all_prefixes(self, providers):
        for provider in providers.values():
            assert set(provider.prefix_origins) == set(provider.prefixes)
            assert set(provider.prefix_origins.values()) <= set(provider.asns)


class TestSharedAddresses:
    def test_shared_addresses_inside_provider_space(self, providers):
        provider = providers["CloudFlare"]
        for address in provider.shared_addresses("a.com", count=3):
            parsed = ipaddress.ip_address(address)
            assert any(parsed in prefix for prefix in provider.prefixes)

    def test_shared_addresses_stable(self, providers):
        provider = providers["Incapsula"]
        assert provider.shared_addresses("a.com") == provider.shared_addresses(
            "a.com"
        )

    def test_customers_share_pool(self, providers):
        provider = providers["Incapsula"]
        pool = {
            provider.shared_addresses(f"d{i}.com")[0] for i in range(100)
        }
        # Far fewer distinct addresses than customers: cloud-shared.
        assert len(pool) < 30


class TestProtectionActions:
    def test_a_record_method(self, providers):
        provider = providers["DOSarrest"]
        protected = provider.protect(BASE, "a.com", Method.A_RECORD)
        assert protected.ns_names == BASE.ns_names
        assert protected.apex_ips != BASE.apex_ips
        assert protected.www_cnames == ()

    def test_cname_method(self, providers):
        provider = providers["Incapsula"]
        protected = provider.protect(BASE, "a.com", Method.CNAME)
        assert protected.ns_names == BASE.ns_names
        assert protected.www_cnames
        assert protected.www_cnames[0].endswith(".incapdns.net")

    def test_ns_delegation_with_diversion(self, providers):
        provider = providers["CloudFlare"]
        protected = provider.protect(BASE, "a.com", Method.NS_DELEGATION)
        assert all(
            ns.endswith(".ns.cloudflare.com") for ns in protected.ns_names
        )
        assert protected.apex_ips != BASE.apex_ips

    def test_ns_delegation_without_diversion(self, providers):
        # Verisign Managed DNS: the zone moves, the traffic does not.
        provider = providers["Verisign"]
        protected = provider.protect(
            BASE, "a.com", Method.NS_DELEGATION, divert=False
        )
        assert protected.ns_names[0].endswith(".verisigndns.com")
        assert protected.apex_ips == BASE.apex_ips

    def test_bgp_method_leaves_dns_untouched(self, providers):
        provider = providers["Verisign"]
        assert provider.protect(BASE, "a.com", Method.BGP) is BASE

    def test_unsupported_method_rejected(self, providers):
        with pytest.raises(ValueError):
            providers["CenturyLink"].protect(BASE, "a.com", Method.CNAME)

    def test_cname_target_requires_cname_sld(self, providers):
        with pytest.raises(ValueError):
            providers["DOSarrest"].cname_target("a.com")

    def test_delegation_requires_ns_sld(self, providers):
        with pytest.raises(ValueError):
            providers["F5 Networks"].delegation_ns_names("a.com")

    def test_cloudflare_ns_pool_is_named(self, providers):
        provider = providers["CloudFlare"]
        names = set()
        for index in range(200):
            names.update(provider.delegation_ns_names(f"d{index}.com"))
        # Many distinct given-name servers, all under ns.cloudflare.com.
        assert len(names) > 20
        assert all(name.endswith(".ns.cloudflare.com") for name in names)
