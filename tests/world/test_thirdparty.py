"""Tests for third-party mass-actor behaviour."""

import pytest

from repro.world.domain import DARK_CONFIG, DnsConfig, DomainTimeline
from repro.world.thirdparty import DiversionWindow, ThirdParty
from repro.world.world import World

BASE = DnsConfig(ns_names=("ns1.party-dns.com",), apex_ips=("10.9.0.1",))
DIVERTED = DnsConfig(ns_names=("ns1.party-dns.com",), apex_ips=("10.99.0.1",))


def base_fn(domain):
    return BASE


def diverted_fn(domain):
    return DIVERTED


def make_world_with(names, created=0):
    world = World(horizon=100)
    for name in names:
        world.add_domain(
            DomainTimeline(name, "com", created=created, base_config=BASE)
        )
    return world


class TestDiversionWindow:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            DiversionWindow(start=0, end=10, fraction=0.0)

    def test_end_after_start(self):
        with pytest.raises(ValueError):
            DiversionWindow(start=10, end=10)


class TestApply:
    def test_window_toggles_configs(self):
        names = [f"d{i}.com" for i in range(10)]
        world = make_world_with(names)
        party = ThirdParty(
            name="P",
            base=base_fn,
            domains=names,
            windows=[DiversionWindow(start=20, end=30, diverted=diverted_fn)],
        )
        party.apply(world, horizon=100)
        timeline = world.domains["d0.com"]
        assert timeline.config_at(19) == BASE
        assert timeline.config_at(25) == DIVERTED
        assert timeline.config_at(30) == BASE

    def test_open_ended_window_is_permanent(self):
        names = ["d0.com"]
        world = make_world_with(names)
        party = ThirdParty(
            name="P", base=base_fn, domains=names,
            windows=[DiversionWindow(start=40, end=None, diverted=diverted_fn)],
        )
        party.apply(world, horizon=100)
        assert world.domains["d0.com"].config_at(99) == DIVERTED

    def test_fraction_selects_stable_subset(self):
        names = [f"d{i}.com" for i in range(100)]
        window = DiversionWindow(
            start=0, end=10, diverted=diverted_fn, fraction=0.3, seed=5
        )
        party = ThirdParty(name="P", base=base_fn, domains=names,
                           windows=[window])
        first = party.select_domains(window)
        second = party.select_domains(window)
        assert first == second
        assert len(first) == 30

    def test_domain_born_after_window_untouched(self):
        world = make_world_with(["late.com"], created=50)
        party = ThirdParty(
            name="P", base=base_fn, domains=["late.com"],
            windows=[DiversionWindow(start=10, end=20, diverted=diverted_fn)],
        )
        party.apply(world, horizon=100)
        assert world.domains["late.com"].config_at(60) == BASE

    def test_bgp_only_window_emits_routing_events(self):
        names = ["d0.com"]
        world = make_world_with(names)
        party = ThirdParty(
            name="P",
            base=base_fn,
            domains=names,
            base_routing=(("10.9.0.0/24", frozenset({111})),),
            windows=[
                DiversionWindow(
                    start=20, end=30, diverted=None,
                    routing=(("10.9.0.0/24", frozenset({26415})),),
                )
            ],
        )
        party.apply(world, horizon=100)
        # DNS untouched throughout.
        assert world.domains["d0.com"].change_days == [0]
        # Routing flips to Verisign and back.
        assert world.pfx2as_at(10).lookup("10.9.0.5") == frozenset({111})
        assert world.pfx2as_at(25).lookup("10.9.0.5") == frozenset({26415})
        assert world.pfx2as_at(35).lookup("10.9.0.5") == frozenset({111})

    def test_dark_days(self):
        names = ["d0.com"]
        world = make_world_with(names)
        party = ThirdParty(name="P", base=base_fn, domains=names)
        party.dark_days.append((50, 51))
        party.apply(world, horizon=100)
        timeline = world.domains["d0.com"]
        assert timeline.config_at(50) == DARK_CONFIG
        assert timeline.config_at(51) == BASE

    def test_jitter_spreads_starts(self):
        names = [f"d{i}.com" for i in range(50)]
        world = make_world_with(names)
        party = ThirdParty(
            name="P", base=base_fn, domains=names,
            windows=[DiversionWindow(start=20, end=40, diverted=diverted_fn,
                                     jitter=5)],
        )
        party.apply(world, horizon=100)
        starts = {
            world.domains[name].change_days[1] for name in names
        }
        assert len(starts) > 1
        assert all(20 <= s <= 25 for s in starts)
