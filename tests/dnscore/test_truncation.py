"""Tests for UDP truncation (TC bit) and the stream fallback."""


import pytest

from repro.dnscore.message import make_query
from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.resolver import IterativeResolver
from repro.dnscore.rrtypes import RRType
from repro.dnscore.server import (
    AuthoritativeServer,
    make_wire_handlers,
)
from repro.dnscore.transport import SimulatedNetwork
from repro.dnscore.wire import decode_message, encode_message
from repro.dnscore.zone import Zone


def name(text):
    return DomainName.from_text(text)


@pytest.fixture
def big_zone():
    """A zone whose TXT answer exceeds the classic 512-byte limit."""
    soa = SOAData(name("ns1.big.example"), name("h.big.example"), 1)
    zone = Zone(name("big.example"), soa)
    zone.add("big.example", RRType.NS, "ns1.big.example.")
    zone.add("ns1.big.example", RRType.A, "192.0.2.53")
    for index in range(12):
        zone.add(
            "bulk.big.example", RRType.TXT,
            f"record-{index}-" + "x" * 80,
        )
    zone.add("small.big.example", RRType.A, "192.0.2.1")
    return zone


class TestEncodeTruncation:
    def test_oversize_response_truncated(self, big_zone):
        server = AuthoritativeServer()
        server.attach_zone(big_zone)
        response = server.handle_query(
            make_query(name("bulk.big.example"), RRType.TXT)
        )
        wire = encode_message(response, max_size=512)
        assert len(wire) <= 512
        decoded = decode_message(wire)
        assert decoded.flags.tc
        assert decoded.answers == []
        assert decoded.question is not None

    def test_small_response_untouched(self, big_zone):
        server = AuthoritativeServer()
        server.attach_zone(big_zone)
        response = server.handle_query(
            make_query(name("small.big.example"), RRType.A)
        )
        decoded = decode_message(encode_message(response, max_size=512))
        assert not decoded.flags.tc
        assert decoded.answers


class TestHandlers:
    def test_datagram_handler_truncates_stream_does_not(self, big_zone):
        server = AuthoritativeServer()
        server.attach_zone(big_zone)
        datagram, stream = make_wire_handlers(server)
        query = encode_message(
            make_query(name("bulk.big.example"), RRType.TXT, msg_id=5)
        )
        assert decode_message(datagram(query)).flags.tc
        full = decode_message(stream(query))
        assert not full.flags.tc
        assert len(full.answers) == 12


class TestResolverFallback:
    def build_network(self, big_zone):
        net = SimulatedNetwork()
        root = Zone(DomainName.root(),
                    SOAData(name("ns.invalid"), name("h.invalid"), 1))
        root.add(".", RRType.NS, "ns.root.invalid.")
        root.add("example", RRType.NS, "ns1.big.example.")
        root.add("ns1.big.example", RRType.A, "192.0.2.53")
        rootsrv = AuthoritativeServer("root")
        rootsrv.attach_zone(root)
        net.register("192.0.2.1", *make_wire_handlers(rootsrv))
        server = AuthoritativeServer("big")
        server.attach_zone(big_zone)
        net.register("192.0.2.53", *make_wire_handlers(server))
        return net

    def test_resolver_retries_over_stream(self, big_zone):
        net = self.build_network(big_zone)
        resolver = IterativeResolver(net, ["192.0.2.1"])
        result = resolver.resolve(name("bulk.big.example"), RRType.TXT)
        assert len(result.rrs(RRType.TXT)) == 12
        assert net.stats.streams_opened >= 1

    def test_no_stream_needed_for_small_answers(self, big_zone):
        net = self.build_network(big_zone)
        resolver = IterativeResolver(net, ["192.0.2.1"])
        result = resolver.resolve(name("small.big.example"), RRType.A)
        assert result.addresses() == ["192.0.2.1"]
        assert net.stats.streams_opened == 0
