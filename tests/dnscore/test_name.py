"""Tests for domain-name handling."""

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.name import (
    DomainName,
    InvalidNameError,
    MAX_LABEL_LENGTH,
)


def name(text: str) -> DomainName:
    return DomainName.from_text(text)


class TestParsing:
    def test_simple_name(self):
        assert name("www.example.com").labels == (b"www", b"example", b"com")

    def test_case_is_folded(self):
        assert name("WWW.Example.COM") == name("www.example.com")

    def test_trailing_dot_is_absolute_form(self):
        assert name("example.com.") == name("example.com")

    def test_root_from_dot(self):
        assert name(".").is_root()

    def test_root_from_empty(self):
        assert name("").is_root()

    def test_root_singleton(self):
        assert DomainName.root() == name(".")

    def test_empty_label_rejected(self):
        with pytest.raises(InvalidNameError):
            name("a..b")

    def test_leading_dot_rejected(self):
        with pytest.raises(InvalidNameError):
            name(".example.com")

    def test_oversized_label_rejected(self):
        with pytest.raises(InvalidNameError):
            name("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_max_label_accepted(self):
        assert len(name("a" * MAX_LABEL_LENGTH + ".com").labels[0]) == 63

    def test_non_ascii_rejected(self):
        with pytest.raises(InvalidNameError):
            name("exämple.com")

    def test_oversized_name_rejected(self):
        label = "a" * 63
        with pytest.raises(InvalidNameError):
            name(".".join([label] * 5))


class TestRendering:
    def test_to_text(self):
        assert name("www.example.com").to_text() == "www.example.com"

    def test_to_text_trailing_dot(self):
        assert name("a.b").to_text(trailing_dot=True) == "a.b."

    def test_root_renders_as_dot(self):
        assert DomainName.root().to_text() == "."

    def test_repr_roundtrip_text(self):
        assert "www.example.com" in repr(name("www.example.com"))

    def test_str(self):
        assert str(name("a.com")) == "a.com"


class TestStructure:
    def test_parent(self):
        assert name("www.example.com").parent() == name("example.com")

    def test_parent_of_root_fails(self):
        with pytest.raises(InvalidNameError):
            DomainName.root().parent()

    def test_prepend(self):
        assert name("example.com").prepend("www") == name("www.example.com")

    def test_concat(self):
        assert name("www").concat(name("example.com")) == name(
            "www.example.com"
        )

    def test_is_subdomain_of_self(self):
        assert name("a.com").is_subdomain_of(name("a.com"))

    def test_is_subdomain_of_parent(self):
        assert name("www.a.com").is_subdomain_of(name("a.com"))

    def test_not_subdomain_of_sibling(self):
        assert not name("www.a.com").is_subdomain_of(name("b.com"))

    def test_everything_is_subdomain_of_root(self):
        assert name("x.y.z").is_subdomain_of(DomainName.root())

    def test_partial_label_is_not_subdomain(self):
        # notexample.com must NOT count as a subdomain of example.com.
        assert not name("notexample.com").is_subdomain_of(name("example.com"))

    def test_relativize(self):
        assert name("www.a.com").relativize(name("a.com")) == name("www")

    def test_relativize_outside_fails(self):
        with pytest.raises(InvalidNameError):
            name("www.a.com").relativize(name("b.com"))

    def test_split(self):
        prefix, suffix = name("www.a.com").split(2)
        assert prefix == name("www")
        assert suffix == name("a.com")

    def test_split_bad_depth(self):
        with pytest.raises(InvalidNameError):
            name("a.com").split(5)

    def test_ordering_is_rightmost_first(self):
        assert name("a.com") < name("b.com")
        assert name("z.a.com") < name("a.b.com")

    def test_hashable_and_equal(self):
        assert hash(name("A.com")) == hash(name("a.com"))

    def test_len_and_iter(self):
        n = name("a.b.c")
        assert len(n) == 3
        assert list(n) == [b"a", b"b", b"c"]


class TestSld:
    def test_simple_sld(self):
        assert name("www.example.com").sld() == name("example.com")

    def test_sld_of_sld_is_itself(self):
        assert name("example.com").sld() == name("example.com")

    def test_multi_label_public_suffix(self):
        assert name("www.shop.example.co.uk").sld() == name("example.co.uk")

    def test_public_suffix_itself_has_no_sld(self):
        assert name("com").sld() is None

    def test_unknown_tld_has_no_sld(self):
        assert name("foo.unknowntld").sld() is None

    def test_public_suffix_lookup(self):
        assert name("a.co.uk").public_suffix() == name("co.uk")

    def test_incapsula_style_sld(self):
        assert name("tok-123.incapdns.net").sld() == name("incapdns.net")

    def test_cloudflare_ns_sld(self):
        assert name("kate.ns.cloudflare.com").sld() == name("cloudflare.com")


@given(
    st.lists(
        st.text(
            alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_text_roundtrip_property(labels):
    text = ".".join(labels)
    parsed = DomainName.from_text(text)
    assert DomainName.from_text(parsed.to_text()) == parsed
    assert parsed.to_text() == text.lower()


@given(
    st.lists(
        st.text(alphabet="abcdefg", min_size=1, max_size=5),
        min_size=2,
        max_size=6,
    )
)
def test_parent_drops_one_label_property(labels):
    n = DomainName.from_text(".".join(labels))
    assert len(n.parent()) == len(n) - 1
    assert n.is_subdomain_of(n.parent())
