"""Tests for RFC 1035 wire encoding/decoding, incl. name compression."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.dnscore.message import make_query, make_response
from repro.dnscore.name import DomainName
from repro.dnscore.records import make_record
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.wire import WireDecodeError, decode_message, encode_message


def roundtrip(message):
    return decode_message(encode_message(message))


def qname(text="www.example.com"):
    return DomainName.from_text(text)


class TestRoundtrip:
    def test_bare_query(self):
        query = make_query(qname(), RRType.A, msg_id=1234)
        decoded = roundtrip(query)
        assert decoded.msg_id == 1234
        assert decoded.question.qname == qname()
        assert decoded.question.qtype == RRType.A

    def test_response_with_answers(self):
        query = make_query(qname("a.com"), RRType.A, msg_id=2)
        response = make_response(query, authoritative=True)
        response.answers.append(make_record("a.com", RRType.A, "192.0.2.1"))
        response.answers.append(make_record("a.com", RRType.A, "192.0.2.2"))
        decoded = roundtrip(response)
        assert [r.rdata.to_text() for r in decoded.answers] == [
            "192.0.2.1",
            "192.0.2.2",
        ]
        assert decoded.flags.aa

    @pytest.mark.parametrize(
        "rrtype,value",
        [
            (RRType.A, "192.0.2.1"),
            (RRType.AAAA, "2001:db8::1"),
            (RRType.NS, "ns1.example.net."),
            (RRType.CNAME, "alias.example.net."),
            (RRType.TXT, "hello world"),
            (RRType.MX, "10 mail.example.net."),
            (RRType.PTR, "host.example.net."),
        ],
    )
    def test_each_rdata_type(self, rrtype, value):
        query = make_query(qname("a.com"), rrtype, msg_id=3)
        response = make_response(query)
        response.answers.append(make_record("a.com", rrtype, value))
        decoded = roundtrip(response)
        assert decoded.answers[0].rrtype == rrtype
        assert decoded.answers[0].rdata == response.answers[0].rdata

    def test_all_sections(self):
        query = make_query(qname("x.a.com"), RRType.A, msg_id=4)
        response = make_response(query)
        response.answers.append(
            make_record("x.a.com", RRType.CNAME, "y.b.com.")
        )
        response.authority.append(make_record("a.com", RRType.NS, "ns.a.com."))
        response.additional.append(
            make_record("ns.a.com", RRType.A, "192.0.2.53")
        )
        decoded = roundtrip(response)
        assert len(decoded.answers) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1

    def test_ttl_preserved(self):
        query = make_query(qname("a.com"), RRType.A)
        response = make_response(query)
        response.answers.append(
            make_record("a.com", RRType.A, "192.0.2.1", ttl=86400)
        )
        assert roundtrip(response).answers[0].ttl == 86400

    def test_nxdomain_flags(self):
        query = make_query(qname("nope.a.com"), RRType.A)
        response = make_response(query, rcode=Rcode.NXDOMAIN)
        assert roundtrip(response).rcode == Rcode.NXDOMAIN

    def test_root_question(self):
        query = make_query(DomainName.root(), RRType.NS)
        assert roundtrip(query).question.qname.is_root()


class TestCompression:
    def test_repeated_names_are_compressed(self):
        query = make_query(qname("a.verylongdomainname.com"), RRType.A)
        response = make_response(query)
        for index in range(4):
            response.answers.append(
                make_record(
                    "a.verylongdomainname.com",
                    RRType.A,
                    f"192.0.2.{index + 1}",
                )
            )
        wire = encode_message(response)
        # Four owner copies would repeat the long name; compression keeps
        # one full copy plus pointers.
        assert wire.count(b"verylongdomainname") == 1

    def test_compression_of_rdata_names(self):
        query = make_query(qname("www.example.com"), RRType.NS)
        response = make_response(query)
        response.answers.append(
            make_record("www.example.com", RRType.NS, "ns1.example.com.")
        )
        response.answers.append(
            make_record("www.example.com", RRType.NS, "ns2.example.com.")
        )
        wire = encode_message(response)
        assert wire.count(b"example") == 1
        decoded = decode_message(wire)
        assert sorted(r.rdata.to_text() for r in decoded.answers) == [
            "ns1.example.com.",
            "ns2.example.com.",
        ]

    def test_compressed_smaller_than_naive(self):
        query = make_query(qname("host.subdomain.example.com"), RRType.A)
        response = make_response(query)
        for index in range(10):
            response.answers.append(
                make_record(
                    "host.subdomain.example.com",
                    RRType.A,
                    f"192.0.2.{index}",
                )
            )
        wire = encode_message(response)
        naive_owner_cost = 10 * (len("host.subdomain.example.com") + 2)
        assert len(wire) < 12 + naive_owner_cost + 10 * 14


class TestMalformedInput:
    def test_short_message(self):
        with pytest.raises(WireDecodeError):
            decode_message(b"\x00" * 5)

    def test_truncated_question(self):
        wire = encode_message(make_query(qname(), RRType.A))
        with pytest.raises(WireDecodeError):
            decode_message(wire[:-3])

    def test_trailing_garbage(self):
        wire = encode_message(make_query(qname(), RRType.A))
        with pytest.raises(WireDecodeError):
            decode_message(wire + b"\x00")

    def test_forward_pointer_rejected(self):
        # Header + a name that is just a pointer to itself.
        header = struct.pack("!HHHHHH", 0, 0, 1, 0, 0, 0)
        self_pointer = struct.pack("!H", 0xC000 | 12)
        body = self_pointer + struct.pack("!HH", 1, 1)
        with pytest.raises(WireDecodeError):
            decode_message(header + body)

    def test_bad_label_length_bits(self):
        header = struct.pack("!HHHHHH", 0, 0, 1, 0, 0, 0)
        body = b"\x80abc\x00" + struct.pack("!HH", 1, 1)
        with pytest.raises(WireDecodeError):
            decode_message(header + body)

    def test_label_past_end(self):
        header = struct.pack("!HHHHHH", 0, 0, 1, 0, 0, 0)
        body = b"\x3fabc"
        with pytest.raises(WireDecodeError):
            decode_message(header + body)

    def test_multiple_questions_rejected(self):
        header = struct.pack("!HHHHHH", 0, 0, 2, 0, 0, 0)
        with pytest.raises(WireDecodeError):
            decode_message(header + b"\x00" + struct.pack("!HH", 1, 1) * 2)


_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20
)


@given(
    labels=st.lists(_label, min_size=1, max_size=5),
    msg_id=st.integers(min_value=0, max_value=0xFFFF),
    rrtype=st.sampled_from([RRType.A, RRType.AAAA, RRType.NS, RRType.TXT]),
)
def test_query_roundtrip_property(labels, msg_id, rrtype):
    query = make_query(
        DomainName.from_text(".".join(labels)), rrtype, msg_id=msg_id
    )
    decoded = decode_message(encode_message(query))
    assert decoded.msg_id == msg_id
    assert decoded.question == query.question
    assert decoded.flags == query.flags


@given(st.binary(min_size=0, max_size=200))
def test_decoder_never_crashes_on_garbage(data):
    """Fuzz: arbitrary bytes either decode or raise WireDecodeError."""
    try:
        decode_message(data)
    except WireDecodeError:
        pass


@given(
    prefix_len=st.integers(min_value=0, max_value=40),
    garbage=st.binary(min_size=1, max_size=30),
)
def test_decoder_handles_corrupted_valid_messages(prefix_len, garbage):
    """Fuzz: a valid message with a corrupted tail never crashes."""
    wire = encode_message(
        make_query(qname("www.example.com"), RRType.A, msg_id=1)
    )
    corrupted = wire[: min(prefix_len, len(wire))] + garbage
    try:
        decode_message(corrupted)
    except WireDecodeError:
        pass


@given(
    owner=st.lists(_label, min_size=1, max_size=4),
    addresses=st.lists(
        st.integers(min_value=1, max_value=254), min_size=1, max_size=8
    ),
)
def test_answer_roundtrip_property(owner, addresses):
    owner_text = ".".join(owner)
    query = make_query(DomainName.from_text(owner_text), RRType.A)
    response = make_response(query)
    for octet in addresses:
        record = make_record(owner_text, RRType.A, f"10.0.0.{octet}")
        if record not in response.answers:
            response.answers.append(record)
    decoded = decode_message(encode_message(response))
    assert decoded.answers == response.answers
