"""Tests for the authoritative server's response building."""

import pytest

from repro.dnscore.message import Message, make_query
from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.rrtypes import Opcode, Rcode, RRType
from repro.dnscore.server import AuthoritativeServer
from repro.dnscore.zone import Zone


def name(text):
    return DomainName.from_text(text)


@pytest.fixture
def server():
    soa = SOAData(name("ns1.example.com"), name("host.example.com"), 1)
    zone = Zone(name("example.com"), soa)
    zone.add("example.com", RRType.NS, "ns1.example.com.")
    zone.add("example.com", RRType.A, "192.0.2.10")
    zone.add("www.example.com", RRType.A, "192.0.2.11")
    zone.add("alias.example.com", RRType.CNAME, "www.example.com.")
    zone.add("ext.example.com", RRType.CNAME, "target.other.net.")
    zone.add("child.example.com", RRType.NS, "ns1.child.example.com.")
    zone.add("ns1.child.example.com", RRType.A, "192.0.2.53")
    srv = AuthoritativeServer("test-ns")
    srv.attach_zone(zone)
    return srv


class TestAnswers:
    def test_positive_answer_is_authoritative(self, server):
        response = server.handle_query(
            make_query(name("www.example.com"), RRType.A)
        )
        assert response.rcode == Rcode.NOERROR
        assert response.flags.aa
        assert response.answers[0].rdata.to_text() == "192.0.2.11"

    def test_apex_ns_in_authority_section(self, server):
        response = server.handle_query(
            make_query(name("www.example.com"), RRType.A)
        )
        ns = [r for r in response.authority if r.rrtype == RRType.NS]
        assert ns and ns[0].rdata.to_text() == "ns1.example.com."

    def test_in_zone_cname_is_followed(self, server):
        response = server.handle_query(
            make_query(name("alias.example.com"), RRType.A)
        )
        types = [r.rrtype for r in response.answers]
        assert types == [RRType.CNAME, RRType.A]

    def test_out_of_zone_cname_is_returned_unfollowed(self, server):
        response = server.handle_query(
            make_query(name("ext.example.com"), RRType.A)
        )
        assert [r.rrtype for r in response.answers] == [RRType.CNAME]

    def test_nxdomain_with_soa(self, server):
        response = server.handle_query(
            make_query(name("missing.example.com"), RRType.A)
        )
        assert response.rcode == Rcode.NXDOMAIN
        assert any(r.rrtype == RRType.SOA for r in response.authority)

    def test_nodata_with_soa(self, server):
        response = server.handle_query(
            make_query(name("www.example.com"), RRType.TXT)
        )
        assert response.rcode == Rcode.NOERROR
        assert not response.answers
        assert any(r.rrtype == RRType.SOA for r in response.authority)

    def test_referral_below_delegation(self, server):
        response = server.handle_query(
            make_query(name("deep.child.example.com"), RRType.A)
        )
        assert response.is_referral()
        assert not response.flags.aa
        glue = [r for r in response.additional if r.rrtype == RRType.A]
        assert glue[0].rdata.to_text() == "192.0.2.53"

    def test_query_outside_zones_refused(self, server):
        response = server.handle_query(
            make_query(name("www.other.org"), RRType.A)
        )
        assert response.rcode == Rcode.REFUSED

    def test_non_query_opcode_notimp(self, server):
        query = make_query(name("www.example.com"), RRType.A)
        query.flags = query.flags.__class__(opcode=Opcode.UPDATE)
        assert server.handle_query(query).rcode == Rcode.NOTIMP

    def test_question_missing_refused(self, server):
        assert server.handle_query(Message()).rcode == Rcode.REFUSED

    def test_query_counter(self, server):
        server.handle_query(make_query(name("www.example.com"), RRType.A))
        server.handle_query(make_query(name("example.com"), RRType.NS))
        assert server.queries_handled == 2


class TestZoneManagement:
    def test_longest_origin_wins(self, server):
        soa = SOAData(name("ns.sub.example.com"), name("h.example.com"), 1)
        sub = Zone(name("sub.example.com"), soa)
        sub.add("sub.example.com", RRType.A, "198.51.100.1")
        server.attach_zone(sub)
        assert server.zone_for(name("x.sub.example.com")).origin == name(
            "sub.example.com"
        )

    def test_detach_zone(self, server):
        assert server.detach_zone(name("example.com")) is not None
        assert server.zone_for(name("www.example.com")) is None

    def test_zones_listing(self, server):
        assert len(server.zones) == 1
