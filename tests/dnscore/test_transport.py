"""Tests for the simulated datagram network."""

import ipaddress

import pytest

from repro.dnscore.transport import (
    HostUnreachable,
    SimulatedNetwork,
    Timeout,
)


def addr(text="192.0.2.1"):
    return ipaddress.ip_address(text)


class TestDelivery:
    def test_request_response(self):
        net = SimulatedNetwork()
        net.register(addr(), lambda payload: payload[::-1])
        assert net.query(addr(), b"abc") == b"cba"

    def test_unreachable_host(self):
        net = SimulatedNetwork()
        with pytest.raises(HostUnreachable):
            net.query(addr(), b"x")

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register(addr(), lambda p: p)
        net.unregister(addr())
        with pytest.raises(HostUnreachable):
            net.query(addr(), b"x")

    def test_is_listening(self):
        net = SimulatedNetwork()
        assert not net.is_listening(addr())
        net.register(addr(), lambda p: p)
        assert net.is_listening(addr())

    def test_string_addresses_accepted(self):
        net = SimulatedNetwork()
        net.register("192.0.2.9", lambda p: b"ok")
        assert net.query("192.0.2.9", b"hi") == b"ok"

    def test_rebinding_replaces_handler(self):
        net = SimulatedNetwork()
        net.register(addr(), lambda p: b"one")
        net.register(addr(), lambda p: b"two")
        assert net.query(addr(), b"x") == b"two"


class TestLossAndStats:
    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(loss_rate=1.0)

    def test_deterministic_loss(self):
        net = SimulatedNetwork(loss_rate=0.5, seed=42)
        net.register(addr(), lambda p: p)
        outcomes = []
        for _ in range(50):
            try:
                net.query(addr(), b"x")
                outcomes.append(True)
            except Timeout:
                outcomes.append(False)
        # Same seed reproduces the identical loss pattern.
        net2 = SimulatedNetwork(loss_rate=0.5, seed=42)
        net2.register(addr(), lambda p: p)
        outcomes2 = []
        for _ in range(50):
            try:
                net2.query(addr(), b"x")
                outcomes2.append(True)
            except Timeout:
                outcomes2.append(False)
        assert outcomes == outcomes2
        assert any(outcomes) and not all(outcomes)

    def test_stats_accounting(self):
        net = SimulatedNetwork()
        net.register(addr(), lambda p: b"12345")
        net.query(addr(), b"abc")
        assert net.stats.datagrams_sent == 1
        assert net.stats.bytes_sent == 3
        assert net.stats.bytes_received == 5

    def test_lost_datagrams_counted(self):
        net = SimulatedNetwork(loss_rate=0.9, seed=1)
        net.register(addr(), lambda p: p)
        for _ in range(20):
            try:
                net.query(addr(), b"x")
            except Timeout:
                pass
        assert net.stats.datagrams_lost > 0
