"""Tests for EDNS(0): OPT pseudo-RR, payload sizes, resolver behaviour."""

import pytest

from repro.dnscore.message import EdnsInfo, make_query
from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.resolver import IterativeResolver
from repro.dnscore.rrtypes import RRType
from repro.dnscore.server import AuthoritativeServer, make_wire_handlers
from repro.dnscore.transport import SimulatedNetwork
from repro.dnscore.wire import decode_message, encode_message
from repro.dnscore.zone import Zone


def name(text):
    return DomainName.from_text(text)


class TestEdnsInfo:
    def test_defaults(self):
        edns = EdnsInfo()
        assert edns.payload_size == 1232
        assert edns.version == 0

    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            EdnsInfo(payload_size=100)
        with pytest.raises(ValueError):
            EdnsInfo(payload_size=70_000)

    def test_only_version_zero(self):
        with pytest.raises(ValueError):
            EdnsInfo(version=1)


class TestWire:
    def test_opt_roundtrip(self):
        query = make_query(
            name("a.com"), RRType.A, msg_id=3, edns_payload_size=4096
        )
        decoded = decode_message(encode_message(query))
        assert decoded.edns is not None
        assert decoded.edns.payload_size == 4096
        assert decoded.additional == []

    def test_no_edns_by_default(self):
        query = make_query(name("a.com"), RRType.A)
        assert decode_message(encode_message(query)).edns is None

    def test_options_preserved(self):
        query = make_query(name("a.com"), RRType.A, edns_payload_size=1232)
        object.__setattr__(query.edns, "options", b"\x00\x0a\x00\x00")
        decoded = decode_message(encode_message(query))
        assert decoded.edns.options == b"\x00\x0a\x00\x00"

    def test_truncated_response_keeps_opt(self):
        from repro.dnscore.message import Message

        message = Message(
            msg_id=1,
            question=make_query(name("a.com"), RRType.A).question,
            edns=EdnsInfo(payload_size=1232),
        )
        from repro.dnscore.records import make_record

        for index in range(40):
            message.answers.append(
                make_record("a.com", RRType.TXT, "x" * 100 + str(index))
            )
        wire = encode_message(message, max_size=512)
        decoded = decode_message(wire)
        assert decoded.flags.tc
        assert decoded.edns is not None


@pytest.fixture
def edns_tree():
    """A root + one zone whose bulk answer is ~1.1 kB."""
    net = SimulatedNetwork()
    soa = SOAData(name("ns.invalid"), name("h.invalid"), 1)

    root = Zone(DomainName.root(), soa)
    root.add(".", RRType.NS, "ns.root.invalid.")
    root.add("example", RRType.NS, "ns1.zone.example.")
    root.add("ns1.zone.example", RRType.A, "192.0.2.53")
    rootsrv = AuthoritativeServer("root")
    rootsrv.attach_zone(root)
    net.register("192.0.2.1", *make_wire_handlers(rootsrv))

    zone = Zone(name("zone.example"), soa)
    zone.add("zone.example", RRType.NS, "ns1.zone.example.")
    zone.add("ns1.zone.example", RRType.A, "192.0.2.53")
    for index in range(10):
        zone.add("bulk.zone.example", RRType.TXT, f"r{index}-" + "x" * 80)
    server = AuthoritativeServer("zone")
    server.attach_zone(zone)
    net.register("192.0.2.53", *make_wire_handlers(server))
    return net


class TestResolverWithEdns:
    def test_edns_avoids_stream_fallback(self, edns_tree):
        resolver = IterativeResolver(
            edns_tree, ["192.0.2.1"], edns_payload_size=4096
        )
        result = resolver.resolve(name("bulk.zone.example"), RRType.TXT)
        assert len(result.rrs(RRType.TXT)) == 10
        assert edns_tree.stats.streams_opened == 0

    def test_plain_resolver_needs_stream(self, edns_tree):
        resolver = IterativeResolver(edns_tree, ["192.0.2.1"])
        result = resolver.resolve(name("bulk.zone.example"), RRType.TXT)
        assert len(result.rrs(RRType.TXT)) == 10
        assert edns_tree.stats.streams_opened >= 1

    def test_server_caps_at_its_edns_max(self, edns_tree):
        """A giant client advertisement still caps at the server's limit."""
        resolver = IterativeResolver(
            edns_tree, ["192.0.2.1"], edns_payload_size=65000
        )
        result = resolver.resolve(name("bulk.zone.example"), RRType.TXT)
        # Response is ~1.1 kB < 1232 server cap, so it still fits.
        assert len(result.rrs(RRType.TXT)) == 10


class TestServerEdnsEcho:
    def test_response_carries_opt_when_query_did(self, edns_tree):
        query = make_query(
            name("example"), RRType.NS, msg_id=8, edns_payload_size=1232
        )
        raw = edns_tree.query("192.0.2.1", encode_message(query))
        assert decode_message(raw).edns is not None

    def test_response_has_no_opt_for_plain_query(self, edns_tree):
        query = make_query(name("example"), RRType.NS, msg_id=9)
        raw = edns_tree.query("192.0.2.1", encode_message(query))
        assert decode_message(raw).edns is None
