"""Tests for zone data management and the RFC 1034 lookup algorithm."""

import pytest

from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.rrtypes import RRType
from repro.dnscore.zone import LookupStatus, Zone, ZoneError, parse_zone_text


def name(text):
    return DomainName.from_text(text)


def make_zone(origin="example.com"):
    soa = SOAData(
        name(f"ns1.{origin}"), name(f"hostmaster.{origin}"), serial=1
    )
    zone = Zone(name(origin), soa)
    zone.add(origin, RRType.NS, f"ns1.{origin}.")
    return zone


class TestContentManagement:
    def test_add_and_get(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        rrset = zone.get_rrset(name("www.example.com"), RRType.A)
        assert rrset is not None
        assert rrset.rdata_texts() == ["192.0.2.1"]

    def test_record_outside_zone_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.add("www.other.com", RRType.A, "192.0.2.1")

    def test_cname_conflicts_with_other_data(self):
        zone = make_zone()
        zone.add("alias.example.com", RRType.CNAME, "www.example.com.")
        with pytest.raises(ZoneError):
            zone.add("alias.example.com", RRType.A, "192.0.2.1")

    def test_other_data_conflicts_with_cname(self):
        zone = make_zone()
        zone.add("host.example.com", RRType.A, "192.0.2.1")
        with pytest.raises(ZoneError):
            zone.add("host.example.com", RRType.CNAME, "www.example.com.")

    def test_remove_rrset(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        assert zone.remove_rrset(name("www.example.com"), RRType.A)
        assert zone.get_rrset(name("www.example.com"), RRType.A) is None

    def test_remove_missing_rrset_returns_false(self):
        zone = make_zone()
        assert not zone.remove_rrset(name("nothing.example.com"), RRType.A)

    def test_remove_name(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        zone.add("www.example.com", RRType.TXT, "hi")
        assert zone.remove_name(name("www.example.com")) == 2

    def test_replace_is_atomic(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        zone.replace(
            "www.example.com", RRType.A, ["192.0.2.7", "192.0.2.8"]
        )
        rrset = zone.get_rrset(name("www.example.com"), RRType.A)
        assert rrset.rdata_texts() == ["192.0.2.7", "192.0.2.8"]

    def test_len_counts_records(self):
        zone = make_zone()
        before = len(zone)
        zone.add("a.example.com", RRType.A, "192.0.2.1")
        assert len(zone) == before + 1

    def test_soa_accessor(self):
        assert make_zone().soa.serial == 1


class TestLookup:
    def test_exact_match(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        result = zone.lookup(name("www.example.com"), RRType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_nxdomain(self):
        zone = make_zone()
        result = zone.lookup(name("missing.example.com"), RRType.A)
        assert result.status == LookupStatus.NXDOMAIN

    def test_nodata_for_existing_name(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        result = zone.lookup(name("www.example.com"), RRType.TXT)
        assert result.status == LookupStatus.NODATA

    def test_empty_nonterminal_is_nodata(self):
        zone = make_zone()
        zone.add("a.b.example.com", RRType.A, "192.0.2.1")
        result = zone.lookup(name("b.example.com"), RRType.A)
        assert result.status == LookupStatus.NODATA

    def test_cname_returned_for_other_types(self):
        zone = make_zone()
        zone.add("alias.example.com", RRType.CNAME, "www.example.com.")
        result = zone.lookup(name("alias.example.com"), RRType.A)
        assert result.status == LookupStatus.CNAME

    def test_cname_query_gets_cname_directly(self):
        zone = make_zone()
        zone.add("alias.example.com", RRType.CNAME, "www.example.com.")
        result = zone.lookup(name("alias.example.com"), RRType.CNAME)
        assert result.status == LookupStatus.SUCCESS

    def test_delegation_returned_for_names_below_cut(self):
        zone = make_zone()
        zone.add("child.example.com", RRType.NS, "ns1.child.example.com.")
        zone.add("ns1.child.example.com", RRType.A, "192.0.2.53")
        result = zone.lookup(name("www.child.example.com"), RRType.A)
        assert result.status == LookupStatus.DELEGATION
        assert result.delegation is not None
        assert len(result.glue) == 1

    def test_delegation_at_qname_for_non_ns_query(self):
        zone = make_zone()
        zone.add("child.example.com", RRType.NS, "ns1.child.example.com.")
        result = zone.lookup(name("child.example.com"), RRType.A)
        assert result.status == LookupStatus.DELEGATION

    def test_apex_ns_is_authoritative_not_delegation(self):
        zone = make_zone()
        result = zone.lookup(name("example.com"), RRType.NS)
        assert result.status == LookupStatus.SUCCESS

    def test_lookup_outside_zone_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.lookup(name("www.other.org"), RRType.A)

    def test_out_of_bailiwick_ns_has_no_glue(self):
        zone = make_zone()
        zone.add("child.example.com", RRType.NS, "ns.other.net.")
        result = zone.lookup(name("x.child.example.com"), RRType.A)
        assert result.status == LookupStatus.DELEGATION
        assert result.glue == []


class TestWildcards:
    def test_wildcard_synthesis(self):
        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        result = zone.lookup(name("anything.example.com"), RRType.A)
        assert result.status == LookupStatus.SUCCESS
        # Synthesized records carry the query name as owner.
        assert result.rrset.name == name("anything.example.com")
        assert result.rrset.rdata_texts() == ["192.0.2.99"]

    def test_wildcard_matches_deeper_names(self):
        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        result = zone.lookup(name("a.b.example.com"), RRType.A)
        assert result.status == LookupStatus.SUCCESS

    def test_existing_name_shadows_wildcard(self):
        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        result = zone.lookup(name("www.example.com"), RRType.A)
        assert result.rrset.rdata_texts() == ["192.0.2.1"]

    def test_existing_name_nodata_not_wildcarded(self):
        # An existing name with other data gives NODATA, never wildcard.
        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        zone.add("www.example.com", RRType.TXT, "hello")
        result = zone.lookup(name("www.example.com"), RRType.A)
        assert result.status == LookupStatus.NODATA

    def test_wildcard_nodata_for_other_types(self):
        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        result = zone.lookup(name("anything.example.com"), RRType.TXT)
        assert result.status == LookupStatus.NODATA

    def test_wildcard_cname(self):
        zone = make_zone()
        zone.add("*.park.example.com", RRType.CNAME, "lander.example.com.")
        zone.add("park.example.com", RRType.TXT, "exists")
        result = zone.lookup(name("x.park.example.com"), RRType.A)
        assert result.status == LookupStatus.CNAME
        assert result.rrset.name == name("x.park.example.com")

    def test_no_wildcard_still_nxdomain(self):
        zone = make_zone()
        result = zone.lookup(name("missing.example.com"), RRType.A)
        assert result.status == LookupStatus.NXDOMAIN

    def test_wildcard_served_by_server(self):
        from repro.dnscore.message import make_query
        from repro.dnscore.server import AuthoritativeServer

        zone = make_zone()
        zone.add("*.example.com", RRType.A, "192.0.2.99")
        server = AuthoritativeServer()
        server.attach_zone(zone)
        response = server.handle_query(
            make_query(name("parked123.example.com"), RRType.A)
        )
        assert response.answers[0].name == name("parked123.example.com")
        assert response.answers[0].rdata.to_text() == "192.0.2.99"


class TestZoneText:
    def test_roundtrip(self):
        zone = make_zone()
        zone.add("www.example.com", RRType.A, "192.0.2.1")
        zone.add("alias.example.com", RRType.CNAME, "www.example.com.")
        zone.add("example.com", RRType.TXT, "v=spf1 -all")
        parsed = parse_zone_text(zone.to_text())
        assert parsed.origin == zone.origin
        assert len(parsed) == len(zone)
        rrset = parsed.get_rrset(name("www.example.com"), RRType.A)
        assert rrset.rdata_texts() == ["192.0.2.1"]

    def test_relative_names_use_origin(self):
        text = (
            "$ORIGIN example.com.\n"
            "www 300 IN A 192.0.2.5\n"
        )
        zone = parse_zone_text(text)
        rrset = zone.get_rrset(name("www.example.com"), RRType.A)
        assert rrset is not None
        assert rrset.ttl == 300

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "$ORIGIN example.com.\n"
            "; a comment\n"
            "\n"
            "www IN A 192.0.2.5 ; trailing comment\n"
        )
        zone = parse_zone_text(text)
        assert zone.get_rrset(name("www.example.com"), RRType.A)

    def test_origin_inferred_from_soa(self):
        text = (
            "example.com. 3600 IN SOA ns1.example.com. host.example.com. "
            "1 7200 900 1209600 86400\n"
            "example.com. 3600 IN NS ns1.example.com.\n"
        )
        zone = parse_zone_text(text)
        assert zone.origin == name("example.com")
        assert zone.soa is not None

    def test_unsupported_directive_rejected(self):
        with pytest.raises(ZoneError):
            parse_zone_text("$TTL 300\nwww IN A 192.0.2.1\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ZoneError):
            parse_zone_text("$ORIGIN a.com.\nwww A\n")

    def test_relative_name_without_origin_rejected(self):
        with pytest.raises(ZoneError):
            parse_zone_text("www IN A 192.0.2.1\n")
