"""Fuzz corpus for the wire decoder: garbage in, typed errors out.

Whatever bytes arrive — random noise, truncations of a valid message,
targeted mutations of length fields and pointers — ``decode_message``
must either return a Message or raise :class:`WireError`. Any other
exception type is a crash site leaking encoding internals to callers
(the resolver's retry logic catches ``WireError`` only).
"""

import random
import struct

import pytest

from repro.dnscore.message import make_query, make_response
from repro.dnscore.name import DomainName
from repro.dnscore.records import make_record
from repro.dnscore.rrtypes import RRType
from repro.dnscore.wire import WireError, decode_message, encode_message

CORPUS_SEED = 1337
CORPUS_SIZE = 256


def assert_decodes_or_raises_typed(blob):
    try:
        decode_message(blob)
    except WireError:
        pass


def valid_message_bytes():
    query = make_query(
        DomainName.from_text("www.examp.com"), RRType.A, msg_id=77
    )
    response = make_response(query, authoritative=True)
    response.answers.append(
        make_record("www.examp.com", RRType.CNAME, "x1.foob.ar.")
    )
    response.answers.append(make_record("x1.foob.ar", RRType.A, "10.0.0.2"))
    response.answers.append(
        make_record("x1.foob.ar", RRType.AAAA, "2001:db8::2")
    )
    response.authority.append(
        make_record("examp.com", RRType.NS, "ns.examp.com.")
    )
    return encode_message(response)


class TestRandomCorpus:
    def test_random_byte_strings_never_crash(self):
        rng = random.Random(CORPUS_SEED)
        for _ in range(CORPUS_SIZE):
            length = rng.randrange(0, 64)
            blob = bytes(rng.randrange(256) for _ in range(length))
            assert_decodes_or_raises_typed(blob)

    def test_random_tails_on_valid_header_never_crash(self):
        """A plausible header followed by noise exercises the section
        parsers, not just the header length check."""
        rng = random.Random(CORPUS_SEED + 1)
        header = valid_message_bytes()[:12]
        for _ in range(CORPUS_SIZE):
            length = rng.randrange(0, 48)
            tail = bytes(rng.randrange(256) for _ in range(length))
            assert_decodes_or_raises_typed(header + tail)


class TestStructuredDamage:
    def test_every_truncation_of_a_valid_message(self):
        blob = valid_message_bytes()
        for cut in range(len(blob)):
            assert_decodes_or_raises_typed(blob[:cut])

    def test_every_single_byte_mutation(self):
        blob = valid_message_bytes()
        for position in range(len(blob)):
            mutated = bytearray(blob)
            mutated[position] ^= 0xFF
            assert_decodes_or_raises_typed(bytes(mutated))

    def test_overlong_label_length(self):
        # A label claiming 63 bytes with only 2 present.
        blob = struct.pack(">HHHHHH", 1, 0, 1, 0, 0, 0) + b"\x3fab"
        with pytest.raises(WireError):
            decode_message(blob)

    def test_forward_compression_pointer(self):
        # A name that is just a pointer to bytes beyond the message.
        blob = struct.pack(">HHHHHH", 1, 0, 1, 0, 0, 0) + b"\xff\xfe"
        with pytest.raises(WireError):
            decode_message(blob)

    def test_self_referential_pointer_terminates(self):
        # A pointer that points at itself must error, not loop forever.
        blob = struct.pack(">HHHHHH", 1, 0, 1, 0, 0, 0) + b"\xc0\x0c"
        with pytest.raises(WireError):
            decode_message(blob)

    def test_empty_input(self):
        with pytest.raises(WireError):
            decode_message(b"")

    def test_trailing_garbage_after_valid_message(self):
        blob = valid_message_bytes() + b"\x00\x01\x02\x03"
        assert_decodes_or_raises_typed(blob)

    def test_counts_larger_than_payload(self):
        # Header promising 65535 answers with an empty body.
        blob = struct.pack(">HHHHHH", 1, 0x8000, 0, 0xFFFF, 0, 0)
        with pytest.raises(WireError):
            decode_message(blob)
