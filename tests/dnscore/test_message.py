"""Tests for the DNS message model."""

import pytest

from repro.dnscore.message import Flags, Message, Question, make_query, make_response
from repro.dnscore.name import DomainName
from repro.dnscore.records import make_record
from repro.dnscore.rrtypes import Opcode, Rcode, RRType


def qname(text="www.example.com"):
    return DomainName.from_text(text)


class TestFlags:
    def test_pack_unpack_roundtrip(self):
        flags = Flags(qr=True, aa=True, rd=True, ra=True, rcode=Rcode.NXDOMAIN)
        assert Flags.unpack(flags.pack()) == flags

    def test_default_query_flags(self):
        flags = Flags()
        assert not flags.qr
        assert flags.rd

    @pytest.mark.parametrize("rcode", list(Rcode))
    def test_all_rcodes_roundtrip(self, rcode):
        assert Flags.unpack(Flags(rcode=rcode).pack()).rcode == rcode

    def test_opcode_bits(self):
        flags = Flags(opcode=Opcode.UPDATE)
        assert Flags.unpack(flags.pack()).opcode == Opcode.UPDATE


class TestMakeQuery:
    def test_question_set(self):
        query = make_query(qname(), RRType.A, msg_id=7)
        assert query.question == Question(qname(), RRType.A)
        assert query.msg_id == 7
        assert not query.is_response()

    def test_recursion_desired_flag(self):
        assert not make_query(
            qname(), RRType.A, recursion_desired=False
        ).flags.rd


class TestMakeResponse:
    def test_mirrors_question_and_id(self):
        query = make_query(qname(), RRType.A, msg_id=9)
        response = make_response(query, authoritative=True)
        assert response.msg_id == 9
        assert response.question == query.question
        assert response.flags.aa
        assert response.is_response()

    def test_requires_question(self):
        with pytest.raises(ValueError):
            make_response(Message())

    def test_rcode_propagates(self):
        query = make_query(qname(), RRType.A)
        assert make_response(query, rcode=Rcode.SERVFAIL).rcode == Rcode.SERVFAIL


class TestMessageAccessors:
    def test_answer_rrs_filters_by_type(self):
        query = make_query(qname("a.com"), RRType.A)
        response = make_response(query)
        response.answers.append(make_record("a.com", RRType.A, "192.0.2.1"))
        response.answers.append(
            make_record("a.com", RRType.CNAME, "alias.b.com.")
        )
        assert len(response.answer_rrs(RRType.A)) == 1
        assert len(response.answer_rrs(RRType.CNAME)) == 1

    def test_is_referral(self):
        query = make_query(qname("x.a.com"), RRType.A)
        response = make_response(query)
        response.authority.append(
            make_record("a.com", RRType.NS, "ns1.a.com.")
        )
        assert response.is_referral()

    def test_authoritative_answer_is_not_referral(self):
        query = make_query(qname("a.com"), RRType.A)
        response = make_response(query, authoritative=True)
        response.authority.append(
            make_record("a.com", RRType.NS, "ns1.a.com.")
        )
        assert not response.is_referral()

    def test_to_text_contains_sections(self):
        query = make_query(qname("a.com"), RRType.A)
        response = make_response(query)
        response.answers.append(make_record("a.com", RRType.A, "192.0.2.1"))
        text = response.to_text()
        assert "QUESTION SECTION" in text
        assert "ANSWER SECTION" in text
        assert "192.0.2.1" in text
