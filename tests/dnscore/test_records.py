"""Tests for typed resource records and RRsets."""

import ipaddress

import pytest

from repro.dnscore.name import DomainName
from repro.dnscore.records import (
    AData,
    AAAAData,
    CNAMEData,
    MXData,
    NSData,
    RRset,
    ResourceRecord,
    SOAData,
    TXTData,
    make_record,
)
from repro.dnscore.rrtypes import RRType


class TestRdata:
    def test_a_from_string(self):
        assert AData("192.0.2.1").to_text() == "192.0.2.1"

    def test_a_from_object(self):
        addr = ipaddress.IPv4Address("192.0.2.9")
        assert AData(addr).address == addr

    def test_aaaa(self):
        assert AAAAData("2001:db8::1").to_text() == "2001:db8::1"

    def test_ns_renders_absolute(self):
        data = NSData(DomainName.from_text("ns1.example.com"))
        assert data.to_text() == "ns1.example.com."

    def test_cname(self):
        data = CNAMEData(DomainName.from_text("target.example.net"))
        assert data.to_text() == "target.example.net."

    def test_mx(self):
        data = MXData(10, DomainName.from_text("mail.example.com"))
        assert data.to_text() == "10 mail.example.com."

    def test_txt(self):
        data = TXTData((b"hello",))
        assert data.to_text() == '"hello"'

    def test_txt_too_long_rejected(self):
        with pytest.raises(ValueError):
            TXTData((b"x" * 256,))

    def test_soa_fields(self):
        soa = SOAData(
            DomainName.from_text("ns.example.com"),
            DomainName.from_text("admin.example.com"),
            serial=42,
        )
        assert "42" in soa.to_text()
        assert soa.refresh == 7200


class TestResourceRecord:
    def test_type_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord(
                DomainName.from_text("a.com"),
                RRType.NS,
                AData("192.0.2.1"),
            )

    def test_to_text_master_format(self):
        record = make_record("www.a.com", RRType.A, "192.0.2.1", ttl=60)
        assert record.to_text() == "www.a.com. 60 IN A 192.0.2.1"

    def test_records_are_frozen_and_hashable(self):
        a = make_record("a.com", RRType.A, "192.0.2.1")
        b = make_record("a.com", RRType.A, "192.0.2.1")
        assert a == b
        assert hash(a) == hash(b)


class TestMakeRecord:
    @pytest.mark.parametrize(
        "rrtype,value",
        [
            (RRType.A, "192.0.2.1"),
            (RRType.AAAA, "2001:db8::1"),
            (RRType.NS, "ns1.example.com."),
            (RRType.CNAME, "alias.example.net."),
            (RRType.TXT, "v=spf1 -all"),
            (RRType.MX, "10 mail.example.com."),
            (RRType.PTR, "host.example.com."),
        ],
    )
    def test_supported_types(self, rrtype, value):
        record = make_record("name.example.com", rrtype, value)
        assert record.rrtype == rrtype

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValueError):
            make_record("a.com", RRType.SOA, "not supported here")


class TestRRset:
    def test_add_and_iterate(self):
        rrset = RRset(DomainName.from_text("a.com"), RRType.A)
        rrset.add(make_record("a.com", RRType.A, "192.0.2.1"))
        rrset.add(make_record("a.com", RRType.A, "192.0.2.2"))
        assert len(rrset) == 2
        assert rrset.rdata_texts() == ["192.0.2.1", "192.0.2.2"]

    def test_duplicate_records_collapse(self):
        rrset = RRset(DomainName.from_text("a.com"), RRType.A)
        rrset.add(make_record("a.com", RRType.A, "192.0.2.1"))
        rrset.add(make_record("a.com", RRType.A, "192.0.2.1"))
        assert len(rrset) == 1

    def test_foreign_record_rejected(self):
        rrset = RRset(DomainName.from_text("a.com"), RRType.A)
        with pytest.raises(ValueError):
            rrset.add(make_record("b.com", RRType.A, "192.0.2.1"))

    def test_ttl_is_minimum(self):
        rrset = RRset(DomainName.from_text("a.com"), RRType.A)
        rrset.add(make_record("a.com", RRType.A, "192.0.2.1", ttl=300))
        rrset.add(make_record("a.com", RRType.A, "192.0.2.2", ttl=60))
        assert rrset.ttl == 60

    def test_empty_rrset_is_falsy(self):
        assert not RRset(DomainName.from_text("a.com"), RRType.A)
