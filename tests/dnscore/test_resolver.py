"""Tests for stub and iterative resolution over the simulated network."""

import ipaddress

import pytest

from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.rrtypes import Rcode, RRType
from repro.dnscore.resolver import (
    IterativeResolver,
    ResolutionError,
    ResolverCache,
    StubResolver,
)
from repro.dnscore.server import AuthoritativeServer
from repro.dnscore.transport import SimulatedNetwork
from repro.dnscore.wire import decode_message, encode_message
from repro.dnscore.zone import Zone


def name(text):
    return DomainName.from_text(text)


def soa(origin):
    return SOAData(name("ns.invalid"), name("host.invalid"), 1)


def serve(net, server, ip):
    net.register(
        ipaddress.ip_address(ip),
        lambda b: encode_message(server.handle_query(decode_message(b))),
    )


@pytest.fixture
def dns_tree():
    """Root → com/ar → example.com (+ DPS zone foob.ar), as in §2.1."""
    net = SimulatedNetwork()

    root = Zone(DomainName.root(), soa("."))
    root.add(".", RRType.NS, "ns.root-servers.net.")
    root.add("com", RRType.NS, "ns.gtld.com.")
    root.add("ns.gtld.com", RRType.A, "192.0.2.10")
    root.add("ar", RRType.NS, "ns.nic.ar.")
    root.add("ns.nic.ar", RRType.A, "192.0.2.30")
    rootsrv = AuthoritativeServer("root")
    rootsrv.attach_zone(root)
    serve(net, rootsrv, "192.0.2.1")

    com = Zone(name("com"), soa("com"))
    com.add("com", RRType.NS, "ns.gtld.com.")
    com.add("examp.com", RRType.NS, "ns.registr.com.")
    com.add("ns.registr.com", RRType.A, "192.0.2.20")
    com.add("oob.com", RRType.NS, "ns.examp.com.")  # out-of-bailiwick-ish
    comsrv = AuthoritativeServer("com")
    comsrv.attach_zone(com)
    serve(net, comsrv, "192.0.2.10")

    cust = Zone(name("examp.com"), soa("examp.com"))
    cust.add("examp.com", RRType.NS, "ns.registr.com.")
    cust.add("examp.com", RRType.A, "203.0.113.1")
    cust.add("www.examp.com", RRType.CNAME, "x1.foob.ar.")
    cust.add("ns.examp.com", RRType.A, "192.0.2.21")
    custsrv = AuthoritativeServer("registrar")
    custsrv.attach_zone(cust)
    serve(net, custsrv, "192.0.2.20")

    oob = Zone(name("oob.com"), soa("oob.com"))
    oob.add("oob.com", RRType.NS, "ns.examp.com.")
    oob.add("oob.com", RRType.A, "203.0.113.99")
    oobsrv = AuthoritativeServer("oob")
    oobsrv.attach_zone(oob)
    serve(net, oobsrv, "192.0.2.21")

    ar = Zone(name("ar"), soa("ar"))
    ar.add("ar", RRType.NS, "ns.nic.ar.")
    ar.add("foob.ar", RRType.NS, "ns.foob.ar.")
    ar.add("ns.foob.ar", RRType.A, "192.0.2.40")
    arsrv = AuthoritativeServer("ar")
    arsrv.attach_zone(ar)
    serve(net, arsrv, "192.0.2.30")

    dps = Zone(name("foob.ar"), soa("foob.ar"))
    dps.add("foob.ar", RRType.NS, "ns.foob.ar.")
    dps.add("x1.foob.ar", RRType.A, "10.0.0.2")
    dpssrv = AuthoritativeServer("dps")
    dpssrv.attach_zone(dps)
    serve(net, dpssrv, "192.0.2.40")

    return net


@pytest.fixture
def resolver(dns_tree):
    return IterativeResolver(dns_tree, ["192.0.2.1"])


class TestIterativeResolution:
    def test_apex_a(self, resolver):
        result = resolver.resolve(name("examp.com"), RRType.A)
        assert result.rcode == Rcode.NOERROR
        assert result.addresses() == ["203.0.113.1"]

    def test_cross_zone_cname_expansion(self, resolver):
        result = resolver.resolve(name("www.examp.com"), RRType.A)
        assert [c.to_text() for c in result.cname_chain] == ["x1.foob.ar"]
        assert result.addresses() == ["10.0.0.2"]
        # The full expansion is in the answer chain, CNAME first.
        assert [r.rrtype for r in result.answers] == [
            RRType.CNAME,
            RRType.A,
        ]

    def test_ns_lookup(self, resolver):
        result = resolver.resolve(name("examp.com"), RRType.NS)
        assert [r.rdata.to_text() for r in result.rrs(RRType.NS)] == [
            "ns.registr.com."
        ]

    def test_nxdomain(self, resolver):
        result = resolver.resolve(name("missing.examp.com"), RRType.A)
        assert result.rcode == Rcode.NXDOMAIN

    def test_nodata(self, resolver):
        result = resolver.resolve(name("examp.com"), RRType.AAAA)
        assert result.rcode == Rcode.NOERROR
        assert result.addresses() == []

    def test_out_of_bailiwick_ns_resolution(self, resolver):
        result = resolver.resolve(name("oob.com"), RRType.A)
        assert result.addresses() == ["203.0.113.99"]

    def test_queries_are_counted(self, resolver):
        result = resolver.resolve(name("examp.com"), RRType.A)
        assert result.queries_sent >= 3  # root, com, examp.com

    def test_unreachable_root_raises(self, dns_tree):
        bad = IterativeResolver(dns_tree, ["198.51.100.99"])
        with pytest.raises(ResolutionError):
            bad.resolve(name("examp.com"), RRType.A)

    def test_requires_root_servers(self, dns_tree):
        with pytest.raises(ValueError):
            IterativeResolver(dns_tree, [])


class TestCache:
    def test_cache_hit_avoids_queries(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        first = resolver.resolve(name("examp.com"), RRType.A)
        second = resolver.resolve(name("examp.com"), RRType.A)
        assert second.addresses() == first.addresses()
        assert second.queries_sent == 0
        assert cache.hits >= 1

    def test_cache_expiry_by_clock(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        resolver.resolve(name("examp.com"), RRType.A)
        resolver.clock += 10_000_000  # far beyond any TTL
        result = resolver.resolve(name("examp.com"), RRType.A)
        assert result.queries_sent > 0

    def test_negative_cache_nxdomain(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        first = resolver.resolve(name("missing.examp.com"), RRType.A)
        assert first.rcode == Rcode.NXDOMAIN
        second = resolver.resolve(name("missing.examp.com"), RRType.A)
        assert second.rcode == Rcode.NXDOMAIN
        assert second.queries_sent == 0
        assert cache.negative_hits >= 1

    def test_negative_cache_nodata(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        resolver.resolve(name("examp.com"), RRType.AAAA)
        second = resolver.resolve(name("examp.com"), RRType.AAAA)
        assert second.queries_sent == 0
        assert second.addresses() == []

    def test_negative_cache_expires(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        resolver.resolve(name("missing.examp.com"), RRType.A)
        resolver.clock += 10_000_000
        again = resolver.resolve(name("missing.examp.com"), RRType.A)
        assert again.queries_sent > 0

    def test_negative_cache_is_per_type(self, dns_tree):
        cache = ResolverCache()
        resolver = IterativeResolver(dns_tree, ["192.0.2.1"], cache=cache)
        resolver.resolve(name("examp.com"), RRType.AAAA)  # NODATA cached
        positive = resolver.resolve(name("examp.com"), RRType.A)
        assert positive.addresses() == ["203.0.113.1"]

    def test_cache_flush(self):
        cache = ResolverCache()
        from repro.dnscore.records import make_record

        cache.put(
            name("a.com"), RRType.A,
            [make_record("a.com", RRType.A, "192.0.2.1")], now=0.0,
        )
        assert len(cache) == 1
        cache.flush()
        assert len(cache) == 0
        assert cache.get(name("a.com"), RRType.A, now=0.0) is None


class TestStubResolver:
    def test_stub_query(self, dns_tree):
        # Point the stub straight at the examp.com authoritative server.
        stub = StubResolver(dns_tree, "192.0.2.20")
        response = stub.query(name("examp.com"), RRType.A)
        assert response.answers[0].rdata.to_text() == "203.0.113.1"

    def test_stub_unreachable(self, dns_tree):
        stub = StubResolver(dns_tree, "198.51.100.1")
        with pytest.raises(ResolutionError):
            stub.query(name("examp.com"), RRType.A)


class TestLossyNetwork:
    def test_retries_mask_moderate_loss(self):
        # Build a one-zone tree on a lossy network; retries should usually
        # still get through at 20% loss with 2 tries per server.
        net = SimulatedNetwork(loss_rate=0.2, seed=5)
        zone = Zone(name("com"), soa("com"))
        zone.add("com", RRType.NS, "ns.gtld.com.")
        zone.add("a.com", RRType.A, "192.0.2.77")
        srv = AuthoritativeServer("com")
        srv.attach_zone(zone)
        serve(net, srv, "192.0.2.10")

        root = Zone(DomainName.root(), soa("."))
        root.add(".", RRType.NS, "ns.root-servers.net.")
        root.add("com", RRType.NS, "ns.gtld.com.")
        root.add("ns.gtld.com", RRType.A, "192.0.2.10")
        rootsrv = AuthoritativeServer("root")
        rootsrv.attach_zone(root)
        serve(net, rootsrv, "192.0.2.1")

        resolver = IterativeResolver(net, ["192.0.2.1"])
        successes = 0
        for _ in range(10):
            try:
                result = resolver.resolve(name("a.com"), RRType.A)
                if result.addresses() == ["192.0.2.77"]:
                    successes += 1
            except ResolutionError:
                pass
        assert successes >= 8
