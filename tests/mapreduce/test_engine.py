"""Tests for the local MapReduce engine."""

import pytest

from repro.mapreduce.engine import Job, MapReduceEngine, run_job


def word_count_job(combiner=True):
    def mapper(line):
        for word in line.split():
            yield word, 1

    def combine(key, values):
        return [sum(values)]

    def reducer(key, values):
        yield key, sum(values)

    return Job(
        name="wc",
        mapper=mapper,
        reducer=reducer,
        combiner=combine if combiner else None,
    )


RECORDS = ["a b a", "b c", "a"]


class TestExecution:
    def test_word_count(self):
        outputs = dict(run_job(word_count_job(), RECORDS))
        assert outputs == {"a": 3, "b": 2, "c": 1}

    def test_without_combiner_same_result(self):
        assert dict(run_job(word_count_job(combiner=False), RECORDS)) == {
            "a": 3, "b": 2, "c": 1,
        }

    def test_partition_count_does_not_change_result(self):
        for partitions in (1, 2, 7, 32):
            outputs = dict(
                run_job(word_count_job(), RECORDS, partitions=partitions)
            )
            assert outputs == {"a": 3, "b": 2, "c": 1}

    def test_reducer_can_filter(self):
        def reducer(key, values):
            total = sum(values)
            if total > 1:
                yield key, total

        job = Job(
            name="wc>1", mapper=word_count_job().mapper, reducer=reducer
        )
        assert dict(run_job(job, RECORDS)) == {"a": 3, "b": 2}

    def test_empty_input(self):
        assert run_job(word_count_job(), []) == []

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            MapReduceEngine(partitions=0)


class TestCounters:
    def test_counters_populated(self):
        engine = MapReduceEngine(partitions=4)
        engine.run(word_count_job(), RECORDS)
        counters = engine.last_counters
        assert counters.records_read == 3
        assert counters.pairs_emitted == 6
        assert counters.pairs_after_combine == 3  # one per distinct word
        assert counters.keys_reduced == 3
        assert counters.outputs_written == 3

    def test_combiner_reduces_shuffle_volume(self):
        with_combiner = MapReduceEngine()
        with_combiner.run(word_count_job(), RECORDS)
        without = MapReduceEngine()
        without.run(word_count_job(combiner=False), RECORDS)
        assert (
            with_combiner.last_counters.pairs_after_combine
            < without.last_counters.pairs_after_combine
        )

    def test_deterministic_output_order(self):
        first = run_job(word_count_job(), RECORDS)
        second = run_job(word_count_job(), RECORDS)
        assert first == second
