"""Tests for the predefined analysis jobs."""

from repro.core.references import SignatureCatalog
from repro.mapreduce.engine import run_job
from repro.mapreduce.jobs import (
    daily_detection_job,
    ns_sld_frequency_job,
    reference_count_job,
)
from repro.measurement.snapshot import DomainObservation


def observation(domain, day=0, ns=(), cnames=(), asns=frozenset()):
    return DomainObservation(
        day=day,
        domain=domain,
        tld="com",
        ns_names=ns,
        apex_addrs=("10.0.0.1",),
        www_cnames=cnames,
        asns=frozenset(asns),
    )


CATALOG = SignatureCatalog.paper_table2()

ROWS = [
    observation("a.com", ns=("kate.ns.cloudflare.com",), asns={13335}),
    observation("b.com", cnames=("x.incapdns.net",), asns={19551}),
    observation("c.com", ns=("ns1.hostco-dns.com",), asns={64500}),
    observation("a.com", day=1, ns=("kate.ns.cloudflare.com",),
                asns={13335}),
]


class TestDailyDetectionJob:
    def test_counts_per_day_provider(self):
        outputs = dict(run_job(daily_detection_job(CATALOG), ROWS))
        assert outputs[(0, "CloudFlare")] == 1
        assert outputs[(0, "Incapsula")] == 1
        assert outputs[(1, "CloudFlare")] == 1
        assert (0, "Akamai") not in outputs

    def test_unprotected_rows_emit_nothing(self):
        outputs = run_job(
            daily_detection_job(CATALOG),
            [observation("c.com", ns=("ns1.hostco-dns.com",), asns={64500})],
        )
        assert outputs == []


class TestReferenceCountJob:
    def test_per_reference_breakdown(self):
        outputs = dict(run_job(reference_count_job(CATALOG), ROWS))
        assert outputs[(0, "CloudFlare", "AS")] == 1
        assert outputs[(0, "CloudFlare", "NS")] == 1
        assert outputs[(0, "Incapsula", "CNAME")] == 1
        assert (0, "CloudFlare", "CNAME") not in outputs


class TestNsSldFrequencyJob:
    def test_frequency_threshold(self):
        rows = ROWS + [
            observation("d.com", ns=("ns2.hostco-dns.com",)),
        ]
        outputs = dict(run_job(ns_sld_frequency_job(min_count=2), rows))
        assert outputs["hostco-dns.com"] == 2
        assert outputs["cloudflare.com"] == 2
        assert "incapsecuredns.net" not in outputs
