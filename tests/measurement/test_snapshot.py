"""Tests for the observation row schema."""

import pytest

from repro.measurement.snapshot import (
    DomainObservation,
    ObservationSegment,
    sld_of,
)


def observation(**overrides):
    defaults = dict(
        day=5,
        domain="examp.com",
        tld="com",
        ns_names=("ns1.hostco-dns.com",),
        apex_addrs=("10.0.0.1",),
    )
    defaults.update(overrides)
    return DomainObservation(**defaults)


class TestSldOf:
    def test_simple(self):
        assert sld_of("kate.ns.cloudflare.com") == "cloudflare.com"

    def test_public_suffix_returns_none(self):
        assert sld_of("com") is None

    def test_invalid_name_returns_none(self):
        assert sld_of("bad..name") is None


class TestObservation:
    def test_all_addresses_deduplicates(self):
        obs = observation(
            apex_addrs=("10.0.0.1",),
            www_addrs=("10.0.0.1", "10.0.0.2"),
        )
        assert obs.all_addresses() == ("10.0.0.1", "10.0.0.2")

    def test_all_addresses_first_seen_order_across_columns(self):
        """Regression: the dict.fromkeys rewrite must keep the exact
        apex → www → apex6 → www6 first-seen order and dedup of the old
        linear scan."""
        obs = observation(
            apex_addrs=("10.0.0.2", "10.0.0.1"),
            www_addrs=("10.0.0.1", "10.0.0.3"),
            apex_addrs6=("2001:db8::1", "2001:db8::2"),
            www_addrs6=("2001:db8::2", "10.0.0.2"),
        )
        assert obs.all_addresses() == (
            "10.0.0.2",
            "10.0.0.1",
            "10.0.0.3",
            "2001:db8::1",
            "2001:db8::2",
        )

    def test_all_addresses_scales_linearly_enough(self):
        """Regression for the O(n^2) `addr not in seen-list` scan: a
        many-address observation must dedup in well under a second."""
        import time

        addrs = tuple(f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}"
                      for i in range(20000))
        obs = observation(apex_addrs=addrs, www_addrs=addrs)
        started = time.perf_counter()
        result = obs.all_addresses()
        elapsed = time.perf_counter() - started
        assert result == addrs
        assert elapsed < 1.0

    def test_ns_slds(self):
        obs = observation(
            ns_names=("ns1.hostco-dns.com", "kate.ns.cloudflare.com")
        )
        assert obs.ns_slds() == frozenset(
            {"hostco-dns.com", "cloudflare.com"}
        )

    def test_cname_slds(self):
        obs = observation(www_cnames=("tok-1.incapdns.net",))
        assert obs.cname_slds() == frozenset({"incapdns.net"})

    def test_is_dark(self):
        dark = observation(ns_names=(), apex_addrs=())
        assert dark.is_dark()
        assert not observation().is_dark()

    def test_with_asns(self):
        enriched = observation().with_asns(frozenset({13335}))
        assert enriched.asns == frozenset({13335})
        assert enriched.domain == "examp.com"


class TestSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObservationSegment(10, 10, observation())

    def test_days(self):
        assert ObservationSegment(10, 25, observation()).days == 15

    def test_at_produces_daily_row(self):
        segment = ObservationSegment(10, 25, observation(day=10))
        assert segment.at(17).day == 17
        assert segment.at(17).domain == "examp.com"

    def test_at_outside_rejected(self):
        segment = ObservationSegment(10, 25, observation(day=10))
        with pytest.raises(ValueError):
            segment.at(25)
