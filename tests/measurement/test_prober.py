"""Tests for the fast prober (segment and daily observation paths)."""

import pytest

from repro.measurement.prober import FastProber


class TestObserve:
    def test_observation_matches_config(self, tiny_world):
        prober = FastProber(tiny_world)
        name = next(iter(tiny_world.domains))
        timeline = tiny_world.domains[name]
        day = timeline.created
        observation = prober.observe(name, day)
        config = timeline.config_at(day)
        assert observation.domain == name
        assert observation.apex_addrs == tuple(sorted(config.apex_ips))
        assert observation.ns_names == tuple(sorted(config.ns_names))

    def test_unknown_domain_is_none(self, tiny_world):
        assert FastProber(tiny_world).observe("nope.example", 0) is None

    def test_dead_domain_is_none(self, tiny_world):
        prober = FastProber(tiny_world)
        dead = next(
            (t for t in tiny_world.domains.values() if t.deleted is not None),
            None,
        )
        if dead is None:
            pytest.skip("no deleted domain at this scale")
        assert prober.observe(dead.name, dead.deleted) is None

    def test_observe_day_sweeps(self, tiny_world):
        prober = FastProber(tiny_world)
        names = list(tiny_world.zone_names("com", 0))[:50]
        rows = prober.observe_day(names, 0)
        assert len(rows) == len(names)
        assert all(row.day == 0 for row in rows)


class TestSegments:
    def test_segments_expand_to_daily_observations(self, tiny_world):
        prober = FastProber(tiny_world)
        # A Wix domain has several config changes — good coverage.
        name = tiny_world.thirdparties["Wix"].domains[0]
        segments = prober.observe_segments(name)
        assert len(segments) > 2
        for segment in segments:
            daily = prober.observe(name, segment.start)
            expected = segment.at(segment.start)
            assert daily == expected

    def test_segments_are_contiguous(self, tiny_world):
        prober = FastProber(tiny_world)
        name = tiny_world.thirdparties["Wix"].domains[0]
        segments = prober.observe_segments(name)
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start

    def test_segments_cover_lifetime(self, tiny_world):
        prober = FastProber(tiny_world)
        name = next(iter(tiny_world.domains))
        timeline = tiny_world.domains[name]
        segments = prober.observe_segments(name)
        first, last = timeline.lifespan(tiny_world.horizon)
        assert segments[0].start == first
        assert segments[-1].end == last

    def test_unknown_domain_has_no_segments(self, tiny_world):
        assert FastProber(tiny_world).observe_segments("nope.example") == []
