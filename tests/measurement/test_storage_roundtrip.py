"""Full-fidelity round-trips through the columnar store.

Complements ``test_storage.py``: those tests cover the codec and the
store bookkeeping; these assert that *every* observation field — the
IPv6 columns and empty CNAME chains included — survives
encode → persist → load → decode unchanged.
"""

from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore, _decode_column, _encode_column


def full_observation(index, day=0):
    """An observation exercising every column, IPv6 included."""
    return DomainObservation(
        day=day,
        domain=f"d{index}.com",
        tld="com",
        ns_names=(f"ns1.host{index % 3}.net", f"ns2.host{index % 3}.net"),
        apex_addrs=(f"198.51.100.{index % 250 + 1}",),
        www_cnames=(f"d{index}.com.cdn.example.net",),
        www_addrs=(f"203.0.113.{index % 250 + 1}",),
        apex_addrs6=(f"2001:db8::{index + 1:x}",),
        www_addrs6=(f"2001:db8:1::{index + 1:x}", f"2001:db8:2::{index + 1:x}"),
        asns=frozenset({64500, 64500 + index % 5}),
    )


def bare_observation(index, day=0):
    """An observation with empty optional columns (no www, no v6)."""
    return DomainObservation(
        day=day,
        domain=f"bare{index}.org",
        tld="org",
        ns_names=(f"ns.bare{index}.org",),
        apex_addrs=(f"192.0.2.{index % 250 + 1}",),
    )


class TestCodecRoundtrip:
    def test_ipv6_strings_roundtrip(self):
        values = [f"2001:db8::{i:x}" for i in range(50)]
        assert _decode_column(_encode_column(values)) == values

    def test_empty_lists_roundtrip(self):
        values = [[], ["one"], [], [], ["a", "b"], []]
        assert _decode_column(_encode_column(values)) == values

    def test_all_empty_column_roundtrips(self):
        values = [[] for _ in range(20)]
        assert _decode_column(_encode_column(values)) == values

    def test_non_ascii_strings_roundtrip(self):
        # IDNs land in zone files both as punycode and (in sloppy feeds)
        # as raw unicode; the codec must not mangle either. The JSON
        # head escapes non-ASCII (ensure_ascii), so the zlib payload is
        # pure ASCII but the decoded values carry the original text.
        values = [
            "xn--mnchen-3ya.de",
            "münchen.de",
            "例え.jp",
            "кириллица.рф",
            "emoji-\U0001f310.example",
            "mixed-ß-ascii.com",
        ]
        blob = _encode_column(values)
        assert _decode_column(blob) == values

    def test_non_ascii_list_values_roundtrip(self):
        values = [["ns1.münchen.de", "ns2.例え.jp"], [], ["ascii.net"]]
        assert _decode_column(_encode_column(values)) == values

    def test_column_larger_than_64kib_roundtrips(self):
        # A full .com day is tens of thousands of rows; the encoded JSON
        # head far exceeds zlib's 32 KiB window and any 16-bit length
        # assumption. Use distinct values so dictionary encoding cannot
        # shrink the head below the threshold.
        values = [f"domain-{i:07d}.example-{i % 97}.com" for i in range(20000)]
        head = sum(len(v) for v in values)
        assert head > 64 * 1024
        assert _decode_column(_encode_column(values)) == values

    def test_high_codepoints_and_controls_roundtrip(self):
        values = [
            "\x01weird",
            "tab\tseparated",
            "nul\x00nul",
            "\uffff",
            "\U0010ffff",
        ]
        assert _decode_column(_encode_column(values)) == values

    def test_run_boundaries_roundtrip_exactly(self):
        # Runs of repeated values interleaved with singletons: the RLE
        # must restore exact multiplicities and positions.
        values = (
            ["a"] * 1000 + ["b"] + ["a"] * 3 + ["c"] * 500 + ["b"] * 2
        )
        assert _decode_column(_encode_column(values)) == values


class TestStoreRoundtrip:
    def test_in_memory_rows_keep_every_field(self):
        store = ColumnStore()
        rows = [full_observation(i) for i in range(10)]
        store.append("com", 0, rows)
        assert list(store.rows("com", 0)) == rows

    def test_empty_cname_rows_keep_every_field(self):
        store = ColumnStore()
        rows = [bare_observation(i) for i in range(10)]
        store.append("org", 0, rows)
        got = list(store.rows("org", 0))
        assert got == rows
        assert all(row.www_cnames == () for row in got)
        assert all(row.apex_addrs6 == () for row in got)

    def test_persisted_partitions_keep_every_field(self, tmp_path):
        store = ColumnStore()
        full = [full_observation(i) for i in range(12)]
        bare = [bare_observation(i, day=3) for i in range(7)]
        store.append("com", 0, full)
        store.append("org", 3, bare)
        store.save(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert list(loaded.rows("com", 0)) == full
        assert list(loaded.rows("org", 3)) == bare

    def test_persisted_decode_matches_original_columns(self, tmp_path):
        store = ColumnStore()
        rows = [full_observation(i) for i in range(6)]
        store.append("com", 0, rows)
        store.save(str(tmp_path))
        decoded = ColumnStore.load(str(tmp_path)).decode_partition("com", 0)
        assert decoded["apex_addrs6"] == [
            list(row.apex_addrs6) for row in rows
        ]
        assert decoded["www_addrs6"] == [
            list(row.www_addrs6) for row in rows
        ]
        assert decoded["asns"] == [sorted(row.asns) for row in rows]

    def test_mixed_partition_roundtrips(self, tmp_path):
        """Rows with and without optional fields share one partition."""
        store = ColumnStore()
        rows = [full_observation(0, day=5), bare_observation(1, day=5)]
        store.append("com", 5, rows)
        store.save(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert list(loaded.rows("com", 5)) == rows
