"""Tests for zone listings (stage I)."""

import pytest

from repro.measurement.zonefeed import ZoneFeed, ZoneListing


class TestListing:
    def test_listing_contents(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        listing = feed.listing("com", 0)
        assert listing.tld == "com"
        assert len(listing) == len(list(tiny_world.zone_names("com", 0)))

    def test_outside_window_rejected(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        with pytest.raises(ValueError):
            feed.listing("nl", 0)  # .nl starts at day 366

    def test_nl_window_accepted(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        assert len(feed.listing("nl", 366)) > 0

    def test_download_counter(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        feed.listing("com", 0)
        feed.listing("net", 0)
        assert feed.downloads == 2

    def test_alexa_listing(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        listing = feed.alexa_listing(400)
        assert listing.tld == "alexa"
        assert set(listing.names) <= set(tiny_world.alexa_names)

    def test_sources(self, tiny_world):
        feed = ZoneFeed(tiny_world)
        assert feed.sources() == ["com", "net", "nl", "org", "alexa"]


class TestTextFormat:
    def test_roundtrip(self):
        listing = ZoneListing("com", 3, ("b.com", "a.com"))
        parsed = ZoneListing.from_text(listing.to_text())
        assert parsed.tld == "com"
        assert parsed.day == 3
        assert set(parsed.names) == {"a.com", "b.com"}

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            ZoneListing.from_text("a.com\nb.com\n")
