"""Tests for the cluster manager and sharding (stage II)."""

import pytest

from repro.measurement.scheduler import ClusterManager, shard


class TestShard:
    def test_balanced(self):
        shards = shard(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sum(shards, []) == list(range(10))

    def test_more_shards_than_items(self):
        shards = shard([1, 2], 5)
        assert sum(len(s) for s in shards) == 2

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            shard([1], 0)


class TestClusterManager:
    def test_measure_day_stores_rows(self, tiny_world):
        manager = ClusterManager(tiny_world, shard_count=4)
        rows = manager.measure_day("org", 0)
        assert rows
        assert manager.store.row_count("org", 0) == len(rows)
        run = manager.runs[-1]
        assert run.source == "org"
        assert run.shards == 4
        assert run.observations == len(rows)

    def test_rows_are_enriched(self, tiny_world):
        manager = ClusterManager(tiny_world, shard_count=2)
        rows = manager.measure_day("org", 0)
        assert any(row.asns for row in rows)

    def test_enrichment_can_be_disabled(self, tiny_world):
        manager = ClusterManager(tiny_world, enrich=False)
        rows = manager.measure_day("org", 0)
        assert all(row.asns == frozenset() for row in rows)

    def test_measure_range(self, tiny_world):
        manager = ClusterManager(tiny_world)
        days = list(manager.measure_range("org", 0, 3))
        assert len(days) == 3
        assert [(r.source, r.day) for r in manager.runs] == [
            ("org", 0), ("org", 1), ("org", 2),
        ]

    def test_alexa_source(self, tiny_world):
        manager = ClusterManager(tiny_world)
        rows = manager.measure_day("alexa", 400)
        assert {row.domain for row in rows} <= set(tiny_world.alexa_names)
