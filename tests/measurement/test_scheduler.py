"""Tests for the cluster manager, sharding and partition feed (stage II)."""

import pytest

from repro.measurement.scheduler import (
    ALL_SOURCES,
    ClusterManager,
    PartitionFeed,
    shard,
)
from repro.measurement.storage import ColumnStore
from repro.world.timeline import CCTLD_START_DAY


class TestShard:
    def test_balanced(self):
        shards = shard(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sum(shards, []) == list(range(10))

    def test_more_shards_than_items(self):
        shards = shard([1, 2], 5)
        assert sum(len(s) for s in shards) == 2

    def test_more_shards_than_items_pads_with_empties(self):
        shards = shard([1, 2], 5)
        assert len(shards) == 5
        assert shards == [[1], [2], [], [], []]

    def test_empty_input_yields_empty_shards(self):
        shards = shard([], 4)
        assert shards == [[], [], [], []]

    def test_exact_divisor_is_perfectly_balanced(self):
        shards = shard(list(range(12)), 4)
        assert [len(s) for s in shards] == [3, 3, 3, 3]
        assert sum(shards, []) == list(range(12))

    def test_single_shard_keeps_everything(self):
        names = ["a", "b", "c"]
        assert shard(names, 1) == [names]

    def test_never_loses_or_reorders_names(self):
        for count in range(1, 8):
            names = [f"n{i}" for i in range(13)]
            shards = shard(names, count)
            assert len(shards) == count
            assert sum(shards, []) == names
            sizes = [len(s) for s in shards]
            assert max(sizes) - min(sizes) <= 1

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            shard([1], 0)


class TestClusterManager:
    def test_measure_day_stores_rows(self, tiny_world):
        manager = ClusterManager(tiny_world, shard_count=4)
        rows = manager.measure_day("org", 0)
        assert rows
        assert manager.store.row_count("org", 0) == len(rows)
        run = manager.runs[-1]
        assert run.source == "org"
        assert run.shards == 4
        assert run.observations == len(rows)

    def test_rows_are_enriched(self, tiny_world):
        manager = ClusterManager(tiny_world, shard_count=2)
        rows = manager.measure_day("org", 0)
        assert any(row.asns for row in rows)

    def test_enrichment_can_be_disabled(self, tiny_world):
        manager = ClusterManager(tiny_world, enrich=False)
        rows = manager.measure_day("org", 0)
        assert all(row.asns == frozenset() for row in rows)

    def test_measure_range(self, tiny_world):
        manager = ClusterManager(tiny_world)
        days = list(manager.measure_range("org", 0, 3))
        assert len(days) == 3
        assert [(r.source, r.day) for r in manager.runs] == [
            ("org", 0), ("org", 1), ("org", 2),
        ]

    def test_alexa_source(self, tiny_world):
        manager = ClusterManager(tiny_world)
        rows = manager.measure_day("alexa", 400)
        assert {row.domain for row in rows} <= set(tiny_world.alexa_names)


class TestPartitionFeed:
    def test_rejects_unknown_source(self, tiny_world):
        with pytest.raises(ValueError):
            PartitionFeed(tiny_world, sources=("com", "bogus"))

    def test_defaults_to_all_sources(self, tiny_world):
        assert PartitionFeed(tiny_world).sources == ALL_SOURCES

    def test_windows_cover_configured_sources(self, tiny_world):
        feed = PartitionFeed(tiny_world, sources=("com", "nl", "alexa"))
        windows = feed.windows()
        assert set(windows) == {"com", "nl", "alexa"}
        assert windows["com"][0] == 0
        assert windows["alexa"] == (CCTLD_START_DAY, tiny_world.horizon)
        assert windows["nl"][0] == CCTLD_START_DAY

    def test_partition_measures_enriched_rows(self, tiny_world):
        feed = PartitionFeed(tiny_world, sources=("org",))
        part = feed.partition("org", 0)
        assert part.source == "org"
        assert part.day == 0
        assert len(part) == len(part.observations) > 0
        assert part.zone_size >= len(part.observations)
        assert any(row.asns for row in part.observations)

    def test_partition_matches_cluster_manager(self, tiny_world):
        feed = PartitionFeed(tiny_world, sources=("org",))
        manager = ClusterManager(tiny_world)
        assert (
            feed.partition("org", 0).observations
            == manager.measure_day("org", 0)
        )

    def test_partition_lands_in_store(self, tiny_world):
        store = ColumnStore()
        feed = PartitionFeed(tiny_world, sources=("org",), store=store)
        part = feed.partition("org", 2)
        assert store.row_count("org", 2) == len(part.observations)

    def test_days_are_day_major_within_windows(self, tiny_world):
        feed = PartitionFeed(tiny_world, sources=("com", "nl"))
        start = CCTLD_START_DAY
        order = [
            (p.source, p.day)
            for p in feed.days(start=start - 1, end=start + 1)
        ]
        assert order == [
            ("com", start - 1),       # .nl window not yet open
            ("com", start), ("nl", start),
        ]
