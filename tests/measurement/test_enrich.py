"""Tests for ASN enrichment (daily and segment paths)."""

import pytest

from repro.measurement.enrich import AsnEnricher
from repro.measurement.prober import FastProber


@pytest.fixture(scope="module")
def enricher(tiny_world):
    return AsnEnricher(tiny_world)


class TestDailyEnrichment:
    def test_hoster_domain_gets_hoster_asn(self, tiny_world, enricher):
        prober = FastProber(tiny_world)
        # Find a plain churn-pool domain (unprotected, day 0).
        party_names = set()
        for party in tiny_world.thirdparties.values():
            party_names.update(party.domains)
        name = next(
            name
            for name, timeline in tiny_world.domains.items()
            if timeline.created == 0 and name not in party_names
            and timeline.tld == "com"
        )
        observation = enricher.enrich(prober.observe(name, 0))
        hoster_asns = {h.primary_asn() for h in tiny_world.hosters}
        provider_asns = set()
        for provider in tiny_world.providers.values():
            provider_asns.update(provider.asns)
        assert observation.asns
        assert observation.asns <= (hoster_asns | provider_asns)

    def test_cloudflare_customer_gets_13335(self, tiny_world, enricher):
        prober = FastProber(tiny_world)
        target = None
        for name, timeline in tiny_world.domains.items():
            config = timeline.config_at(timeline.created)
            if any(
                ns.endswith("cloudflare.com") for ns in config.ns_names
            ):
                target = name
                break
        assert target is not None, "no CloudFlare delegation in tiny world"
        observation = enricher.enrich(
            prober.observe(target, tiny_world.domains[target].created)
        )
        assert 13335 in observation.asns

    def test_dark_observation_has_no_asns(self, tiny_world, enricher):
        prober = FastProber(tiny_world)
        sedo = tiny_world.thirdparties["Sedo"].domains[0]
        observation = enricher.enrich(prober.observe(sedo, 266))
        assert observation.asns == frozenset()

    def test_enrich_day_batch(self, tiny_world, enricher):
        prober = FastProber(tiny_world)
        names = list(tiny_world.zone_names("com", 0))[:20]
        rows = enricher.enrich_day(prober.observe_day(names, 0))
        assert all(row.asns for row in rows if not row.is_dark())


class TestAddressTimelines:
    def test_static_address_single_entry(self, tiny_world, enricher):
        hoster = tiny_world.hosters[0]
        address = hoster.host_address("probe.example")
        timeline = enricher.address_timeline(address)
        assert len(timeline) == 1
        assert timeline[0] == (0, frozenset({hoster.primary_asn()}))

    def test_dynamic_address_multiple_entries(self, tiny_world, enricher):
        enom = tiny_world.thirdparties["ENOM"]
        address = enom.base_routing[0][0].split("/")[0]
        timeline = enricher.address_timeline(address)
        assert len(timeline) > 2
        origins = {frozenset(o) for _, o in timeline}
        assert frozenset({21740}) in origins
        assert frozenset({26415}) in origins

    def test_timeline_is_cached(self, tiny_world, enricher):
        address = tiny_world.hosters[0].host_address("probe.example")
        first = enricher.address_timeline(address)
        assert enricher.address_timeline(address) is first


class TestSegmentEnrichment:
    def test_static_segments_pass_through_with_asns(self, tiny_world,
                                                    enricher):
        prober = FastProber(tiny_world)
        party_names = set()
        for party in tiny_world.thirdparties.values():
            party_names.update(party.domains)
        name = next(
            name
            for name, timeline in tiny_world.domains.items()
            if name not in party_names and timeline.tld == "com"
        )
        segments = enricher.enrich_segments(prober.observe_segments(name))
        assert all(s.observation.asns for s in segments)

    def test_bgp_diversion_splits_segments(self, tiny_world, enricher):
        """An ENOM domain has one DNS config but several ASN segments."""
        prober = FastProber(tiny_world)
        name = tiny_world.thirdparties["ENOM"].domains[0]
        raw = prober.observe_segments(name)
        assert len(raw) == 1  # DNS never changes: BGP-only diversion
        enriched = enricher.enrich_segments(raw)
        assert len(enriched) > 2
        origins_seen = {s.observation.asns for s in enriched}
        assert frozenset({21740}) in origins_seen
        assert frozenset({26415}) in origins_seen

    def test_segment_enrichment_matches_daily(self, tiny_world, enricher):
        """Property: segment ASNs equal daily enrichment on sampled days."""
        prober = FastProber(tiny_world)
        for party in ("ENOM", "Wix", "Namecheap"):
            name = tiny_world.thirdparties[party].domains[0]
            enriched = enricher.enrich_segments(prober.observe_segments(name))
            for segment in enriched[:8]:
                day = segment.start
                daily = enricher.enrich(prober.observe(name, day))
                assert daily.asns == segment.observation.asns, (
                    f"{party} day {day}"
                )

    def test_segments_remain_contiguous(self, tiny_world, enricher):
        prober = FastProber(tiny_world)
        name = tiny_world.thirdparties["ENOM"].domains[0]
        enriched = enricher.enrich_segments(prober.observe_segments(name))
        for left, right in zip(enriched, enriched[1:]):
            assert left.end == right.start


class TestHotPathCaches:
    def test_each_address_parses_once(self, tiny_world):
        fresh = AsnEnricher(tiny_world)
        address = tiny_world.hosters[0].host_address("probe.example")
        first = fresh._parse(address)
        assert fresh._parse(address) is first
        assert str(first) == address

    def test_string_and_parsed_lookups_agree(self, tiny_world, enricher):
        import ipaddress

        pfx2as = tiny_world.pfx2as_at(0)
        addresses = [
            hoster.host_address("probe.example")
            for hoster in tiny_world.hosters[:5]
        ]
        for address in addresses:
            assert pfx2as.lookup(address) == pfx2as.lookup(
                ipaddress.ip_address(address)
            )

    def test_interning_shares_enriched_observations(self, tiny_world):
        fresh = AsnEnricher(tiny_world)
        prober = FastProber(tiny_world)
        name = tiny_world.thirdparties["ENOM"].domains[0]
        raw = prober.observe_segments(name)
        first = fresh.enrich_segments(raw)
        hits_after_first = fresh.intern_hits
        second = fresh.enrich_segments(raw)
        assert second == first
        # The rerun re-derives every (observation, origins) pair, so each
        # segment is an intern hit the second time around.
        assert fresh.intern_hits >= hits_after_first + len(second)
        for left, right in zip(first, second):
            assert left.observation is right.observation

    def test_diversion_reuses_interned_observation(self, tiny_world):
        """A BGP flap returning to the original origins shares one object."""
        fresh = AsnEnricher(tiny_world)
        prober = FastProber(tiny_world)
        name = tiny_world.thirdparties["ENOM"].domains[0]
        enriched = fresh.enrich_segments(prober.observe_segments(name))
        by_key = {}
        for segment in enriched:
            key = segment.observation.asns
            if key in by_key:
                assert segment.observation is by_key[key]
            else:
                by_key[key] = segment.observation
        assert len(by_key) < len(enriched)
