"""Tests for coverage accounting and incident detection."""


from repro.measurement.prober import FastProber
from repro.measurement.quality import (
    IncidentDetector,
    coverage_of,
    ns_sld_census,
)
from repro.measurement.snapshot import DomainObservation


def observation(domain, ns=("ns1.hostco-dns.com",), apex=("10.0.0.1",)):
    return DomainObservation(
        day=0, domain=domain, tld="com",
        ns_names=tuple(ns), apex_addrs=tuple(apex),
    )


def dark(domain):
    return DomainObservation(
        day=0, domain=domain, tld="com", ns_names=(), apex_addrs=(),
    )


class TestCoverage:
    def test_full_coverage(self):
        rows = [observation(f"d{i}.com") for i in range(10)]
        report = coverage_of("com", 0, 10, rows)
        assert report.coverage == 1.0
        assert report.dark == 0

    def test_dark_rows_reduce_coverage(self):
        rows = [observation("a.com"), dark("b.com")]
        report = coverage_of("com", 0, 2, rows)
        assert report.dark == 1
        assert report.coverage == 0.5

    def test_empty_zone(self):
        assert coverage_of("com", 0, 0, []).coverage == 1.0


class TestCensus:
    def test_counts_per_sld(self):
        rows = [
            observation("a.com", ns=("ns1.sedoparking.com",)),
            observation("b.com", ns=("ns2.sedoparking.com",)),
            observation("c.com"),
        ]
        census = ns_sld_census(rows)
        assert census["sedoparking.com"] == 2
        assert census["hostco-dns.com"] == 1


class TestIncidentDetector:
    def test_collapse_flagged(self):
        detector = IncidentDetector(drop_fraction=0.5, min_population=3)
        day0 = [observation(f"d{i}.com", ns=("ns1.park.com",))
                for i in range(10)]
        assert detector.observe_day(0, day0) == []
        day1 = [observation("d0.com", ns=("ns1.park.com",))]
        incidents = detector.observe_day(1, day1)
        assert incidents == [("park.com", 10, 1)]

    def test_small_populations_ignored(self):
        detector = IncidentDetector(min_population=5)
        detector.observe_day(0, [observation("a.com")])
        assert detector.observe_day(1, []) == []

    def test_census_series(self):
        detector = IncidentDetector()
        detector.observe_day(0, [observation("a.com")])
        detector.observe_day(1, [])
        assert detector.census_series("hostco-dns.com") == [(0, 1), (1, 0)]

    def test_sedo_incident_detected_in_world(self, tiny_world):
        """Replays days 265–267 and recovers the paper's inference."""
        prober = FastProber(tiny_world)
        names = list(tiny_world.zone_names("com", 265))
        detector = IncidentDetector(drop_fraction=0.5, min_population=3)
        incident_days = {}
        for day in (265, 266, 267):
            rows = prober.observe_day(names, day)
            for sld, before, after in detector.observe_day(day, rows):
                incident_days.setdefault(day, []).append(sld)
        assert "sedoparking.com" in incident_days.get(266, [])
        assert 267 not in incident_days  # back to normal the next day
