"""Tests for the columnar store and its size accounting."""


from repro.measurement.snapshot import (
    DomainObservation,
    MEASUREMENTS_PER_DOMAIN_DAY,
)
from repro.measurement.storage import ColumnStore, _decode_column, _encode_column


def observation(index, day=0):
    return DomainObservation(
        day=day,
        domain=f"d{index}.com",
        tld="com",
        ns_names=("ns1.hostco-dns.com", "ns2.hostco-dns.com"),
        apex_addrs=(f"10.0.{index % 4}.{index % 200 + 1}",),
        asns=frozenset({64500 + index % 3}),
    )


class TestColumnCodec:
    def test_roundtrip_strings(self):
        values = ["a", "b", "b", "b", "a"]
        assert _decode_column(_encode_column(values)) == values

    def test_roundtrip_lists(self):
        values = [["x", "y"], ["x", "y"], []]
        assert _decode_column(_encode_column(values)) == values

    def test_repetition_compresses_well(self):
        repeated = ["same-value"] * 10_000
        varied = [f"value-{i}" for i in range(10_000)]
        assert len(_encode_column(repeated)) < len(_encode_column(varied)) / 50


class TestStore:
    def test_append_and_read_back(self):
        store = ColumnStore()
        rows = [observation(i) for i in range(10)]
        store.append("com", 0, rows)
        got = list(store.rows("com", 0))
        assert got == rows

    def test_missing_partition_is_empty(self):
        assert list(ColumnStore().rows("com", 9)) == []
        assert ColumnStore().row_count("com", 9) == 0

    def test_partitions_sorted(self):
        store = ColumnStore()
        store.append("net", 1, [observation(0, day=1)])
        store.append("com", 0, [observation(1)])
        assert store.partitions() == [("com", 0), ("net", 1)]

    def test_append_accumulates(self):
        store = ColumnStore()
        store.append("com", 0, [observation(0)])
        store.append("com", 0, [observation(1)])
        assert store.row_count("com", 0) == 2

    def test_encoded_partition_roundtrip(self):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(20)])
        decoded = store.decode_partition("com", 0)
        assert decoded["domain"] == [f"d{i}.com" for i in range(20)]

    def test_partition_stats(self):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(5)])
        stats = store.partition_stats("com", 0)
        assert stats.rows == 5
        assert stats.data_points == 5 * MEASUREMENTS_PER_DOMAIN_DAY
        assert stats.encoded_bytes > 0

    def test_total_stats_filters_by_source(self):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(5)])
        store.append("net", 0, [observation(i) for i in range(3)])
        assert store.total_stats("com").rows == 5
        assert store.total_stats().rows == 8

    def test_save_and_load_roundtrip(self, tmp_path):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(8)])
        store.append("net", 3, [observation(i, day=3) for i in range(4)])
        written = store.save(str(tmp_path))
        assert any(path.endswith("manifest.json") for path in written)
        loaded = ColumnStore.load(str(tmp_path))
        assert loaded.partitions() == store.partitions()
        assert list(loaded.rows("com", 0)) == list(store.rows("com", 0))
        assert list(loaded.rows("net", 3)) == list(store.rows("net", 3))

    def test_saved_layout(self, tmp_path):
        import os

        store = ColumnStore()
        store.append("com", 7, [observation(0, day=7)])
        store.save(str(tmp_path))
        assert os.path.exists(tmp_path / "segments" / "g0-000000.rseg")

    def test_saved_legacy_layout(self, tmp_path):
        import os

        store = ColumnStore()
        store.append("com", 7, [observation(0, day=7)])
        store.save_legacy(str(tmp_path))
        assert os.path.exists(tmp_path / "com" / "7" / "domain.col")

    def test_legacy_store_loads_transparently(self, tmp_path):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(8)])
        store.save_legacy(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert list(loaded.rows("com", 0)) == list(store.rows("com", 0))

    def test_stats_report_exact_segment_file_size(self, tmp_path):
        import os

        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(16)])
        store.append("net", 2, [observation(i, day=2) for i in range(7)])
        written = store.save(str(tmp_path))
        sizes = {
            path: os.path.getsize(path)
            for path in written
            if path.endswith(".rseg")
        }
        keyed = dict(zip(store.partitions(), sorted(sizes)))
        for (source, day), path in keyed.items():
            stats = store.partition_stats(source, day)
            assert stats.encoded_bytes == sizes[path]
        assert store.total_stats().encoded_bytes == sum(sizes.values())

    def test_loaded_stats_match(self, tmp_path):
        store = ColumnStore()
        store.append("com", 0, [observation(i) for i in range(6)])
        store.save(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert (
            loaded.partition_stats("com", 0).data_points
            == store.partition_stats("com", 0).data_points
        )

    def test_encoding_cache_invalidated_on_append(self):
        store = ColumnStore()
        store.append("com", 0, [observation(0)])
        first = store.partition_stats("com", 0).encoded_bytes
        store.append("com", 0, [observation(1)])
        second = store.partition_stats("com", 0).encoded_bytes
        assert second != first
