"""Rate-limit strategies and the admission guard, on explicit ticks."""

from __future__ import annotations

import pytest

from repro.serve.guard import (
    BLOCKED,
    BURST,
    OK,
    RATE_LIMITED,
    THROTTLED,
    AdmissionGuard,
    Decision,
)
from repro.serve.ratelimit import (
    SlidingWindowLimiter,
    TokenBucketLimiter,
)


class TestSlidingWindow:
    def test_admits_up_to_limit_then_denies(self):
        limiter = SlidingWindowLimiter(limit=3, window=10)
        assert [limiter.allow("c", t) for t in range(5)] == [
            True, True, True, False, False,
        ]

    def test_window_slides_exactly(self):
        limiter = SlidingWindowLimiter(limit=1, window=10)
        assert limiter.allow("c", 0)
        assert not limiter.allow("c", 9)
        # The tick-0 admission leaves the trailing window at tick 10.
        assert limiter.allow("c", 10)

    def test_retry_after(self):
        limiter = SlidingWindowLimiter(limit=2, window=10)
        assert limiter.retry_after("new", 0) == 0
        limiter.allow("c", 0)
        limiter.allow("c", 4)
        assert not limiter.allow("c", 6)
        assert limiter.retry_after("c", 6) == 4

    def test_clients_are_independent(self):
        limiter = SlidingWindowLimiter(limit=1, window=100)
        assert limiter.allow("a", 0)
        assert limiter.allow("b", 0)
        assert not limiter.allow("a", 1)

    def test_forget_resets(self):
        limiter = SlidingWindowLimiter(limit=1, window=100)
        limiter.allow("c", 0)
        limiter.forget("c")
        assert limiter.allow("c", 1)

    @pytest.mark.parametrize("limit, window", [(0, 5), (5, 0)])
    def test_rejects_bad_parameters(self, limit, window):
        with pytest.raises(ValueError):
            SlidingWindowLimiter(limit=limit, window=window)


class TestTokenBucket:
    def test_initial_burst_is_capacity(self):
        limiter = TokenBucketLimiter(capacity=3, ticks_per_token=10)
        assert [limiter.allow("c", 0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_earns_one_token_per_interval(self):
        limiter = TokenBucketLimiter(capacity=1, ticks_per_token=10)
        assert limiter.allow("c", 0)
        assert not limiter.allow("c", 9)
        assert limiter.allow("c", 10)
        assert not limiter.allow("c", 11)

    def test_no_banking_beyond_capacity(self):
        limiter = TokenBucketLimiter(capacity=2, ticks_per_token=1)
        limiter.allow("c", 0)
        # A long idle stretch still caps the burst at capacity.
        admitted = sum(
            1 for _ in range(10) if limiter.allow("c", 1000)
        )
        assert admitted == 2

    def test_remainder_ticks_carry(self):
        limiter = TokenBucketLimiter(capacity=2, ticks_per_token=10)
        assert limiter.allow("c", 0)
        assert limiter.allow("c", 0)
        # Tick 15 earns the token minted at 10; the 5 leftover ticks
        # carry, so the next token lands at 20, not 25.
        assert limiter.allow("c", 15)
        assert not limiter.allow("c", 19)
        assert limiter.retry_after("c", 19) == 1
        assert limiter.allow("c", 20)

    def test_retry_after(self):
        limiter = TokenBucketLimiter(capacity=1, ticks_per_token=10)
        assert limiter.allow("c", 0)
        assert not limiter.allow("c", 3)
        assert limiter.retry_after("c", 3) == 7

    def test_forget_restores_full_bucket(self):
        limiter = TokenBucketLimiter(capacity=2, ticks_per_token=100)
        limiter.allow("c", 0)
        limiter.allow("c", 0)
        assert not limiter.allow("c", 1)
        limiter.forget("c")
        assert limiter.allow("c", 1)

    @pytest.mark.parametrize("capacity, tpt", [(0, 5), (5, 0)])
    def test_rejects_bad_parameters(self, capacity, tpt):
        with pytest.raises(ValueError):
            TokenBucketLimiter(capacity=capacity, ticks_per_token=tpt)


def wide_guard(**overrides):
    """A guard whose base strategy never denies (isolates one feature)."""
    defaults = dict(
        strategy=SlidingWindowLimiter(limit=10_000, window=1),
        burst_limit=5,
        burst_window=10,
        throttle_ticks=20,
        throttle_factor=2,
        block_after=3,
        block_ticks=100,
        escalation=2,
        max_block_ticks=1000,
        heal_after=4,
    )
    defaults.update(overrides)
    return AdmissionGuard(**defaults)


class TestAdmissionGuard:
    def test_compliant_client_always_ok(self):
        guard = wide_guard()
        for tick in range(0, 200, 10):
            decision = guard.admit("calm", tick)
            assert decision == Decision(True, OK)
        assert guard.stats() == {OK: 20}

    def test_burst_trips_and_throttles(self):
        guard = wide_guard()
        decisions = [guard.admit("noisy", t) for t in range(7)]
        assert [d.reason for d in decisions[:5]] == [OK] * 5
        assert decisions[5].reason == BURST
        # Now throttled: only every 2nd offered request passes.
        follow = [guard.admit("noisy", 100 + t * 20) for t in range(4)]
        assert follow[0].reason in (THROTTLED, OK)

    def test_throttle_admits_every_nth(self):
        guard = wide_guard(burst_limit=2, burst_window=5)
        for t in range(3):
            guard.admit("n", t)
        tripped = guard.admit("n", 3)
        assert tripped.reason == BURST
        # Within throttle_ticks, spaced outside the burst window: the
        # first offered request is swallowed, the second passes.
        reasons = [
            guard.admit("n", 10 + i * 6).reason for i in range(2)
        ]
        assert reasons == [THROTTLED, OK]

    def test_strategy_denial_reason_and_retry_after(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=50)
        )
        assert guard.admit("c", 0).reason == OK
        denied = guard.admit("c", 10)
        assert denied == Decision(False, RATE_LIMITED, retry_after=40)

    def test_blocks_after_repeated_violations(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=10_000)
        )
        assert guard.admit("c", 0).allowed
        reasons = [guard.admit("c", 20 * (i + 1)).reason for i in range(3)]
        assert reasons == [RATE_LIMITED, RATE_LIMITED, BLOCKED]
        blocked = guard.admit("c", 61)
        assert blocked.reason == BLOCKED
        assert blocked.retry_after > 0
        assert guard.is_blocked("c", 61)
        assert "c" in guard.blocked_clients(61)

    def test_block_expires_by_tick(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=10)
        )
        guard.admit("c", 0)
        for i in range(3):
            guard.admit("c", 1 + i)
        assert guard.is_blocked("c", 4)
        # After the block and outside the rate window: clean admit.
        later = 4 + 100 + 20
        assert not guard.is_blocked("c", later)
        assert guard.admit("c", later).allowed

    def test_block_duration_escalates_and_caps(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=5),
            block_after=1,
            block_ticks=100,
            escalation=2,
            max_block_ticks=150,
            heal_after=10_000,
        )
        tick = 0
        guard.admit("c", tick)
        first = guard.admit("c", tick + 1)
        assert first.reason == BLOCKED and first.retry_after == 100
        tick += 1 + 100 + 10
        guard.admit("c", tick)
        second = guard.admit("c", tick + 1)
        assert second.reason == BLOCKED
        assert second.retry_after == 150  # capped, not 200

    def test_healing_wipes_the_rap_sheet(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=5),
            block_after=1,
            block_ticks=100,
            escalation=2,
            max_block_ticks=10_000,
            heal_after=3,
        )
        guard.admit("c", 0)
        assert guard.admit("c", 1).reason == BLOCKED  # offence 1
        # Serve the time, then behave: spaced clean requests heal.
        tick = 200
        for i in range(3):
            assert guard.admit("c", tick + i * 10).allowed
        # The next block starts from the base duration again.
        tick += 100
        guard.admit("c", tick)
        relapse = guard.admit("c", tick + 1)
        assert relapse.reason == BLOCKED
        assert relapse.retry_after == 100

    def test_release_forgets_guard_and_strategy(self):
        strategy = SlidingWindowLimiter(limit=1, window=10_000)
        guard = wide_guard(strategy=strategy)
        guard.admit("c", 0)
        assert not guard.admit("c", 1).allowed
        guard.release("c")
        assert guard.admit("c", 2).allowed

    def test_stats_counts_by_reason(self):
        guard = wide_guard(
            strategy=SlidingWindowLimiter(limit=1, window=100)
        )
        guard.admit("c", 0)
        guard.admit("c", 1)
        stats = guard.stats()
        assert stats[OK] == 1
        assert stats[RATE_LIMITED] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"burst_limit": 0},
            {"burst_window": 0},
            {"throttle_factor": 0},
            {"block_after": 0},
            {"block_ticks": 0},
            {"escalation": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            wide_guard(**kwargs)
