"""ServeIndex reads and SnapshotSwapper publication semantics."""

from __future__ import annotations

import json

import pytest

from repro.core.classification import UsageClass
from repro.serve.index import ServeError, SnapshotSwapper
from repro.serve.protocol import canonical_json
from repro.stream.engine import StreamEngine
from repro.stream.query import QueryAPI


class TestServeIndexReads:
    def test_day_tracks_engine(self, served_stack):
        engine, swapper = served_stack
        index = swapper.current_index()
        for name in index.scope_names:
            latest = engine.latest_day(name)
            if latest is not None and latest < 0:
                latest = None
            assert index.scope(name).day == latest

    def test_unknown_scope_raises(self, served_stack):
        _, swapper = served_stack
        index = swapper.current_index()
        with pytest.raises(ServeError):
            index.scope("klingon")
        with pytest.raises(ServeError):
            index.lookup("example.com", scope="klingon")
        with pytest.raises(ServeError):
            index.aggregate("klingon")

    def test_lookup_protected_domain(self, served_stack, protected_domain):
        _, swapper = served_stack
        domain, provider = protected_domain
        index = swapper.current_index()
        result = index.lookup(domain)
        assert result["domain"] == domain
        assert result["scope"] == "gtld"
        assert result["day"] == index.scope("gtld").day
        assert provider in result["usage"]
        # Protected now iff some interval covers the index day.
        day = index.scope("gtld").day
        covering = [
            p
            for (d, p), runs in index.scope("gtld").intervals.items()
            if d == domain
            and any(r.start <= day < r.end for r in runs)
        ]
        assert result["protected"] == bool(covering)
        assert result["providers"] == sorted(covering)

    def test_lookup_unknown_domain(self, served_stack):
        _, swapper = served_stack
        result = swapper.current_index().lookup("never-seen.example")
        assert result["protected"] is False
        assert result["providers"] == []
        assert result["usage"] == {}

    def test_usage_labels_are_classifier_values(self, served_stack):
        _, swapper = served_stack
        labels = {cls.value for cls in UsageClass}
        scope_index = swapper.current_index().scope("gtld")
        assert scope_index.usage, "expected some protected domains"
        assert set(scope_index.usage.values()) <= labels

    def test_aggregate_rejects_bad_days(self, served_stack):
        _, swapper = served_stack
        index = swapper.current_index()
        with pytest.raises(ServeError):
            index.aggregate("gtld", day=index.horizon)
        with pytest.raises(ServeError):
            index.aggregate("gtld", day=-1)

    def test_adoption_outside_horizon_raises(self, served_stack):
        _, swapper = served_stack
        index = swapper.current_index()
        with pytest.raises(ServeError):
            index.adoption("CloudFlare", day=index.horizon)

    def test_aggregate_matches_live_snapshot(self, served_stack):
        _, swapper = served_stack
        index = swapper.current_index()
        for name in index.scope_names:
            aggregate = index.aggregate(name)
            snapshot = index.live_snapshot(name).to_dict()
            assert aggregate["day"] == snapshot["day"]
            assert aggregate["any_use"] == snapshot["any_use"]
            assert aggregate["providers"] == snapshot["providers"]
            assert aggregate["domains_seen"] == snapshot["domains_seen"]

    def test_snapshot_payload_is_canonical_json(self, served_stack):
        _, swapper = served_stack
        index = swapper.current_index()
        payload = index.snapshot_payload()
        text = canonical_json(payload)
        assert json.loads(text) == json.loads(
            canonical_json(json.loads(text))
        )
        assert payload["version"] == index.version
        assert sorted(payload["scopes"]) == index.scope_names


class TestQueryApiRouting:
    """Satellite: QueryAPI reads route through an attached index."""

    def test_snapshots_identical(self, served_stack):
        engine, swapper = served_stack
        plain = QueryAPI(engine)
        routed = QueryAPI(engine, index_source=swapper.current_index)
        for name in swapper.current_index().scope_names:
            assert routed.snapshot(name) == plain.snapshot(name)
            assert (
                routed.snapshot(name).to_dict()
                == plain.snapshot(name).to_dict()
            )

    def test_domain_history_identical(
        self, served_stack, protected_domain
    ):
        engine, swapper = served_stack
        domain, _ = protected_domain
        plain = QueryAPI(engine)
        routed = QueryAPI(engine, index_source=swapper.current_index)
        assert routed.domain_history(domain) == plain.domain_history(
            domain
        )
        assert routed.domain_history(
            "never-seen.example"
        ) == plain.domain_history("never-seen.example")

    def test_adoption_identical(self, served_stack):
        engine, swapper = served_stack
        index = swapper.current_index()
        plain = QueryAPI(engine)
        routed = QueryAPI(engine, index_source=swapper.current_index)
        day = index.scope("gtld").day
        for provider in index.scope("gtld").provider_names:
            assert routed.adoption(provider) == plain.adoption(provider)
            assert routed.adoption(provider, day=day // 2) == (
                plain.adoption(provider, day=day // 2)
            )

    def test_total_days_sums_scope_intervals(
        self, served_stack, protected_domain
    ):
        engine, _ = served_stack
        domain, _ = protected_domain
        history = QueryAPI(engine).domain_history(domain)
        expected = sum(
            interval.days
            for by_provider in (history.intervals.get("gtld", {}),)
            for runs in by_provider.values()
            for interval in runs
        )
        assert history.total_days() == expected
        assert history.total_days("unseen-scope") == 0


class TestSnapshotSwapper:
    def test_no_rebuild_when_idle(self, served_stack):
        _, swapper = served_stack
        before = swapper.rebuilds
        assert swapper.rebuild_if_advanced() is False
        assert swapper.rebuilds == before

    def test_manual_rebuild_bumps_version_only(self, served_stack):
        _, swapper = served_stack
        old = swapper.current_index()
        new = swapper.rebuild()
        assert new.version == old.version + 1
        for name in old.scope_names:
            assert new.scope(name).day == old.scope(name).day

    def test_old_index_survives_swap_unchanged(self, served_stack):
        _, swapper = served_stack
        old = swapper.current_index()
        old_day = old.scope("gtld").day
        old_version = old.version
        swapper.rebuild()
        assert old.scope("gtld").day == old_day
        assert old.version == old_version
        assert swapper.current_index() is not old

    def test_one_swap_per_completed_day(self, serve_world, replay_feed):
        """Per-partition: a swap happens iff some scope's day advanced,
        and the published index always matches the engine afterwards."""
        engine = StreamEngine(
            serve_world.horizon, windows=replay_feed.windows()
        )
        swapper = SnapshotSwapper(engine)
        swapper.attach()

        def days():
            return {
                name: engine.latest_day(name)
                for name in engine.scope_names
            }

        start = min(w[0] for w in replay_feed.windows().values())
        for partition in replay_feed.days(start=start, end=start + 5):
            before, rebuilds = days(), swapper.rebuilds
            engine.ingest(partition)
            advanced = days() != before
            assert swapper.rebuilds - rebuilds == (1 if advanced else 0)
            index = swapper.current_index()
            for name, latest in days().items():
                if latest is not None and latest < 0:
                    latest = None
                assert index.scope(name).day == latest

    def test_boundary_scope_isolation(self, serve_world, replay_feed):
        """Another scope advancing must not re-copy a quiet scope."""
        engine = StreamEngine(
            serve_world.horizon, windows=replay_feed.windows()
        )
        swapper = SnapshotSwapper(engine)
        swapper.attach()
        start = min(w[0] for w in replay_feed.windows().values())
        engine.ingest_feed(replay_feed.days(start=start, end=start + 3))
        index = swapper.current_index()
        gtld_before = index.scope("gtld")
        # A manual rebuild of only the nl scope reuses gtld's object.
        rebuilt = swapper.rebuild(scopes=["nl"])
        assert rebuilt.scope("gtld") is gtld_before
