"""Shared fixtures for the serve subsystem tests.

Mirrors ``tests/stream/conftest.py``: one session world with nonzero
adoption in every scope, the batch study as ground truth, and a replay
feed. On top of those, a fully ingested engine with an attached
:class:`SnapshotSwapper` — the serving stack most tests read from.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.serve.index import SnapshotSwapper
from repro.sketch import SketchConfig
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

SERVE_SCALE = 150000
SERVE_SEED = 7


@pytest.fixture(scope="session")
def serve_world():
    """A small paper world (~1.2k domains), same as the stream suite."""
    return build_paper_world(
        ScenarioConfig(scale=SERVE_SCALE, seed=SERVE_SEED)
    )


@pytest.fixture(scope="session")
def batch_results(serve_world):
    """The batch study over the same world — the ground truth."""
    return AdoptionStudy(serve_world).run()


@pytest.fixture(scope="session")
def replay_feed(serve_world, batch_results):
    """Daily partitions replayed from the batch study's segments."""
    return SegmentReplayFeed(serve_world, batch_results.segments)


@pytest.fixture(scope="session")
def served_stack(serve_world, replay_feed):
    """(engine, swapper) after a full-horizon replay with live swaps."""
    engine = StreamEngine(
        serve_world.horizon,
        windows=replay_feed.windows(),
        sketches=SketchConfig(),
    )
    swapper = SnapshotSwapper(engine)
    swapper.attach()
    engine.ingest_feed(replay_feed.days())
    return engine, swapper


@pytest.fixture(scope="session")
def protected_domain(served_stack):
    """(domain, provider) with recorded gTLD protection."""
    _, swapper = served_stack
    scope_index = swapper.current_index().scope("gtld")
    for domain, provider in sorted(scope_index.intervals):
        return domain, provider
    raise AssertionError("world has no protected gTLD domain")
