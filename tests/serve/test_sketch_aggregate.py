"""The aggregate op's sketch plane routing (docs/SKETCHES.md).

``aggregate`` grew a ``source`` parameter: ``exact`` (the default — the
pre-sketch payload, byte for byte), ``sketch`` (answered from the
frozen plane view the index snapshot carries, O(1) in history), and
``auto`` (sketch when its ``εN`` guarantee meets the request's
``max_error``, exact otherwise, with the fallback reason in the
payload). These tests pin the contract between the three.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.index import ServeIndex, SnapshotSwapper
from repro.serve.protocol import Request
from repro.serve.server import ServeDispatcher
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed


@pytest.fixture(scope="module")
def dispatcher(served_stack):
    _, swapper = served_stack
    return ServeDispatcher(swapper.current_index)


def call(dispatcher, params):
    frame = Request(op="aggregate", params=params, id=1).to_frame()
    return json.loads(dispatcher.handle_line(frame, "client"))


class TestAggregateSources:
    def test_default_is_exact_and_unchanged(self, dispatcher):
        bare = call(dispatcher, {"scope": "gtld"})
        explicit = call(dispatcher, {"scope": "gtld", "source": "exact"})
        assert bare["ok"] and explicit["ok"]
        assert bare["result"] == explicit["result"]
        assert "error_bound" not in bare["result"]
        assert bare["result"]["providers"]

    def test_sketch_estimates_bounded_by_exact(self, dispatcher):
        exact = call(dispatcher, {"scope": "gtld"})["result"]
        sketch = call(
            dispatcher, {"scope": "gtld", "source": "sketch"}
        )["result"]
        assert sketch["source"] == "sketch"
        bound = sketch["error_bound"]
        assert bound > 0
        # CMS never undercounts; over at most eN per provider-day.
        for provider, count in exact["providers"].items():
            estimate = sketch["providers"][provider]
            assert count <= estimate <= count + bound
        # HLL cardinality lands within advertised relative error.
        rsd = sketch["distinct_relative_error"]
        assert (
            abs(sketch["domains_seen_estimate"] - exact["domains_seen"])
            <= max(2.0, 4 * rsd * exact["domains_seen"])
        )
        assert sketch["top_providers"]
        assert sketch["day"] == exact["day"]

    def test_sketch_single_provider_view(self, dispatcher):
        sketch = call(
            dispatcher, {"scope": "gtld", "source": "sketch"}
        )["result"]
        provider = sketch["top_providers"][0][0]
        focused = call(
            dispatcher,
            {
                "scope": "gtld",
                "source": "sketch",
                "provider": provider,
                "day": sketch["day"],
            },
        )["result"]
        assert focused["provider"] == provider
        assert focused["adoption_estimate"] >= 0
        assert focused["error_bound"] == sketch["error_bound"]

    def test_auto_uses_sketch_when_bound_is_loose_enough(
        self, dispatcher
    ):
        sketch = call(
            dispatcher, {"scope": "gtld", "source": "sketch"}
        )["result"]
        auto = call(
            dispatcher,
            {
                "scope": "gtld",
                "source": "auto",
                "max_error": sketch["error_bound"] + 1,
            },
        )["result"]
        assert auto["source"] == "sketch"
        assert auto["providers"] == sketch["providers"]

    def test_auto_falls_back_to_exact_when_bound_is_tighter(
        self, dispatcher
    ):
        exact = call(dispatcher, {"scope": "gtld"})["result"]
        auto = call(
            dispatcher,
            {"scope": "gtld", "source": "auto", "max_error": 0.001},
        )["result"]
        assert auto["source"] == "exact"
        assert "exceeds max_error" in auto["fallback"]
        assert auto["providers"] == exact["providers"]

    def test_auto_without_max_error_prefers_sketch(self, dispatcher):
        auto = call(dispatcher, {"scope": "gtld", "source": "auto"})[
            "result"
        ]
        assert auto["source"] == "sketch"

    def test_bad_params_are_rejected(self, dispatcher):
        for params in (
            {"scope": "gtld", "source": "nope"},
            {"scope": "gtld", "source": "auto", "max_error": -1},
            {"scope": "gtld", "source": "auto", "max_error": True},
            {"scope": "gtld", "source": "sketch", "k": "ten"},
        ):
            response = call(dispatcher, params)
            assert not response["ok"]
            assert response["error"]["code"] == "bad-params"

    def test_unknown_scope_still_errors(self, dispatcher):
        response = call(
            dispatcher, {"scope": "badscope", "source": "sketch"}
        )
        assert not response["ok"]


class TestPlanelessIndex:
    """Indexes built from engines without a plane must degrade loudly
    (sketch source errors, auto falls back with the reason)."""

    @pytest.fixture(scope="class")
    def planeless(self, serve_world, replay_feed):
        engine = StreamEngine(
            serve_world.horizon, windows=replay_feed.windows()
        )
        swapper = SnapshotSwapper(engine)
        swapper.attach()
        engine.ingest_feed(replay_feed.days())
        return ServeDispatcher(swapper.current_index)

    def test_sketch_source_reports_missing_plane(self, planeless):
        response = call(
            planeless, {"scope": "gtld", "source": "sketch"}
        )
        assert not response["ok"]
        assert "no sketch plane" in response["error"]["message"]

    def test_auto_falls_back_without_plane(self, planeless):
        response = call(planeless, {"scope": "gtld", "source": "auto"})
        assert response["ok"]
        result = response["result"]
        assert result["source"] == "exact"
        assert "sketch plane unavailable" in result["fallback"]

    def test_exact_unaffected(self, planeless, dispatcher):
        with_plane = call(dispatcher, {"scope": "gtld"})["result"]
        without = call(planeless, {"scope": "gtld"})["result"]
        assert with_plane == without


def test_built_index_carries_frozen_sketch_views(served_stack):
    engine, _ = served_stack
    index = ServeIndex.build(engine)
    for scope in ("gtld", "nl", "alexa"):
        guarantee = index.sketch_guarantee(scope)
        assert guarantee >= 0
    payload = index.aggregate_sketch("gtld")
    assert payload["source"] == "sketch"
    # The view is a copy: mutating the engine's plane later cannot
    # bleed into an already-published snapshot.
    scope = engine.sketches.scope("gtld")
    before = payload["rows_observed"]
    scope.observe("late-domain.example", 0, {}, ())
    assert index.aggregate_sketch("gtld")["rows_observed"] == before
