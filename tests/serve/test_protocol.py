"""Wire protocol: canonical encoding and request validation."""

from __future__ import annotations

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_REQUEST_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    canonical_json,
    decode_request,
    encode_frame,
    error_response,
    ok_response,
    param_opt_int,
    param_str,
)


class TestCanonicalEncoding:
    def test_sorted_compact(self):
        assert canonical_json({"b": 1, "a": {"d": 2, "c": 3}}) == (
            '{"a":{"c":3,"d":2},"b":1}'
        )

    def test_equal_payloads_encode_identically(self):
        left = {"z": [1, 2], "a": {"k": None}}
        right = {"a": {"k": None}, "z": [1, 2]}
        assert canonical_json(left) == canonical_json(right)

    def test_frame_is_one_newline_terminated_line(self):
        frame = encode_frame({"a": 1})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1


class TestDecodeRequest:
    def test_round_trip(self):
        request = Request(
            op="lookup", params={"domain": "x.com"}, id=42
        )
        decoded = decode_request(request.to_frame())
        assert decoded == Request(
            op="lookup", params={"domain": "x.com"}, id=42
        )

    def test_id_defaults_to_none(self):
        decoded = decode_request(
            encode_frame({"v": PROTOCOL_VERSION, "op": "health"})
        )
        assert decoded.id is None
        assert decoded.params == {}

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"x" * (MAX_REQUEST_BYTES + 1), protocol.TOO_LARGE),
            (b"{not json}\n", protocol.BAD_REQUEST),
            (b"[1,2,3]\n", protocol.BAD_REQUEST),
            (b"\xff\xfe\n", protocol.BAD_REQUEST),
            (
                encode_frame({"v": 99, "op": "health"}),
                protocol.BAD_REQUEST,
            ),
            (
                encode_frame({"op": "health"}),
                protocol.BAD_REQUEST,
            ),
            (
                encode_frame({"v": PROTOCOL_VERSION, "op": "nope"}),
                protocol.UNKNOWN_OP,
            ),
            (
                encode_frame({"v": PROTOCOL_VERSION, "op": 7}),
                protocol.UNKNOWN_OP,
            ),
            (
                encode_frame(
                    {"v": PROTOCOL_VERSION, "op": "health", "params": 3}
                ),
                protocol.BAD_PARAMS,
            ),
        ],
    )
    def test_malformed_requests(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == code


class TestResponses:
    def test_ok_response_shape(self):
        response = ok_response(5, {"b": 1, "a": 2})
        assert response == {
            "v": PROTOCOL_VERSION,
            "id": 5,
            "ok": True,
            "result": {"a": 2, "b": 1},
        }

    def test_error_response_retry_after_optional(self):
        bare = error_response(None, protocol.BAD_PARAMS, "nope")
        assert "retry_after" not in bare["error"]
        limited = error_response(
            1, protocol.RATE_LIMITED, "slow down", retry_after=7
        )
        assert limited["ok"] is False
        assert limited["error"]["retry_after"] == 7

    def test_responses_encode_canonically(self):
        frame = encode_frame(ok_response(1, {"x": 1}))
        assert json.loads(frame) == json.loads(
            canonical_json(json.loads(frame))
        )
        assert frame == encode_frame(json.loads(frame))


class TestParamHelpers:
    def test_param_str(self):
        assert param_str({"scope": "nl"}, "scope", "gtld") == "nl"
        assert param_str({}, "scope", "gtld") == "gtld"
        with pytest.raises(ProtocolError):
            param_str({}, "domain")
        with pytest.raises(ProtocolError):
            param_str({"domain": 3}, "domain")

    def test_param_opt_int(self):
        assert param_opt_int({}, "day") is None
        assert param_opt_int({"day": 4}, "day") == 4
        with pytest.raises(ProtocolError):
            param_opt_int({"day": "4"}, "day")
        with pytest.raises(ProtocolError):
            param_opt_int({"day": True}, "day")
