"""Property tests: limiter bounds hold under adversarial schedules.

Schedules are arbitrary non-decreasing tick sequences (bursts at one
tick included). The properties are the contracts the serve plane leans
on: no window placement ever sees more than ``limit`` admissions, token
spend never outruns the refill arithmetic, and a blocked client always
heals back to a clean admit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.guard import BLOCKED, AdmissionGuard
from repro.serve.ratelimit import (
    SlidingWindowLimiter,
    TokenBucketLimiter,
)

# Non-decreasing arrival ticks: cumulative sums of small gaps, so the
# schedules concentrate bursts (gap 0) and window-edge cases (gap ~=
# window) rather than sampling sparse uniform ticks.
schedules = st.lists(
    st.integers(min_value=0, max_value=12), min_size=1, max_size=120
).map(
    lambda gaps: [sum(gaps[: i + 1]) for i in range(len(gaps))]
)


@settings(max_examples=200, deadline=None)
@given(
    ticks=schedules,
    limit=st.integers(min_value=1, max_value=8),
    window=st.integers(min_value=1, max_value=30),
)
def test_sliding_window_bound_holds_everywhere(ticks, limit, window):
    limiter = SlidingWindowLimiter(limit=limit, window=window)
    admitted = [
        tick for tick in ticks if limiter.allow("adv", tick)
    ]
    # Every trailing window placement, not just the aligned ones.
    for tick in admitted:
        in_window = [t for t in admitted if tick - window < t <= tick]
        assert len(in_window) <= limit


@settings(max_examples=200, deadline=None)
@given(
    ticks=schedules,
    capacity=st.integers(min_value=1, max_value=8),
    ticks_per_token=st.integers(min_value=1, max_value=10),
)
def test_token_bucket_never_outruns_refill(
    ticks, capacity, ticks_per_token
):
    limiter = TokenBucketLimiter(
        capacity=capacity, ticks_per_token=ticks_per_token
    )
    admitted = sum(1 for tick in ticks if limiter.allow("adv", tick))
    elapsed = ticks[-1] - ticks[0]
    assert admitted <= capacity + elapsed // ticks_per_token


@settings(max_examples=200, deadline=None)
@given(
    ticks=schedules,
    limit=st.integers(min_value=1, max_value=4),
    window=st.integers(min_value=1, max_value=20),
)
def test_denied_retry_after_is_honest(ticks, limit, window):
    """Retrying exactly retry_after ticks later succeeds (quiet client)."""
    limiter = SlidingWindowLimiter(limit=limit, window=window)
    for tick in ticks:
        if not limiter.allow("adv", tick):
            wait = limiter.retry_after("adv", tick)
            assert wait > 0
            assert limiter.allow("adv", tick + wait)
            break


@settings(max_examples=150, deadline=None)
@given(ticks=schedules)
def test_guard_release_heals_to_clean_admit(ticks):
    """However abusive the history, release() restores a clean slate."""
    guard = AdmissionGuard(
        SlidingWindowLimiter(limit=2, window=8),
        burst_limit=3,
        burst_window=5,
        block_after=2,
        block_ticks=50,
    )
    for tick in ticks:
        guard.admit("adv", tick)
    guard.release("adv")
    assert guard.admit("adv", ticks[-1] + 1).allowed


@settings(max_examples=150, deadline=None)
@given(ticks=schedules)
def test_guard_block_expires_into_admission(ticks):
    """However abusive the history, blocks expire by tick: once every
    window, throttle and block horizon has passed, the client is
    admitted again without any manual intervention."""
    guard = AdmissionGuard(
        SlidingWindowLimiter(limit=2, window=8),
        burst_limit=3,
        burst_window=5,
        throttle_ticks=50,
        block_after=2,
        block_ticks=50,
        escalation=2,
        max_block_ticks=500,
    )
    saw_block = False
    for tick in ticks:
        decision = guard.admit("adv", tick)
        saw_block = saw_block or decision.reason == BLOCKED
    # Beyond every horizon the guard knows: max block (500), the
    # throttle run-out (50) and the strategy/burst windows (8).
    healed_at = ticks[-1] + 500 + 50 + 8 + 1
    if saw_block:
        assert not guard.is_blocked("adv", healed_at)
    assert guard.admit("adv", healed_at).allowed
