"""Served answers are byte-identical to batch/QueryAPI answers.

The proof the tentpole hangs on: a server answering over atomic
snapshot indexes **while ingest runs concurrently** produces, at three
checkpoint days and at the final day, exactly the frames a from-scratch
batch replay of the same feed prefix produces — compared as raw wire
bytes, not parsed values, so the canonical encoding is part of the
contract.

Concurrency shape: the ingest thread replays the feed and pauses only
momentarily at each checkpoint (a bounded handshake) so the captured
frames land on a known day; a separate churn thread hammers the server
with queries for the whole run, asserting every response is well-formed
and the observed days never go backwards across atomic index swaps.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serve.client import request_once
from repro.serve.index import ServeIndex, SnapshotSwapper
from repro.serve.protocol import Request, encode_frame, ok_response
from repro.serve.server import ServeDispatcher, ThreadedServer
from repro.stream.engine import StreamEngine
from repro.stream.query import QueryAPI


def raw_request(host: str, port: int, request: Request) -> bytes:
    """One request, returning the raw response line off the wire."""

    async def run() -> bytes:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(request.to_frame())
            await writer.drain()
            return await reader.readline()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return asyncio.run(run())


def reference_index(world, feed, day: int) -> ServeIndex:
    """A from-scratch replay of the exact partition prefix the live
    ingest had applied when its checkpoint handshake fired: everything
    up to and including the partition that completed gTLD *day*."""
    engine = StreamEngine(world.horizon, windows=feed.windows())
    for partition in feed.days():
        engine.ingest(partition)
        latest = engine.latest_day("gtld")
        if latest is not None and latest >= day:
            break
    return ServeIndex.build(engine)


def full_reference_index(world, feed) -> ServeIndex:
    """A from-scratch replay of the whole feed."""
    engine = StreamEngine(world.horizon, windows=feed.windows())
    engine.ingest_feed(feed.days())
    return ServeIndex.build(engine)


def checkpoint_requests(day: int, domain: str):
    """The frames captured at one checkpoint (fixed ids → fixed bytes)."""
    return [
        Request(
            op="aggregate",
            params={"scope": "gtld"},
            id=f"chk-{day}-aggregate",
        ),
        Request(
            op="lookup",
            params={"domain": domain, "scope": "gtld"},
            id=f"chk-{day}-lookup",
        ),
        Request(
            op="history",
            params={"domain": domain},
            id=f"chk-{day}-history",
        ),
    ]


def expected_frame(index: ServeIndex, request: Request) -> bytes:
    if request.op == "aggregate":
        result = index.aggregate(request.params["scope"])
    elif request.op == "lookup":
        result = index.lookup(
            request.params["domain"], scope=request.params["scope"]
        )
    else:
        result = index.history_payload(request.params["domain"])
    return encode_frame(ok_response(request.id, result))


def test_served_answers_byte_identical_under_concurrent_ingest(
    serve_world, replay_feed, batch_results, protected_domain
):
    domain, provider = protected_domain
    horizon = serve_world.horizon
    checkpoints = [horizon // 4, horizon // 2, (3 * horizon) // 4]
    assert len(set(checkpoints)) == 3

    engine = StreamEngine(horizon, windows=replay_feed.windows())
    swapper = SnapshotSwapper(engine)
    swapper.attach()
    dispatcher = ServeDispatcher(swapper.current_index)

    reached = {day: threading.Event() for day in checkpoints}
    acked = {day: threading.Event() for day in checkpoints}
    ingest_errors = []

    def ingest() -> None:
        try:
            for partition in replay_feed.days():
                engine.ingest(partition)
                latest = engine.latest_day("gtld")
                for day in checkpoints:
                    if (
                        latest is not None
                        and latest >= day
                        and not reached[day].is_set()
                    ):
                        reached[day].set()
                        # Bounded handshake: the main thread captures
                        # this day's frames, then ingest rolls on.
                        acked[day].wait(timeout=120)
        except Exception as error:  # surfaced after join
            ingest_errors.append(error)
            for event in reached.values():
                event.set()

    churn_stop = threading.Event()
    churn_days = []
    churn_errors = []

    def churn(host: str, port: int) -> None:
        try:
            while not churn_stop.is_set():
                response = request_once(
                    host, port, "aggregate", {"scope": "gtld"}
                )
                if not response["ok"]:
                    churn_errors.append(response)
                    return
                churn_days.append(response["result"]["day"])
        except Exception as error:
            churn_errors.append(error)

    captures = {}
    with ThreadedServer(dispatcher) as (host, port):
        ingester = threading.Thread(target=ingest, daemon=True)
        ingester.start()
        churner = threading.Thread(
            target=churn, args=(host, port), daemon=True
        )
        churner.start()
        try:
            for day in checkpoints:
                assert reached[day].wait(timeout=240), (
                    f"checkpoint day {day} never reached"
                )
                assert not ingest_errors, ingest_errors
                captures[day] = [
                    raw_request(host, port, request)
                    for request in checkpoint_requests(day, domain)
                ]
                acked[day].set()
            ingester.join(timeout=240)
            assert not ingester.is_alive(), "ingest never finished"
        finally:
            for event in acked.values():
                event.set()
            churn_stop.set()
            churner.join(timeout=60)

        assert not ingest_errors, ingest_errors
        assert not churn_errors, churn_errors

        # Concurrency held up: the churn saw live traffic during
        # ingest, every response was ok, and the atomically swapped
        # days never moved backwards.
        assert len(churn_days) >= 10
        observed = [day for day in churn_days if day is not None]
        assert observed == sorted(observed)

        # Byte identity at every checkpoint: each captured frame equals
        # the frame a from-scratch batch replay of the same feed prefix
        # encodes. (The handshake pinned the index at the scope's own
        # day boundary, so the prefix is exact.)
        for day in checkpoints:
            reference = reference_index(serve_world, replay_feed, day)
            assert reference.scope("gtld").day == day
            for request, captured in zip(
                checkpoint_requests(day, domain), captures[day]
            ):
                assert captured == expected_frame(reference, request), (
                    f"frame mismatch at day {day} op {request.op}"
                )

        # Final day: the live served index equals both the full batch
        # replay (bytes) and the batch study's detection (values).
        final_day = engine.latest_day("gtld")
        full_reference = full_reference_index(serve_world, replay_feed)
        for request in checkpoint_requests(final_day, domain):
            assert raw_request(host, port, request) == expected_frame(
                full_reference, request
            )

        served = swapper.current_index().aggregate("gtld")
        batch_detection = batch_results.detection_gtld
        for name, count in served["providers"].items():
            assert count == batch_detection.providers[name].total[
                final_day
            ]

        # And the in-process QueryAPI over the same engine agrees.
        api = QueryAPI(engine, index_source=swapper.current_index)
        assert api.snapshot("gtld").to_dict() == {
            "scope": "gtld",
            "day": served["day"],
            "domains_seen": served["domains_seen"],
            "any_use": served["any_use"],
            "providers": served["providers"],
        }
