"""The asyncio server: framing, dispatch, self-protection, drain."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.client import ServeClient, request_mix, request_once
from repro.serve.guard import AdmissionGuard
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    encode_frame,
)
from repro.serve.ratelimit import SlidingWindowLimiter
from repro.serve.server import ServeDispatcher, ThreadedServer


@pytest.fixture()
def dispatcher(served_stack):
    _, swapper = served_stack
    return ServeDispatcher(swapper.current_index)


@pytest.fixture()
def server(dispatcher):
    threaded = ThreadedServer(dispatcher)
    host, port = threaded.start()
    yield host, port
    threaded.stop()


class TestRoundTrips:
    def test_health(self, server, served_stack):
        host, port = server
        _, swapper = served_stack
        response = request_once(host, port, "health")
        assert response["ok"] is True
        assert response["v"] == PROTOCOL_VERSION
        result = response["result"]
        assert result["status"] == "ok"
        assert result["version"] == swapper.current_index().version
        assert sorted(result["days"]) == (
            swapper.current_index().scope_names
        )

    def test_lookup_and_id_echo(
        self, server, served_stack, protected_domain
    ):
        host, port = server
        domain, _ = protected_domain

        async def run():
            client = await ServeClient.connect(host, port)
            try:
                return await client.call(
                    "lookup", {"domain": domain}, request_id="req-7"
                )
            finally:
                await client.close()

        response = asyncio.run(run())
        assert response["id"] == "req-7"
        assert response["ok"] is True
        assert response["result"]["domain"] == domain

    def test_history_and_aggregate(
        self, server, served_stack, protected_domain
    ):
        host, port = server
        domain, provider = protected_domain
        _, swapper = served_stack
        index = swapper.current_index()

        history = request_once(host, port, "history", {"domain": domain})
        assert history["ok"] is True
        assert provider in history["result"]["scopes"]["gtld"]

        aggregate = request_once(
            host, port, "aggregate", {"scope": "gtld"}
        )
        assert aggregate["result"] == index.aggregate("gtld")

        single = request_once(
            host,
            port,
            "aggregate",
            {"scope": "gtld", "provider": provider},
        )
        assert single["result"]["adoption"] == index.adoption(provider)

    def test_snapshot_forms(self, server, served_stack):
        host, port = server
        _, swapper = served_stack
        index = swapper.current_index()
        full = request_once(host, port, "snapshot")
        assert full["result"] == json.loads(
            json.dumps(index.snapshot_payload())
        )
        scoped = request_once(
            host, port, "snapshot", {"scope": "gtld"}
        )
        assert scoped["result"]["version"] == index.version
        assert scoped["result"]["day"] == index.scope("gtld").day

    def test_many_requests_one_connection(self, server):
        host, port = server

        async def run():
            client = await ServeClient.connect(host, port)
            try:
                return [
                    await client.call("aggregate", {"scope": "gtld"})
                    for _ in range(20)
                ]
            finally:
                await client.close()

        responses = asyncio.run(run())
        assert all(r["ok"] for r in responses)
        assert len({json.dumps(r["result"]) for r in responses}) == 1

    def test_concurrent_mix_in_request_order(self, server):
        host, port = server
        requests = [
            ("aggregate", {"scope": scope})
            for scope in ("gtld", "nl", "alexa")
        ] * 10 + [("health", {}), ("snapshot", {})]
        responses = request_mix(host, port, requests, connections=6)
        assert len(responses) == len(requests)
        assert all(r["ok"] for r in responses)
        for (op, params), response in zip(requests, responses):
            if op == "aggregate":
                assert response["result"]["scope"] == params["scope"]


class TestErrorPaths:
    def test_bad_version_frame(self, server):
        host, port = server

        async def run():
            client = await ServeClient.connect(host, port)
            try:
                return await client.call_frame(
                    encode_frame({"v": 99, "op": "health"})
                )
            finally:
                await client.close()

        response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-request"

    def test_unknown_scope_is_bad_params(self, server):
        host, port = server
        response = request_once(
            host, port, "aggregate", {"scope": "klingon"}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-params"

    def test_not_yet_ingested_day_is_bad_params(
        self, server, served_stack
    ):
        host, port = server
        _, swapper = served_stack
        horizon = swapper.current_index().horizon
        response = request_once(
            host, port, "aggregate", {"scope": "gtld", "day": horizon}
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-params"

    def test_oversized_frame_answered_then_closed(self, server):
        host, port = server

        async def run():
            client = await ServeClient.connect(host, port)
            big = b'{"pad": "' + b"x" * (80 * 1024) + b'"}\n'
            response = await client.call_frame(big)
            # The server hung up after answering; the next read fails.
            with pytest.raises(ConnectionError):
                await client.call("health")
            await client.close()
            return response

        response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"]["code"] == "too-large"


class TestSelfProtection:
    def test_burst_is_limited_but_compliant_clients_are_not(
        self, served_stack
    ):
        _, swapper = served_stack
        guard = AdmissionGuard(
            SlidingWindowLimiter(limit=5, window=1000),
            burst_limit=1000,
            burst_window=10,
            block_after=100,  # keep this test on pure rate limiting
        )
        dispatcher = ServeDispatcher(swapper.current_index, guard=guard)
        threaded = ThreadedServer(dispatcher)
        host, port = threaded.start()
        try:
            # All local connections share the 127.0.0.1 peer key, so
            # one hammering burst exhausts the budget...
            burst = request_mix(
                host,
                port,
                [("aggregate", {"scope": "gtld"})] * 20,
                connections=2,
            )
            admitted = [r for r in burst if r["ok"]]
            denied = [r for r in burst if not r["ok"]]
            assert len(admitted) == 5
            assert len(denied) == 15
            assert {r["error"]["code"] for r in denied} == {
                "rate-limited"
            }
            assert all(
                r["error"]["retry_after"] > 0 for r in denied
            )
            # ...but health stays answerable for monitoring.
            health = request_once(host, port, "health")
            assert health["ok"] is True
            stats = health["result"]["guard"]
            assert stats["ok"] == 5
            assert stats["rate-limited"] == 15
        finally:
            threaded.stop()

    def test_requests_handled_counts_only_admitted(self, served_stack):
        _, swapper = served_stack
        guard = AdmissionGuard(SlidingWindowLimiter(limit=2, window=100))
        dispatcher = ServeDispatcher(swapper.current_index, guard=guard)
        for _ in range(5):
            dispatcher.handle_line(
                encode_frame(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "aggregate",
                        "params": {"scope": "gtld"},
                    }
                ),
                "client",
            )
        assert dispatcher.requests_handled == 2


class TestGracefulDrain:
    def test_stop_refuses_new_connections(self, dispatcher):
        threaded = ThreadedServer(dispatcher)
        host, port = threaded.start()
        assert request_once(host, port, "health")["ok"] is True
        threaded.stop()
        with pytest.raises(OSError):
            request_once(host, port, "health")

    def test_idle_connections_closed_on_drain(self, dispatcher):
        threaded = ThreadedServer(dispatcher)
        host, port = threaded.start()

        async def open_idle():
            reader, writer = await asyncio.open_connection(host, port)
            return reader, writer

        loop = asyncio.new_event_loop()
        try:
            reader, writer = loop.run_until_complete(open_idle())
            threaded.stop()
            line = loop.run_until_complete(reader.readline())
            assert line == b""  # server closed the idle connection
            writer.close()
        finally:
            loop.close()

    def test_context_manager_round_trip(self, dispatcher):
        with ThreadedServer(dispatcher) as (host, port):
            assert request_once(host, port, "health")["ok"] is True
