"""SegmentStore behaviour: appends, lazy reads, compaction, pruning."""

import os

import pytest

from repro.batch.batch import BatchBuilder
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore
from repro.store import SegmentStore, StorageError
from repro.stream.feed import StoreReplayFeed


def observation(index, day=0, tld="com"):
    return DomainObservation(
        day=day,
        domain=f"d{index}.{tld}",
        tld=tld,
        ns_names=("ns1.hostco-dns.com", "ns2.hostco-dns.com"),
        apex_addrs=(f"10.0.{index % 4}.{index % 200 + 1}",),
        www_cnames=("cdn.front.net",) if index % 3 == 0 else (),
        www_addrs=(f"10.1.0.{index % 200 + 1}",),
        asns=frozenset({64500 + index % 3, 64510}),
    )


def day_rows(day, count=6, tld="com"):
    return [observation(i, day=day, tld=tld) for i in range(count)]


def populated(tmp_path, days=3):
    store = SegmentStore(str(tmp_path), create=True)
    for day in range(days):
        store.append("com", day, day_rows(day))
        store.append("nl", day, day_rows(day, count=2, tld="nl"))
    return store


class TestAppendAndRead:
    def test_rows_roundtrip(self, tmp_path):
        store = populated(tmp_path)
        assert list(store.rows("com", 1)) == day_rows(1)
        assert store.row_count("nl", 2) == 2
        store.close()

    def test_partitions_sorted(self, tmp_path):
        store = populated(tmp_path, days=2)
        assert store.partitions() == [
            ("com", 0), ("com", 1), ("nl", 0), ("nl", 1)
        ]
        store.close()

    def test_reopen_sees_appends(self, tmp_path):
        populated(tmp_path).close()
        with SegmentStore(str(tmp_path)) as store:
            assert store.row_count("com", 0) == 6

    def test_missing_manifest_requires_create(self, tmp_path):
        with pytest.raises(StorageError, match="create=True"):
            SegmentStore(str(tmp_path / "empty"))

    def test_invalid_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            SegmentStore(str(tmp_path), on_error="ignore", create=True)

    def test_append_batch_matches_append(self, tmp_path):
        rows = day_rows(0, count=8)
        boxed = SegmentStore(str(tmp_path / "a"), create=True)
        boxed.append("com", 0, rows)
        column = ColumnStore()
        column.append("com", 0, rows)
        batched = SegmentStore(str(tmp_path / "b"), create=True)
        batched.append_batch("com", 0, column.batch("com", 0))
        assert list(batched.rows("com", 0)) == list(boxed.rows("com", 0))
        boxed.close()
        batched.close()

    def test_append_columns_validates(self, tmp_path):
        store = SegmentStore(str(tmp_path), create=True)
        with pytest.raises(StorageError, match="missing columns"):
            store.append_columns("com", 0, {"domain": ["a.com"]})
        store.close()

    def test_append_partitions_bulk_loads_one_segment(self, tmp_path):
        bulk = SegmentStore(str(tmp_path / "bulk"), create=True)
        bulk.append_partitions(
            [
                ("com", day, day_rows(day))
                for day in range(5)
            ]
            + [("nl", 0, day_rows(0, count=2, tld="nl"))]
        )
        assert len(os.listdir(tmp_path / "bulk" / "segments")) == 1
        assert bulk.partitions() == [
            ("com", 0), ("com", 1), ("com", 2), ("com", 3), ("com", 4),
            ("nl", 0),
        ]
        assert list(bulk.rows("com", 3)) == day_rows(3)
        bulk.append_partitions([])
        assert len(os.listdir(tmp_path / "bulk" / "segments")) == 1
        bulk.close()

    def test_duplicate_partition_appends_concatenate(self, tmp_path):
        store = SegmentStore(str(tmp_path), create=True)
        store.append("com", 0, day_rows(0, count=3))
        store.append("com", 0, day_rows(0, count=2))
        assert store.row_count("com", 0) == 5
        assert len(list(store.rows("com", 0))) == 5
        store.close()


class TestBatch:
    def test_batch_matches_column_store(self, tmp_path):
        rows = day_rows(0, count=10)
        segment_store = SegmentStore(str(tmp_path), create=True)
        segment_store.append("com", 0, rows)
        column_store = ColumnStore()
        column_store.append("com", 0, rows)
        ours = segment_store.batch("com", 0)
        theirs = column_store.batch("com", 0)
        assert len(ours) == len(theirs)
        assert [ours.row(i) for i in range(len(ours))] == [
            theirs.row(i) for i in range(len(theirs))
        ]
        segment_store.close()

    def test_batches_share_builder(self, tmp_path):
        store = populated(tmp_path, days=2)
        builder = BatchBuilder()
        seen = list(store.batches(builder=builder))
        assert [(s, d) for s, d, _ in seen] == store.partitions()
        assert all(batch.names is seen[0][2].names for _, _, batch in seen)
        store.close()

    def test_store_replay_feed_accepts_segment_store(self, tmp_path):
        store = populated(tmp_path, days=2)
        partitions = list(StoreReplayFeed(store).days())
        assert [(p.source, p.day) for p in partitions] == [
            ("com", 0), ("nl", 0), ("com", 1), ("nl", 1)
        ]
        assert list(partitions[0].observations) == day_rows(0)
        store.close()


class TestCompaction:
    def test_compact_merges_generation(self, tmp_path):
        store = populated(tmp_path, days=9)
        before = {key: list(store.rows(*key)) for key in store.partitions()}
        written = store.compact(fanout=4)
        assert written
        assert store.partitions() == sorted(before)
        after = {key: list(store.rows(*key)) for key in store.partitions()}
        assert after == before
        store.close()

    def test_compact_removes_source_segments(self, tmp_path):
        store = populated(tmp_path, days=8)
        segments_dir = tmp_path / "segments"
        assert len(os.listdir(segments_dir)) == 16
        store.compact(fanout=4)
        on_disk = set(os.listdir(segments_dir))
        referenced = {
            os.path.basename(meta.file)
            for meta in store.manifest.segments
        }
        assert on_disk == referenced
        assert len(on_disk) < 16
        store.close()

    def test_compact_below_fanout_is_noop(self, tmp_path):
        store = populated(tmp_path, days=2)
        assert store.compact(fanout=8) == []
        store.close()

    def test_compacted_store_reopens(self, tmp_path):
        store = populated(tmp_path, days=8)
        store.compact(fanout=4)
        store.close()
        with SegmentStore(str(tmp_path)) as reopened:
            assert reopened.row_count("com", 5) == 6
            assert list(reopened.rows("nl", 7)) == day_rows(
                7, count=2, tld="nl"
            )

    def test_manifest_prunes_by_day_and_source(self, tmp_path):
        store = populated(tmp_path, days=8)
        store.compact(fanout=4)
        store.append("com", 20, day_rows(20))
        manifest = store.manifest
        fresh = manifest.select(sources=("com",), start=20, end=20)
        assert len(fresh) == 1
        assert fresh[0].generation == 0
        old = manifest.select(sources=("com",), start=3, end=3)
        assert all(meta.day_min <= 3 <= meta.day_max for meta in old)
        assert not manifest.select(sources=("com",), start=50, end=50)
        store.close()


class TestLenientReads:
    def test_damaged_segment_skips_its_partitions(self, tmp_path):
        store = populated(tmp_path, days=3)
        store.close()
        target = sorted(
            str(p) for p in (tmp_path / "segments").iterdir()
        )[0]
        blob = bytearray(open(target, "rb").read())
        blob[len(blob) // 2] ^= 1
        with open(target, "wb") as handle:
            handle.write(bytes(blob))
        with SegmentStore(str(tmp_path), on_error="skip") as lenient:
            for source, day in lenient.partitions():
                lenient.batch(source, day)
            skipped = {
                (source, day)
                for source, day, _ in lenient.skipped_partitions
            }
            assert skipped == {("com", 0)}
        with SegmentStore(str(tmp_path)) as strict:
            with pytest.raises(StorageError):
                for source, day in strict.partitions():
                    strict.batch(source, day)
