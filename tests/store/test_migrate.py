"""v1 → v2 store migration."""

import os

import pytest

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.inject import corrupt_store_files
from repro.measurement.snapshot import DomainObservation
from repro.measurement.storage import ColumnStore
from repro.store import SegmentStore, StorageError
from repro.store.migrate import directory_bytes, migrate_store


def observation(domain, day, tld="com"):
    return DomainObservation(
        day=day,
        domain=domain,
        tld=tld,
        ns_names=(f"ns1.{domain}.",),
        apex_addrs=("192.0.2.7",),
        www_cnames=("edge.prot.example.",),
        www_addrs=("198.51.100.9",),
        asns=frozenset({64500, 64501}),
    )


def populated_store(days=4):
    store = ColumnStore()
    for day in range(days):
        store.append(
            "com", day, [observation(f"a{i}.com", day) for i in range(5)]
        )
        store.append(
            "nl",
            day,
            [observation(f"b{i}.nl", day, tld="nl") for i in range(2)],
        )
    return store


def rows_of(store):
    return {key: list(store.rows(*key)) for key in store.partitions()}


class TestMigrate:
    def test_v1_roundtrips_exactly(self, tmp_path):
        store = populated_store()
        v1 = tmp_path / "v1"
        store.save_legacy(str(v1))
        report = migrate_store(str(v1), str(tmp_path / "v2"))
        with SegmentStore(str(tmp_path / "v2")) as migrated:
            assert rows_of(migrated) == rows_of(store)
        assert report.partitions == 8
        assert report.rows == 4 * (5 + 2)
        assert report.skipped == []

    def test_report_byte_accounting(self, tmp_path):
        store = populated_store()
        v1, v2 = tmp_path / "v1", tmp_path / "v2"
        store.save_legacy(str(v1))
        report = migrate_store(str(v1), str(v2))
        assert report.source_bytes == directory_bytes(str(v1))
        assert report.target_bytes == directory_bytes(str(v2))
        assert report.segments == len(os.listdir(v2 / "segments"))

    def test_compact_fanout_merges_segments(self, tmp_path):
        store = populated_store(days=6)
        v1, v2 = tmp_path / "v1", tmp_path / "v2"
        store.save_legacy(str(v1))
        report = migrate_store(str(v1), str(v2), compact_fanout=4)
        assert report.segments < 12
        with SegmentStore(str(v2)) as migrated:
            assert rows_of(migrated) == rows_of(store)

    def test_skip_damaged_v1_partition(self, tmp_path):
        store = populated_store()
        v1, v2 = tmp_path / "v1", tmp_path / "v2"
        store.save_legacy(str(v1))
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(
                    "storage.segment_read", "bitflip", keys=("com/2",)
                ),
            ),
        )
        corrupt_store_files(str(v1), plan.injector())
        with pytest.raises(StorageError):
            migrate_store(str(v1), str(tmp_path / "strict"))
        report = migrate_store(str(v1), str(v2), on_error="skip")
        assert [(s, d) for s, d, _ in report.skipped] == [("com", 2)]
        with SegmentStore(str(v2)) as migrated:
            expected = rows_of(store)
            expected.pop(("com", 2))
            assert rows_of(migrated) == expected

    def test_v2_source_rewrites_harmlessly(self, tmp_path):
        store = populated_store()
        v2a, v2b = tmp_path / "a", tmp_path / "b"
        store.save(str(v2a))
        report = migrate_store(str(v2a), str(v2b))
        assert report.partitions == 8
        with SegmentStore(str(v2b)) as rewritten:
            assert rows_of(rewritten) == rows_of(store)
