"""Segment-store identity: mmap reads change nothing downstream.

The on-disk :class:`SegmentStore` is a storage engine swap — same
columns, same batches, same detection. For three fixed worlds this
suite lands the study's daily partitions into both stores and pins
whole-history :meth:`AdoptionStudy.detect_from_store`, the streamed
engine's state digest, and the canonical JSON export across the
in-memory and on-disk (fresh and compacted) paths.
"""

import json

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.measurement.storage import ColumnStore
from repro.reporting.export import study_to_dict
from repro.store import SegmentStore
from repro.stream.checkpoint import state_digest
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed

SCALE = 300000
SEEDS = (3, 7, 11)


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request, tmp_path_factory):
    """(world, study, results, column store, segment store) per seed."""
    from repro.world.scenario import ScenarioConfig, build_paper_world

    world = build_paper_world(
        ScenarioConfig(scale=SCALE, seed=request.param)
    )
    study = AdoptionStudy(world)
    results = study.run()
    assert any(results.detection_gtld.any_use_combined)
    directory = tmp_path_factory.mktemp(f"store-{request.param}")
    column_store = ColumnStore()
    segment_store = SegmentStore(str(directory), create=True)
    feed = SegmentReplayFeed(world, results.segments)
    pending = []
    for part in feed.days():
        rows = list(part.observations)
        column_store.append(part.source, part.day, rows)
        pending.append((part.source, part.day, rows))
        if len(pending) >= 250:  # bulk-land: several multi-part segments
            segment_store.append_partitions(pending)
            pending = []
    segment_store.append_partitions(pending)
    yield world, study, results, column_store, segment_store
    segment_store.close()


def _canonical(results) -> str:
    return json.dumps(study_to_dict(results), sort_keys=True)


class TestSegmentStoreIdentity:
    def test_detect_from_store_matches_column_store(self, seeded):
        _, study, results, column_store, segment_store = seeded
        sources = ("com", "net", "org")
        from_disk = study.detect_from_store(segment_store, sources)
        assert from_disk == study.detect_from_store(column_store, sources)
        assert from_disk == results.detection_gtld

    def test_streamed_engine_state_digest_identical(self, seeded):
        world, _, results, column_store, segment_store = seeded
        windows = SegmentReplayFeed(world, results.segments).windows()

        from_memory = StreamEngine(world.horizon, windows=windows)
        from_memory.ingest_feed(StoreReplayFeed(column_store).days())
        from_disk = StreamEngine(world.horizon, windows=windows)
        from_disk.ingest_feed(StoreReplayFeed(segment_store).days())

        assert state_digest(from_disk) == state_digest(from_memory)
        assert from_disk.detection("gtld") == results.detection_gtld

    def test_workers2_export_byte_identical(self, seeded):
        world, _, results, _, _ = seeded
        parallel = AdoptionStudy(world).run(
            parallel=True, workers=2, shard_count=4
        )
        assert _canonical(parallel) == _canonical(results)

    def test_compacted_store_detection_identical(
        self, seeded, tmp_path_factory
    ):
        world, study, results, _, segment_store = seeded
        directory = tmp_path_factory.mktemp("compacted")
        with SegmentStore(str(directory), create=True) as compacted:
            for source, day in segment_store.partitions():
                compacted.append_batch(
                    source, day, segment_store.batch(source, day)
                )
            assert compacted.compact(fanout=8)
            detected = study.detect_from_store(
                compacted, ("com", "net", "org")
            )
        assert detected == results.detection_gtld
