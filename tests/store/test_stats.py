"""SegmentStore statistics: exact on-disk byte accounting."""

import os

from repro.measurement.snapshot import DomainObservation
from repro.store import SegmentStore


def observation(domain, day):
    return DomainObservation(
        day=day,
        domain=domain,
        tld="com",
        ns_names=(f"ns1.{domain}.",),
        apex_addrs=("192.0.2.1",),
        asns=frozenset({64500}),
    )


def populated(tmp_path, days):
    store = SegmentStore(str(tmp_path), create=True)
    for day in range(days):
        store.append(
            "com", day, [observation(f"a{i}.com", day) for i in range(6)]
        )
    return store


def segment_sizes(tmp_path):
    segments = tmp_path / "segments"
    return {
        name: os.path.getsize(segments / name)
        for name in os.listdir(segments)
    }


class TestPartitionStats:
    def test_single_partition_segment_is_whole_file(self, tmp_path):
        store = populated(tmp_path, days=3)
        sizes = segment_sizes(tmp_path)
        for (source, day), name in zip(
            store.partitions(), sorted(sizes)
        ):
            stats = store.partition_stats(source, day)
            assert stats.encoded_bytes == sizes[name]
            assert stats.rows == 6
        store.close()

    def test_compacted_partitions_share_page_bytes(self, tmp_path):
        store = populated(tmp_path, days=8)
        store.compact(fanout=4)
        sizes = segment_sizes(tmp_path)
        assert len(sizes) == 1
        (total_size,) = sizes.values()
        per_partition = [
            store.partition_stats("com", day).encoded_bytes
            for day in range(8)
        ]
        assert all(size > 0 for size in per_partition)
        # Shares cover the pages only; framing overhead stays outside.
        assert sum(per_partition) <= total_size
        store.close()

    def test_total_stats_match_manifest_and_disk(self, tmp_path):
        store = populated(tmp_path, days=5)
        total = store.total_stats()
        assert total.rows == 30
        assert total.encoded_bytes == sum(
            meta.bytes for meta in store.manifest.segments
        )
        assert total.encoded_bytes == sum(segment_sizes(tmp_path).values())
        store.close()

    def test_total_stats_filter_by_source(self, tmp_path):
        store = populated(tmp_path, days=2)
        store.append("nl", 0, [observation("b.nl", 0)])
        assert store.total_stats("com").rows == 12
        assert store.total_stats("nl").rows == 1
        assert (
            store.total_stats("com").encoded_bytes
            + store.total_stats("nl").encoded_bytes
            == store.total_stats().encoded_bytes
        )
        store.close()
