"""The binary segment format: build, write, map, verify, fail typed."""

import os

import pytest

from repro.store import StorageError, build_segment, write_segment
from repro.store.segment import (
    FOOTER_MAGIC,
    MAGIC,
    SegmentReader,
)


def partition_columns(rows, prefix="d", day=0):
    return {
        "domain": [f"{prefix}{i}.com" for i in range(rows)],
        "tld": ["com"] * rows,
        "ns_names": [["ns1.hostco.net", "ns2.hostco.net"] for _ in range(rows)],
        "apex_addrs": [[f"10.0.0.{i % 250 + 1}"] for i in range(rows)],
        "www_cnames": [[] for _ in range(rows)],
        "www_addrs": [[f"10.0.1.{i % 250 + 1}"] for i in range(rows)],
        "apex_addrs6": [["2001:db8::1"] for _ in range(rows)],
        "www_addrs6": [[] for _ in range(rows)],
        "asns": [[64500, 64501 + i % 3] for i in range(rows)],
    }


class TestBuild:
    def test_roundtrip_single_partition(self):
        columns = partition_columns(12)
        data = build_segment([("com", 3, columns)])
        with SegmentReader.from_bytes(data) as reader:
            assert len(reader.partitions) == 1
            ref = reader.partitions[0]
            assert (ref.source, ref.day, ref.rows) == ("com", 3, 12)
            for name, cells in columns.items():
                assert reader.column_cells(ref, name) == cells

    def test_roundtrip_multi_partition(self):
        parts = [
            ("com", 0, partition_columns(5)),
            ("nl", 0, partition_columns(3, prefix="n")),
            ("com", 1, partition_columns(4, day=1)),
        ]
        data = build_segment(parts)
        with SegmentReader.from_bytes(data) as reader:
            assert [
                (p.source, p.day, p.rows) for p in reader.partitions
            ] == [("com", 0, 5), ("nl", 0, 3), ("com", 1, 4)]
            for (source, day, columns), ref in zip(parts, reader.partitions):
                assert reader.column_cells(ref, "domain") == columns["domain"]

    def test_deterministic_bytes(self):
        parts = [("com", 0, partition_columns(20))]
        assert build_segment(parts) == build_segment(parts)

    def test_magic_framing(self):
        data = build_segment([("com", 0, partition_columns(2))])
        assert data[:4] == MAGIC
        assert data[-4:] == FOOTER_MAGIC

    def test_ragged_partition_rejected(self):
        columns = partition_columns(4)
        columns["tld"] = ["com"] * 3
        with pytest.raises(StorageError, match="ragged"):
            build_segment([("com", 0, columns)])

    def test_unknown_column_rejected(self):
        columns = partition_columns(2)
        columns["bogus"] = [1, 2]
        with pytest.raises(StorageError, match="unknown column"):
            build_segment([("com", 0, columns)])


class TestWrite:
    def test_atomic_write_leaves_no_temp(self, tmp_path):
        path = str(tmp_path / "segments" / "a.rseg")
        size = write_segment(path, [("com", 0, partition_columns(6))])
        assert os.path.getsize(path) == size
        assert os.listdir(tmp_path / "segments") == ["a.rseg"]

    def test_written_file_reads_back(self, tmp_path):
        path = str(tmp_path / "a.rseg")
        columns = partition_columns(9)
        write_segment(path, [("net", 2, columns)])
        with SegmentReader(path) as reader:
            ref = reader.partitions[0]
            assert reader.column_cells(ref, "asns") == columns["asns"]


def damaged(data, mutate):
    blob = bytearray(data)
    mutate(blob)
    return bytes(blob)


class TestCorruption:
    def segment(self):
        return build_segment([("com", 0, partition_columns(8))])

    def test_bad_magic(self):
        data = damaged(self.segment(), lambda b: b.__setitem__(0, 0))
        with pytest.raises(StorageError, match="magic"):
            SegmentReader.from_bytes(data)

    def test_bad_version(self):
        data = damaged(self.segment(), lambda b: b.__setitem__(4, 0xEE))
        with pytest.raises(StorageError, match="version"):
            SegmentReader.from_bytes(data)

    def test_bad_footer_magic(self):
        data = damaged(
            self.segment(), lambda b: b.__setitem__(len(b) - 1, 0)
        )
        with pytest.raises(StorageError, match="footer"):
            SegmentReader.from_bytes(data)

    def test_truncation(self):
        data = self.segment()
        with pytest.raises(StorageError):
            SegmentReader.from_bytes(data[: len(data) // 2])

    def test_every_prefix_raises_typed_error_only(self):
        data = self.segment()
        for cut in range(0, len(data), 97):
            try:
                reader = SegmentReader.from_bytes(data[:cut])
            except StorageError:
                continue
            for ref in reader.partitions:  # pragma: no cover - defensive
                for name in ref.columns:
                    reader.column_cells(ref, name)

    def test_directory_checksum(self):
        # Flip a byte inside the directory region (after the header).
        data = damaged(
            self.segment(), lambda b: b.__setitem__(20, b[20] ^ 0x01)
        )
        with pytest.raises(StorageError, match="checksum"):
            SegmentReader.from_bytes(data)

    def test_page_checksum_lazy(self):
        data = self.segment()
        reader = SegmentReader.from_bytes(data)
        ref = reader.partitions[0]
        page_start = min(c.offset for c in ref.columns.values())
        corrupt = damaged(
            data, lambda b: b.__setitem__(page_start, b[page_start] ^ 0x01)
        )
        # The directory still parses: page damage surfaces on column read.
        broken = SegmentReader.from_bytes(corrupt)
        with pytest.raises(StorageError, match="checksum"):
            for name in sorted(broken.partitions[0].columns):
                broken.column_page(broken.partitions[0], name)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open"):
            SegmentReader(str(tmp_path / "nope.rseg"))


class TestReaderLifecycle:
    def test_closed_reader_refuses_reads(self):
        reader = SegmentReader.from_bytes(
            build_segment([("com", 0, partition_columns(2))])
        )
        ref = reader.partitions[0]
        reader.close()
        with pytest.raises(StorageError, match="closed"):
            reader.column_cells(ref, "domain")

    def test_close_after_failed_page_read(self, tmp_path):
        # A StorageError raised mid-read (its traceback can pin a
        # memoryview of the map) must not prevent closing the reader.
        path = str(tmp_path / "a.rseg")
        write_segment(path, [("com", 0, partition_columns(8))])
        blob = bytearray(open(path, "rb").read())
        reader = SegmentReader.from_bytes(bytes(blob))
        page_start = min(
            c.offset for c in reader.partitions[0].columns.values()
        )
        blob[page_start] ^= 1
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        broken = SegmentReader(path)
        with pytest.raises(StorageError):
            for name in sorted(broken.partitions[0].columns):
                broken.column_page(broken.partitions[0], name)
        broken.close()

    def test_missing_column_is_typed(self):
        reader = SegmentReader.from_bytes(
            build_segment([("com", 0, partition_columns(2))])
        )
        with pytest.raises(StorageError, match="missing column"):
            reader.column_page(reader.partitions[0], "nope")
