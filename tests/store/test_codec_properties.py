"""Property suite for the column page codecs.

Two invariants, over adversarial cell values and damaged bytes:

* every encodable column round-trips exactly (including IPv6-only
  partitions, empty CNAME lists, multi-origin ASN sets, non-ASCII
  domains, NUL and astral-plane code points, and >64 KiB pages);
* no damaged page ever escapes as ``struct.error`` / ``zlib.error`` /
  any other untyped exception — the reader raises
  :class:`~repro.store.errors.StorageError` or returns a decoded page,
  nothing else.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import codecs
from repro.store.codecs import (
    KIND_INT_LIST,
    KIND_STR,
    KIND_STR_LIST,
    decode_column,
    decode_page,
    encode_column,
)
from repro.store.errors import StorageError

texts = st.text(
    alphabet=st.characters(
        min_codepoint=0, max_codepoint=0x10FFFF,
        exclude_categories=("Cs",),  # codecs use surrogatepass anyway
    ),
    max_size=40,
)
ipv6 = st.from_regex(r"2001:db8(:[0-9a-f]{1,4}){1,6}", fullmatch=True)
str_cells = st.lists(texts, max_size=60)
str_list_cells = st.lists(st.lists(texts, max_size=6), max_size=40)
ipv6_only_cells = st.lists(st.lists(ipv6, max_size=4), max_size=30)
int_list_cells = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), max_size=8
    ).map(sorted),
    max_size=40,
)


class TestRoundtrip:
    @given(cells=str_cells)
    def test_str_columns(self, cells):
        codec, page = encode_column(KIND_STR, cells)
        assert decode_column(KIND_STR, codec, page) == cells

    @given(cells=str_list_cells)
    def test_str_list_columns(self, cells):
        codec, page = encode_column(KIND_STR_LIST, cells)
        assert decode_column(KIND_STR_LIST, codec, page) == cells

    @given(cells=ipv6_only_cells)
    def test_ipv6_only_columns(self, cells):
        codec, page = encode_column(KIND_STR_LIST, cells)
        assert decode_column(KIND_STR_LIST, codec, page) == cells

    @given(cells=int_list_cells)
    def test_int_list_columns(self, cells):
        codec, page = encode_column(KIND_INT_LIST, cells)
        assert decode_column(KIND_INT_LIST, codec, page) == cells

    def test_empty_cname_partition(self):
        cells = [[] for _ in range(1000)]
        codec, page = encode_column(KIND_STR_LIST, cells)
        assert decode_column(KIND_STR_LIST, codec, page) == cells

    def test_multi_origin_asn_sets(self):
        cells = [sorted({64500, 64501, 64502, 3356, 13335}) for _ in range(64)]
        codec, page = encode_column(KIND_INT_LIST, cells)
        assert decode_column(KIND_INT_LIST, codec, page) == cells

    def test_nul_and_astral_codepoints(self):
        cells = ["\x00", "a\x00b", "\U0010ffff", "δ.ελ", "xn--no"]
        codec, page = encode_column(KIND_STR, cells)
        assert decode_column(KIND_STR, codec, page) == cells

    def test_large_all_distinct_column_over_64k(self):
        cells = [f"domain-{i:07d}.example" for i in range(8000)]
        codec, page = encode_column(KIND_STR, cells)
        assert (
            len(zlib.decompress(page))
            if codec & codecs.FLAG_ZLIB
            else len(page)
        ) > 64 * 1024
        assert decode_column(KIND_STR, codec, page) == cells

    def test_wide_dictionary_uses_wider_indexes(self):
        cells = [f"v{i}" for i in range(300)]
        codec, page = encode_column(KIND_STR, cells)
        assert decode_column(KIND_STR, codec, page) == cells

    def test_repetition_picks_rle(self):
        repeated = ["same"] * 5000
        codec, page = encode_column(KIND_STR, repeated)
        assert decode_column(KIND_STR, codec, page) == repeated
        varied = [f"value-{i}" for i in range(5000)]
        _, varied_page = encode_column(KIND_STR, varied)
        assert len(page) < len(varied_page) / 50


def sample_pages():
    pages = []
    for kind, cells in (
        (KIND_STR, ["a.com", "b.com", "a.com", "δ.ελ"] * 7),
        (KIND_STR_LIST, [["x", "y"], [], ["x"]] * 9),
        (KIND_INT_LIST, [[64500, 64501], [], [1, 2, 3]] * 9),
    ):
        codec, page = encode_column(kind, cells)
        pages.append((kind, codec, page, cells))
    return pages


PAGES = sample_pages()


class TestCorruptionNeverEscapesTyped:
    @given(
        case=st.integers(min_value=0, max_value=len(PAGES) - 1),
        cut=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncation(self, case, cut):
        kind, codec, page, _ = PAGES[case]
        try:
            decode_page(kind, codec, page[: min(cut, len(page))])
        except StorageError:
            pass

    @given(
        case=st.integers(min_value=0, max_value=len(PAGES) - 1),
        position=st.integers(min_value=0, max_value=4000),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=300, deadline=None)
    def test_bitflip(self, case, position, bit):
        kind, codec, page, cells = PAGES[case]
        blob = bytearray(page)
        blob[position % len(blob)] ^= 1 << bit
        try:
            decoded_codec = codec
            entries, indexes = decode_page(
                kind, decoded_codec, bytes(blob)
            )
            # A surviving decode must still be internally consistent.
            for index in indexes:
                assert index < len(entries)
        except StorageError:
            pass

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes(self, blob):
        for kind in (KIND_STR, KIND_STR_LIST, KIND_INT_LIST):
            for codec in (0, 1, 2, 0x80, 0x81):
                try:
                    decode_page(kind, codec, blob)
                except StorageError:
                    pass

    def test_wrong_kind_is_typed(self):
        _, codec, page, _ = PAGES[0]
        for kind in (KIND_STR_LIST, KIND_INT_LIST, 99):
            with pytest.raises(StorageError):
                decode_page(kind, codec, page)

    def test_unknown_codec_is_typed(self):
        kind, _, page, _ = PAGES[0]
        with pytest.raises(StorageError):
            decode_page(kind, 7, page)
