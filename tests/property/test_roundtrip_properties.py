"""Property-based round-trip checks for the three persistence codecs.

Each codec must reproduce arbitrary valid inputs exactly: DNS wire
encode/decode, stream-engine checkpoint save/load, and columnar segment
write/read. Runs only where ``hypothesis`` is installed (it is an
optional dev dependency; the suite must not require it).
"""

import json
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.references import RefType  # noqa: E402
from repro.dnscore.message import make_query, make_response  # noqa: E402
from repro.dnscore.name import DomainName  # noqa: E402
from repro.dnscore.records import make_record  # noqa: E402
from repro.dnscore.rrtypes import RRType  # noqa: E402
from repro.dnscore.wire import decode_message, encode_message  # noqa: E402
from repro.measurement.scheduler import DayPartition  # noqa: E402
from repro.measurement.snapshot import DomainObservation  # noqa: E402
from repro.measurement.storage import ColumnStore  # noqa: E402
from repro.stream.checkpoint import (  # noqa: E402
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine  # noqa: E402

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
    min_size=1,
    max_size=12,
).filter(lambda text: not text.startswith("-") and not text.endswith("-"))

dns_name = st.lists(label, min_size=1, max_size=4).map(
    lambda labels: ".".join(labels)
)

ipv4 = st.ip_addresses(v=4).map(str)
ipv6 = st.ip_addresses(v=6).map(str)


# -- dnscore.wire --------------------------------------------------------------


@st.composite
def wire_messages(draw):
    qname = draw(dns_name)
    query = make_query(
        DomainName.from_text(qname),
        draw(st.sampled_from([RRType.A, RRType.AAAA, RRType.NS])),
        msg_id=draw(st.integers(min_value=0, max_value=0xFFFF)),
    )
    response = make_response(query, authoritative=draw(st.booleans()))
    # A possibly-empty CNAME chain followed by address records — IPv6
    # included; an empty chain is the plain-hosting common case.
    chain = draw(st.lists(dns_name, max_size=3))
    owner = qname
    for target in chain:
        response.answers.append(
            make_record(owner, RRType.CNAME, target + ".")
        )
        owner = target
    for address in draw(st.lists(ipv4, max_size=3)):
        response.answers.append(make_record(owner, RRType.A, address))
    for address in draw(st.lists(ipv6, max_size=3)):
        response.answers.append(make_record(owner, RRType.AAAA, address))
    for ns in draw(st.lists(dns_name, max_size=2)):
        response.authority.append(
            make_record(qname, RRType.NS, ns + ".")
        )
    return response


class TestWireRoundtrip:
    @RELAXED
    @given(message=wire_messages())
    def test_encode_decode_is_identity(self, message):
        decoded = decode_message(encode_message(message))
        assert decoded.msg_id == message.msg_id
        assert decoded.question == message.question
        assert decoded.answers == message.answers
        assert decoded.authority == message.authority
        assert decoded.flags == message.flags

    @RELAXED
    @given(message=wire_messages())
    def test_encoding_is_deterministic(self, message):
        assert encode_message(message) == encode_message(message)


# -- measurement.storage -------------------------------------------------------


@st.composite
def observations(draw, day):
    domain = draw(dns_name) + ".com"
    return DomainObservation(
        day=day,
        domain=domain,
        tld="com",
        ns_names=tuple(
            sorted(draw(st.lists(dns_name.map(lambda n: n + "."), max_size=3)))
        ),
        apex_addrs=tuple(sorted(draw(st.lists(ipv4, max_size=2)))),
        www_cnames=tuple(draw(st.lists(dns_name, max_size=2))),
        www_addrs=tuple(sorted(draw(st.lists(ipv4, max_size=2)))),
        apex_addrs6=tuple(sorted(draw(st.lists(ipv6, max_size=2)))),
        www_addrs6=tuple(sorted(draw(st.lists(ipv6, max_size=2)))),
        asns=frozenset(
            draw(st.lists(st.integers(1, 2**31 - 1), max_size=3))
        ),
    )


@st.composite
def stores(draw):
    store = ColumnStore()
    for day in range(draw(st.integers(min_value=1, max_value=3))):
        store.append(
            "com",
            day,
            draw(st.lists(observations(day), max_size=4)),
        )
    return store


class TestStorageRoundtrip:
    @RELAXED
    @given(store=stores())
    def test_save_load_reproduces_rows(self, store):
        with tempfile.TemporaryDirectory() as directory:
            store.save(directory)
            loaded = ColumnStore.load(directory)
        assert loaded.partitions() == store.partitions()
        for source, day in store.partitions():
            assert list(loaded.rows(source, day)) == list(
                store.rows(source, day)
            )

    @RELAXED
    @given(store=stores())
    def test_encode_decode_partition_is_identity(self, store):
        for source, day in store.partitions():
            decoded = store.decode_partition(source, day)
            assert decoded == store._partitions[(source, day)]

    @RELAXED
    @given(store=stores())
    def test_batches_equal_rows(self, store):
        """The columnar read path re-materialises exactly the rows the
        row path yields, partition for partition, in order."""
        streamed = [
            (source, day, batch.rows())
            for source, day, batch in store.batches()
        ]
        assert streamed == [
            (source, day, list(store.rows(source, day)))
            for source, day in store.partitions()
        ]


#: Values a stored column can legally hold: strings (unicode included),
#: ints, and flat lists of strings — the shapes append()/append_batch()
#: actually write.
column_value = st.one_of(
    st.text(max_size=24),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.lists(st.text(max_size=12), max_size=4),
)


class TestColumnCodecProperties:
    @RELAXED
    @given(values=st.lists(column_value, max_size=60))
    def test_encode_decode_is_identity(self, values):
        from repro.measurement.storage import (
            _decode_column,
            _encode_column,
        )

        assert _decode_column(_encode_column(values)) == values

    @RELAXED
    @given(values=st.lists(column_value, max_size=60))
    def test_encoding_is_deterministic(self, values):
        from repro.measurement.storage import _encode_column

        assert _encode_column(values) == _encode_column(list(values))


# -- stream.checkpoint ---------------------------------------------------------


class StubCatalog:
    def match(self, observation):
        if observation.domain.startswith("prot"):
            return {"StubDPS": frozenset({RefType.NS})}
        return {}


@st.composite
def engines(draw):
    horizon = draw(st.integers(min_value=2, max_value=8))
    engine = StreamEngine(
        horizon,
        catalog=StubCatalog(),
        sources=("com",),
        windows={"com": (0, horizon)},
    )
    days = draw(
        st.lists(
            st.integers(min_value=0, max_value=horizon - 1),
            unique=True,
            min_size=1,
            max_size=horizon,
        )
    )
    for day in days:
        rows = [
            DomainObservation(
                day=day,
                domain=name,
                tld="com",
                ns_names=(f"ns1.{name}.",),
                apex_addrs=("192.0.2.1",),
                asns=frozenset({64500}),
            )
            for name in draw(
                st.lists(
                    st.sampled_from(
                        ["prot-a.com", "prot-b.com", "plain-c.com"]
                    ),
                    unique=True,
                    max_size=3,
                )
            )
        ]
        engine.ingest(
            DayPartition(
                source="com",
                day=day,
                zone_size=len(rows),
                observations=rows,
            )
        )
    return engine


class TestCheckpointRoundtrip:
    @RELAXED
    @given(engine=engines())
    def test_save_load_preserves_state(self, engine):
        with tempfile.TemporaryDirectory() as directory:
            path = directory + "/ckpt"
            save_checkpoint(engine, path)
            loaded = load_checkpoint(path, catalog=StubCatalog())
        assert state_digest(loaded) == state_digest(engine)
        assert loaded.to_dict() == engine.to_dict()

    @RELAXED
    @given(engine=engines())
    def test_serialised_form_is_canonical(self, engine):
        first = json.dumps(engine.to_dict(), sort_keys=True)
        clone = StreamEngine.from_dict(
            engine.to_dict(), catalog=StubCatalog()
        )
        assert json.dumps(clone.to_dict(), sort_keys=True) == first
