"""The linter's own acceptance bar: the repo's src/ tree is clean.

This is the rule-zero property of any in-repo linter — if the tree it
ships in doesn't pass, nobody trusts its findings. It also pins the
serialization-order fixes this subsystem motivated: reintroducing an
unsorted ``.items()`` walk into a checkpoint codec fails this test
before it flakes a byte-identity test.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Analyzer, load_baseline
from repro.analysis.project import ProjectAnalyzer

REPO = Path(__file__).parents[2]
SRC = REPO / "src"


def test_src_tree_is_clean():
    result = Analyzer().analyze_paths([str(SRC)])
    assert result.files_checked > 50
    assert result.clean, "\n" + "\n".join(
        finding.format() for finding in result.findings
    )


def test_all_rules_ran():
    result = Analyzer().analyze_paths([str(SRC / "repro" / "analysis")])
    assert len(result.rules_run) == 12


def test_tree_is_interprocedurally_clean_with_shipped_baseline():
    """The acceptance bar for the interprocedural engine: src, benchmarks,
    and tests all pass the full rule set, modulo only findings the
    shipped baseline explicitly sanctions (each with a justification)."""
    result = ProjectAnalyzer(root=str(REPO)).analyze_paths(
        [str(SRC), str(REPO / "benchmarks"), str(REPO / "tests")]
    )
    assert result.files_checked > 150
    baseline = load_baseline(str(REPO / "analysis-baseline.json"))
    match = baseline.apply(result.findings)
    assert not match.new_findings, "\n" + "\n".join(
        finding.format() for finding in match.new_findings
    )
    assert not match.stale_entries, [
        entry.key() for entry in match.stale_entries
    ]


def test_project_rules_all_ran_over_src():
    result = ProjectAnalyzer(root=str(REPO)).analyze_paths([str(SRC)])
    from repro.analysis import project_rule_ids, rule_ids

    assert set(result.rules_run) >= set(project_rule_ids())
    assert set(result.rules_run) >= set(rule_ids())
