"""The linter's own acceptance bar: the repo's src/ tree is clean.

This is the rule-zero property of any in-repo linter — if the tree it
ships in doesn't pass, nobody trusts its findings. It also pins the
serialization-order fixes this subsystem motivated: reintroducing an
unsorted ``.items()`` walk into a checkpoint codec fails this test
before it flakes a byte-identity test.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Analyzer

SRC = Path(__file__).parents[2] / "src"


def test_src_tree_is_clean():
    result = Analyzer().analyze_paths([str(SRC)])
    assert result.files_checked > 50
    assert result.clean, "\n" + "\n".join(
        finding.format() for finding in result.findings
    )


def test_all_rules_ran():
    result = Analyzer().analyze_paths([str(SRC / "repro" / "analysis")])
    assert len(result.rules_run) == 8
