"""The suppression baseline: justification enforcement and ratcheting."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding


def _finding(rule="wall-clock", path="src/repro/a.py", message="m1"):
    return Finding(
        path=path, line=10, column=1, rule=rule, message=message
    )


def _entry(rule="wall-clock", path="src/repro/a.py", message="m1"):
    return BaselineEntry(
        rule=rule,
        path=path,
        message=message,
        justification="sanctioned: timestamps are the module's input",
    )


def test_apply_splits_new_suppressed_stale():
    baseline = Baseline([_entry(), _entry(rule="ghost-rule")])
    match = baseline.apply(
        [_finding(), _finding(rule="mutable-default", message="m2")]
    )
    assert [f.rule for f in match.new_findings] == ["mutable-default"]
    assert [f.rule for f in match.suppressed] == ["wall-clock"]
    assert [entry.rule for entry in match.stale_entries] == ["ghost-rule"]


def test_match_ignores_line_drift():
    baseline = Baseline([_entry()])
    drifted = Finding(
        path="src/repro/a.py", line=99, column=7,
        rule="wall-clock", message="m1",
    )
    match = baseline.apply([drifted])
    assert match.new_findings == []
    assert match.suppressed == [drifted]


def test_load_requires_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {
                        "rule": "wall-clock",
                        "path": "src/repro/a.py",
                        "message": "m1",
                        "justification": "   ",
                    }
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(path))


def test_load_rejects_placeholder(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], str(path))
    with pytest.raises(BaselineError, match="justification"):
        load_baseline(str(path))


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("[]")
    with pytest.raises(BaselineError, match="entries"):
        load_baseline(str(path))
    path.write_text("{nope")
    with pytest.raises(BaselineError, match="JSON"):
        load_baseline(str(path))


def test_round_trip_after_justifying(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], str(path))
    document = json.loads(path.read_text())
    for entry in document["entries"]:
        entry["justification"] = "reviewed 2026-08: inherent to API"
    path.write_text(json.dumps(document))
    baseline = load_baseline(str(path))
    match = baseline.apply([_finding()])
    assert match.new_findings == []
    assert match.stale_entries == []


def test_render_deduplicates_identical_keys():
    rendered = render_baseline([_finding(), _finding()])
    assert len(json.loads(rendered)["entries"]) == 1


def test_shipped_baseline_is_loadable_and_justified():
    from pathlib import Path

    shipped = Path(__file__).parents[2] / "analysis-baseline.json"
    baseline = load_baseline(str(shipped))
    # Empty or fully justified — load_baseline enforces the latter.
    assert isinstance(baseline.entries, tuple)
