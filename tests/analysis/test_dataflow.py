"""The dataflow layer: flow summaries and the taint fixpoint."""

from __future__ import annotations

import ast

from repro.analysis.dataflow import build_flow_summary
from repro.analysis.project import ProjectAnalyzer


def _summary(source: str):
    tree = ast.parse(source)
    node = tree.body[0]
    params = [argument.arg for argument in node.args.args]
    return build_flow_summary(node, params)


def _taint_lines(sources):
    result = ProjectAnalyzer().analyze_sources(sources)
    return sorted(
        (f.path, f.line)
        for f in result.findings
        if f.rule == "canonicalization-taint"
    )


def test_source_registered_for_unsorted_views():
    summary = _summary(
        "def f(d):\n"
        "    out = []\n"
        "    for k, v in d.items():\n"
        "        out.append(k)\n"
        "    return out\n"
    )
    assert len(summary.sources) == 1
    assert summary.sources[0].text == "d.items()"
    # The source flows to the return value.
    src = f"src:{summary.sources[0].id}"
    assert (src, "ret") in summary.edges


def test_sorted_sanitizes():
    summary = _summary(
        "def f(d):\n"
        "    return [k for k in sorted(d.items())]\n"
    )
    src_edges = [
        edge for edge in summary.edges if edge[0].startswith("src:")
    ]
    assert not src_edges


def test_scalar_accumulation_untracked():
    summary = _summary(
        "def f(d):\n"
        "    total = 0\n"
        "    for v in d.values():\n"
        "        total += v\n"
        "    return total\n"
    )
    src = f"src:{summary.sources[0].id}"
    assert (src, "ret") not in summary.edges


def test_taint_direct_sink():
    lines = _taint_lines(
        {
            "repro/demo/direct.py": (
                "import json\n"
                "def dump(d):\n"
                "    return json.dumps(list(d.keys()))\n"
            )
        }
    )
    assert lines == [("repro/demo/direct.py", 3)]


def test_taint_through_return_value():
    lines = _taint_lines(
        {
            "repro/demo/producer.py": (
                "def rows(d):\n"
                "    return [k for k in d.keys()]\n"
            ),
            "repro/demo/consumer.py": (
                "import json\n"
                "from repro.demo.producer import rows\n"
                "def dump(d):\n"
                "    return json.dumps(rows(d))\n"
            ),
        }
    )
    assert lines == [("repro/demo/producer.py", 2)]


def test_taint_through_discovered_project_sink():
    lines = _taint_lines(
        {
            "repro/demo/codec.py": (
                "import json\n"
                "def canonical(payload):\n"
                "    return json.dumps(payload, sort_keys=True)\n"
            ),
            "repro/demo/caller.py": (
                "from repro.demo.codec import canonical\n"
                "def publish(d):\n"
                "    values = list(d.values())\n"
                "    return canonical(values)\n"
            ),
        }
    )
    assert lines == [("repro/demo/caller.py", 3)]


def test_taint_through_container_store():
    lines = _taint_lines(
        {
            "repro/demo/store.py": (
                "import json\n"
                "def dump(d):\n"
                "    out = []\n"
                "    for k in d.keys():\n"
                "        out.append(k)\n"
                "    return json.dumps(out)\n"
            )
        }
    )
    assert lines == [("repro/demo/store.py", 4)]


def test_sorted_interprocedural_is_clean():
    lines = _taint_lines(
        {
            "repro/demo/cleaned.py": (
                "import json\n"
                "def rows(d):\n"
                "    return [k for k in d.keys()]\n"
                "def dump(d):\n"
                "    return json.dumps(sorted(rows(d)))\n"
            )
        }
    )
    assert lines == []


def test_order_insensitive_consumer_is_clean():
    lines = _taint_lines(
        {
            "repro/demo/count.py": (
                "import json\n"
                "def dump(d):\n"
                "    return json.dumps(len(d.keys()))\n"
            )
        }
    )
    assert lines == []
