"""The incremental cache: warm hits, exact invalidation, equivalence."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cache import AnalysisCache, project_fingerprint
from repro.analysis.project import ProjectAnalyzer


def _write_tree(root: Path) -> None:
    package = root / "src" / "repro" / "demo"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "producer.py").write_text(
        "def rows(d):\n"
        "    return [k for k in d.keys()]\n"
    )
    (package / "consumer.py").write_text(
        "import json\n"
        "from repro.demo.producer import rows\n"
        "def dump(d):\n"
        "    return json.dumps(rows(d))\n"
    )


def _analyzer(root: Path) -> ProjectAnalyzer:
    return ProjectAnalyzer(
        cache=AnalysisCache(str(root / ".cache")),
        jobs=1,
        root=str(root),
    )


def test_warm_run_hits_project_cache(tmp_path):
    _write_tree(tmp_path)
    src = str(tmp_path / "src")
    first = _analyzer(tmp_path)
    cold = first.analyze_paths([src])
    assert not first.cache.stats.project_hit
    assert first.cache.stats.module_misses == 3
    second = _analyzer(tmp_path)
    warm = second.analyze_paths([src])
    assert second.cache.stats.project_hit
    assert warm.findings == cold.findings
    assert warm.files_checked == cold.files_checked


def test_one_changed_file_invalidates_exactly(tmp_path):
    _write_tree(tmp_path)
    src = str(tmp_path / "src")
    _analyzer(tmp_path).analyze_paths([src])
    # Fix the producer: the cross-module finding must disappear even
    # though the consumer's bytes (and cached record) are unchanged.
    (tmp_path / "src" / "repro" / "demo" / "producer.py").write_text(
        "def rows(d):\n"
        "    return [k for k in sorted(d.keys())]\n"
    )
    analyzer = _analyzer(tmp_path)
    result = analyzer.analyze_paths([src])
    assert not analyzer.cache.stats.project_hit
    assert analyzer.cache.stats.module_hits == 2
    assert analyzer.cache.stats.module_misses == 1
    assert result.findings == []


def test_cold_finding_survives_cache_round_trip(tmp_path):
    _write_tree(tmp_path)
    src = str(tmp_path / "src")
    cold = _analyzer(tmp_path).analyze_paths([src])
    assert [f.rule for f in cold.findings] == ["canonicalization-taint"]
    warm = _analyzer(tmp_path).analyze_paths([src])
    assert warm.findings == cold.findings


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    _write_tree(tmp_path)
    src = str(tmp_path / "src")
    _analyzer(tmp_path).analyze_paths([src])
    for path in (tmp_path / ".cache").rglob("*.pkl"):
        path.write_bytes(b"not a pickle")
    analyzer = _analyzer(tmp_path)
    result = analyzer.analyze_paths([src])
    assert analyzer.cache.stats.module_misses == 3
    assert [f.rule for f in result.findings] == ["canonicalization-taint"]


def test_fingerprint_is_order_independent_and_content_sensitive():
    base = [("a.py", "1" * 64, "src"), ("b.py", "2" * 64, "src")]
    assert project_fingerprint(base) == project_fingerprint(
        list(reversed(base))
    )
    changed = [("a.py", "f" * 64, "src"), ("b.py", "2" * 64, "src")]
    assert project_fingerprint(base) != project_fingerprint(changed)
    reprofiled = [("a.py", "1" * 64, "tests"), ("b.py", "2" * 64, "src")]
    assert project_fingerprint(base) != project_fingerprint(reprofiled)


def test_no_cache_analyzer_still_works(tmp_path):
    _write_tree(tmp_path)
    result = ProjectAnalyzer(jobs=1, root=str(tmp_path)).analyze_paths(
        [str(tmp_path / "src")]
    )
    assert [f.rule for f in result.findings] == ["canonicalization-taint"]
