"""Each rule, demonstrated on its fixture module.

Fixtures carry ``# expect: <rule-id>`` markers on the exact lines that
must produce findings; the test asserts the analyzer's findings match
the marker set exactly — no misses, no extras, no off-by-one lines.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.analysis import Analyzer, logical_module
from repro.analysis.rules import default_rules, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

_MARKER_RE = re.compile(
    r"#\s*expect:\s*(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)

#: fixture file → logical module path it is analyzed under.
CASES = [
    ("unsorted_iteration.py", "repro/stream/fixture_unsorted.py"),
    ("wall_clock.py", "repro/core/fixture_wall_clock.py"),
    ("unseeded_hash.py", "repro/stream/fixture_unseeded_hash.py"),
    ("float_accumulation.py", "repro/sketch/fixture_float_accum.py"),
    ("float_equality.py", "repro/core/stats.py"),
    ("swallowed_exception.py", "repro/stream/fixture_swallowed.py"),
    ("mutable_default.py", "repro/reporting/fixture_mutable.py"),
    ("schema_drift.py", "repro/core/fixture_schema.py"),
    ("unordered_futures.py", "repro/parallel/fixture_futures.py"),
    ("direct_pool_use.py", "repro/measurement/fixture_pool.py"),
    ("row_boxing.py", "repro/measurement/fixture_row_boxing.py"),
    ("segment_decode.py", "repro/store/fixture_segment_decode.py"),
]


def expected_markers(source: str) -> List[Tuple[int, str]]:
    expected = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(text)
        if match is None:
            continue
        for rule_id in match.group("rules").split(","):
            expected.append((lineno, rule_id.strip()))
    return sorted(expected)


@pytest.mark.parametrize("filename,module", CASES)
def test_fixture_findings_match_markers(filename, module):
    source = (FIXTURES / filename).read_text()
    markers = expected_markers(source)
    assert markers, f"fixture {filename} has no # expect markers"
    result = Analyzer().analyze_source(source, filename, module=module)
    found = sorted((f.line, f.rule) for f in result.findings)
    assert found == markers, "\n".join(
        f.format() for f in result.findings
    )


def test_every_rule_has_a_fixture():
    covered = set()
    for filename, module in CASES:
        source = (FIXTURES / filename).read_text()
        covered.update(rule for _, rule in expected_markers(source))
    assert covered == set(rule_ids())


def test_rule_metadata():
    rules = default_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert all(rule.summary for rule in rules)


def test_broad_except_scoped_to_ingest_paths():
    source = (FIXTURES / "swallowed_exception.py").read_text()
    result = Analyzer().analyze_source(
        source, "swallowed_exception.py", module="repro/core/fixture.py"
    )
    rules = [f.rule for f in result.findings]
    # Off the ingest paths only the bare except remains flagged.
    assert rules == ["swallowed-exception"]
    assert "except:" in source.splitlines()[result.findings[0].line - 1]


def test_float_equality_scoped_to_stats_modules():
    source = (FIXTURES / "float_equality.py").read_text()
    result = Analyzer().analyze_source(
        source, "float_equality.py", module="repro/core/detection.py"
    )
    assert not any(f.rule == "float-equality" for f in result.findings)


def test_wall_clock_scoped_to_deterministic_packages():
    source = (FIXTURES / "wall_clock.py").read_text()
    result = Analyzer().analyze_source(
        source, "wall_clock.py", module="repro/reporting/fixture.py"
    )
    assert not result.findings


def test_unordered_futures_scoped_to_parallel_package():
    source = (FIXTURES / "unordered_futures.py").read_text()
    result = Analyzer().analyze_source(
        source, "unordered_futures.py", module="repro/stream/fixture.py"
    )
    assert not any(f.rule == "unordered-futures" for f in result.findings)


def test_row_boxing_scoped_to_batch_first_packages():
    source = (FIXTURES / "row_boxing.py").read_text()
    # Outside the columnar hot paths (measurement, stream) the same
    # code is fine — e.g. reporting builds rows for human output.
    result = Analyzer().analyze_source(
        source, "row_boxing.py", module="repro/reporting/fixture.py"
    )
    assert not any(
        f.rule == "row-boxing-in-hot-path" for f in result.findings
    )
    # Under repro/stream it fires just like under repro/measurement.
    result = Analyzer().analyze_source(
        source, "row_boxing.py", module="repro/stream/fixture.py"
    )
    assert any(
        f.rule == "row-boxing-in-hot-path" for f in result.findings
    )


def test_segment_decode_scoped_to_store_package():
    source = (FIXTURES / "segment_decode.py").read_text()
    # Outside repro/store the same code is fine — e.g. reporting may
    # legitimately read JSON.
    result = Analyzer().analyze_source(
        source, "segment_decode.py", module="repro/reporting/fixture.py"
    )
    assert not any(
        f.rule == "decode-in-segment-hot-path" for f in result.findings
    )
    # The manifest and migration modules are exempt metadata paths.
    for exempt in ("repro/store/manifest.py", "repro/store/migrate.py"):
        result = Analyzer().analyze_source(
            source, "segment_decode.py", module=exempt
        )
        assert not any(
            f.rule == "decode-in-segment-hot-path" for f in result.findings
        )


def test_parallel_executor_is_clean():
    # The real executor must satisfy its own rule.
    path = (
        Path(__file__).resolve().parents[2]
        / "src" / "repro" / "parallel" / "executor.py"
    )
    result = Analyzer().analyze_source(
        path.read_text(), str(path), module="repro/parallel/executor.py"
    )
    assert not result.findings


def test_logical_module_mapping():
    assert (
        logical_module("src/repro/stream/state.py")
        == "repro/stream/state.py"
    )
    assert (
        logical_module("/checkout/src/repro/core/stats.py")
        == "repro/core/stats.py"
    )
    assert logical_module("scripts/tool.py") == "tool.py"


def test_parse_error_becomes_finding():
    result = Analyzer().analyze_source("def broken(:\n", "broken.py")
    assert [f.rule for f in result.findings] == ["parse-error"]
    assert result.files_checked == 1
