"""The SARIF 2.1.0 reporter: structure, determinism, CLI round-trip."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import all_rule_descriptions, render_sarif
from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisResult
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _result() -> AnalysisResult:
    result = AnalysisResult(
        files_checked=2,
        rules_run=("wall-clock", "canonicalization-taint"),
    )
    result.findings = [
        Finding(
            path="src/repro/demo.py",
            line=3,
            column=5,
            rule="canonicalization-taint",
            message="iteration order leaks",
        ),
        Finding(
            path="src/repro/other.py",
            line=9,
            column=1,
            rule="parse-error",
            message="could not parse file: bad syntax",
        ),
    ]
    return result


def test_sarif_shape():
    document = json.loads(render_sarif(_result()))
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    declared = {rule["id"] for rule in driver["rules"]}
    # Rules that ran are declared even without findings.
    assert {"wall-clock", "canonicalization-taint", "parse-error"} <= (
        declared
    )
    results = run["results"]
    assert len(results) == 2
    first = results[0]
    assert first["ruleId"] == "canonicalization-taint"
    assert first["level"] == "warning"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/demo.py"
    assert location["region"] == {"startLine": 3, "startColumn": 5}
    # ruleIndex points back into the declared rules array.
    assert (
        driver["rules"][first["ruleIndex"]]["id"]
        == "canonicalization-taint"
    )
    # Parse errors are errors, not warnings.
    assert results[1]["level"] == "error"


def test_sarif_is_deterministic():
    descriptions = all_rule_descriptions()
    assert render_sarif(_result(), descriptions) == render_sarif(
        _result(), descriptions
    )


def test_sarif_rule_descriptions_included():
    document = json.loads(
        render_sarif(_result(), all_rule_descriptions())
    )
    rules = document["runs"][0]["tool"]["driver"]["rules"]
    by_id = {rule["id"]: rule for rule in rules}
    assert "shortDescription" in by_id["canonicalization-taint"]


def test_cli_sarif_output_file(tmp_path, capsys):
    out = tmp_path / "report.sarif"
    code = main(
        [
            "analyze",
            "--format", "sarif",
            "--output", str(out),
            "--no-cache",
            str(FIXTURES / "mutable_default.py"),
        ]
    )
    assert code == 1  # findings still set the exit code
    document = json.loads(out.read_text())
    results = document["runs"][0]["results"]
    assert any(r["ruleId"] == "mutable-default" for r in results)
    # The report went to the file, not stdout.
    assert capsys.readouterr().out == ""
