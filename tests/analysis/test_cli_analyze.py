"""The ``repro analyze`` subcommand: exit codes and report formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

REPO = Path(__file__).parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def test_analyze_src_exits_clean(capsys):
    assert main(["analyze", str(REPO / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_analyze_bad_file_exits_nonzero(capsys):
    # Fixture paths fall outside any repro package, so only unscoped
    # rules apply — mutable-default is one of them.
    code = main(["analyze", str(FIXTURES / "mutable_default.py")])
    assert code == 1
    out = capsys.readouterr().out
    assert "mutable-default" in out
    assert "mutable_default.py:6:" in out


def test_analyze_json_report(capsys):
    code = main(
        ["analyze", "--format", "json", str(FIXTURES / "schema_drift.py")]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["finding_count"] == len(payload["findings"]) > 0
    assert all(f["rule"] == "schema-drift" for f in payload["findings"])
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "column", "rule", "message"}


def test_analyze_rule_filter(capsys):
    code = main(
        [
            "analyze",
            "--rule", "swallowed-exception",
            str(FIXTURES / "mutable_default.py"),
        ]
    )
    assert code == 0  # mutable-default findings filtered out
    assert "0 findings" in capsys.readouterr().out


def test_analyze_unknown_rule_is_an_error(capsys):
    code = main(["analyze", "--rule", "no-such-rule", str(FIXTURES)])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_analyze_list_rules(capsys):
    assert main(["analyze", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "unsorted-iteration", "wall-clock", "float-equality",
        "swallowed-exception", "mutable-default", "schema-drift",
    ):
        assert rule_id in out


def test_analyze_missing_path(capsys):
    assert main(["analyze", "does/not/exist"]) == 2
    assert "error" in capsys.readouterr().err
