"""The symbol table and call graph: resolution, edges, reachability."""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    CallGraph,
    build_module_symbols,
    call_symbol,
    dotted_of,
)


def _graph(sources):
    modules = {}
    for module, source in sources.items():
        tree = ast.parse(source)
        modules[module] = build_module_symbols(tree, module, module)
    return CallGraph(modules)


def test_call_symbol_shapes():
    def sym(text):
        return call_symbol(ast.parse(text, mode="eval").body)

    assert sym("json.dumps") == "json.dumps"
    assert sym("self.swapper.rebuild") == "self.swapper.rebuild"
    assert sym("f()") is None
    assert sym("f().close") == ".close"


def test_dotted_of():
    assert dotted_of("repro/stream/engine.py") == "repro.stream.engine"
    assert dotted_of("repro/serve/__init__.py") == "repro.serve"
    assert dotted_of("tests/x/test_y.py") == "tests.x.test_y"


def test_self_method_dispatch_and_edges():
    graph = _graph(
        {
            "repro/demo/a.py": (
                "class Engine:\n"
                "    def step(self):\n"
                "        return self.flush()\n"
                "    def flush(self):\n"
                "        return 1\n"
            )
        }
    )
    edges = graph.edges["repro.demo.a.Engine.step"]
    assert edges == {"repro.demo.a.Engine.flush"}


def test_cross_module_import_resolution():
    graph = _graph(
        {
            "repro/demo/util.py": "def helper():\n    return 1\n",
            "repro/demo/main.py": (
                "from repro.demo.util import helper\n"
                "def run():\n"
                "    return helper()\n"
            ),
        }
    )
    assert graph.edges["repro.demo.main.run"] == {
        "repro.demo.util.helper"
    }
    assert "repro.demo.main.run" in graph.callers[
        "repro.demo.util.helper"
    ]


def test_declared_type_method_dispatch():
    graph = _graph(
        {
            "repro/demo/svc.py": (
                "class Store:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "def lookup(store: Store, key):\n"
                "    return store.get(key)\n"
                "def build():\n"
                "    store = Store()\n"
                "    return store.get('x')\n"
            )
        }
    )
    assert graph.edges["repro.demo.svc.lookup"] == {
        "repro.demo.svc.Store.get"
    }
    # Constructor inference: store = Store() types the local.
    assert "repro.demo.svc.Store.get" in graph.edges[
        "repro.demo.svc.build"
    ]


def test_attr_type_from_init():
    graph = _graph(
        {
            "repro/demo/holder.py": (
                "import threading\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
            )
        }
    )
    cls = graph.classes["repro.demo.holder.Holder"]
    assert cls.attr_types["_lock"] == "threading.Lock"


def test_exception_classification_transitive():
    graph = _graph(
        {
            "repro/demo/err.py": (
                "class Base(RuntimeError):\n"
                "    pass\n"
                "class Child(Base):\n"
                "    pass\n"
                "class Plain:\n"
                "    pass\n"
            )
        }
    )
    assert graph.is_exception_class(
        graph.classes["repro.demo.err.Child"]
    )
    assert not graph.is_exception_class(
        graph.classes["repro.demo.err.Plain"]
    )
    assert graph.derives_from(
        graph.classes["repro.demo.err.Child"], "Base"
    )


def test_reachable_modules_through_imports_and_calls():
    graph = _graph(
        {
            "repro/demo/core.py": "def center():\n    return 1\n",
            "repro/demo/user.py": (
                "from repro.demo.core import center\n"
                "def outer():\n"
                "    return center()\n"
            ),
            "repro/demo/island.py": "def alone():\n    return 2\n",
        }
    )
    reachable = graph.reachable_modules({"repro/demo/core.py"})
    assert "repro/demo/user.py" in reachable
    assert "repro/demo/island.py" not in reachable


def test_transitive_callers():
    graph = _graph(
        {
            "repro/demo/chain.py": (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return 1\n"
                "def unrelated():\n    return 2\n"
            )
        }
    )
    callers = graph.transitive_callers({"repro.demo.chain.c"})
    assert "repro.demo.chain.a" in callers
    assert "repro.demo.chain.b" in callers
    assert "repro.demo.chain.unrelated" not in callers


def test_symbols_are_picklable():
    import pickle

    graph = _graph(
        {
            "repro/demo/p.py": (
                "class C:\n"
                "    def __init__(self, x: int):\n"
                "        self.x = x\n"
                "def f(c: C):\n"
                "    return c.x\n"
            )
        }
    )
    table = graph.modules["repro/demo/p.py"]
    assert pickle.loads(pickle.dumps(table)).dotted == "repro.demo.p"
