"""Fixture for the schema-drift rule (applies on every path).

Findings anchor to the ``__init__`` assignment of the field the codec
pair forgot, so the fix (and any suppression) happens where the field
is declared.
"""


class DriftingState:
    """_seen is never encoded; _horizon is encoded but never decoded."""

    def __init__(self, horizon):
        self._horizon = horizon  # expect: schema-drift
        self._totals = {}
        self._seen = set()  # expect: schema-drift

    def to_dict(self):
        return {
            "horizon": self._horizon,
            "totals": dict(sorted(self._totals.items())),
        }

    @classmethod
    def from_dict(cls, payload):
        state = cls(720)
        state._totals = dict(sorted(payload["totals"].items()))
        return state


class CoveredState:
    """Every field crosses the checkpoint boundary in both directions."""

    def __init__(self, horizon):
        self.horizon = horizon
        self._totals = {}

    def to_dict(self):
        return {
            "horizon": self.horizon,
            "totals": dict(sorted(self._totals.items())),
        }

    @classmethod
    def from_dict(cls, payload):
        state = cls(payload["horizon"])
        state._totals = dict(sorted(payload["totals"].items()))
        return state


class DerivedFieldState:
    """A derived cache opts out with a suppression on its assignment."""

    def __init__(self, horizon):
        self.horizon = horizon
        self._cache = {}  # repro: ignore[schema-drift]

    def to_dict(self):
        return {"horizon": self.horizon}

    @classmethod
    def from_dict(cls, payload):
        return cls(payload["horizon"])


class NotACodec:
    """No from_dict → the rule has no schema pair to cross-check."""

    def __init__(self):
        self._anything = []

    def to_dict(self):
        return {}
