"""Fixture for the float-equality rule.

Analyzed under ``repro/core/stats.py`` — one of the statistics paths
where float ``==``/``!=`` comparisons are banned.
"""

import math


def classify(value, count, factor):
    if value == 0.5:  # expect: float-equality
        return "half"
    if factor != -1.0:  # expect: float-equality
        return "scaled"
    if value == float(count):  # expect: float-equality
        return "integral"
    return "other"


def chained(low, mid, high):
    return low < mid == 0.25 < high  # expect: float-equality


def good(value, count, truth):
    if count == 0:  # integer comparison: fine
        return None
    if value < 0.5 or value >= 0.75:  # ordering comparisons: fine
        return "bounded"
    if math.isclose(value, truth, rel_tol=1e-9):  # the sanctioned way
        return "match"
    return None
