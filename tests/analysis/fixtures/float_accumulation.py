"""Fixture: float arithmetic on sketch mutation paths."""


class DriftySketch:
    def __init__(self, width: int):
        self.cells = [0] * width
        self.total = 0
        self.weight = 0

    def update(self, index: int, count: int) -> None:
        self.cells[index] += count * 1.5  # expect: float-accumulation
        self.total += count

    def observe(self, index: int, count: int) -> None:
        share = count / len(self.cells)  # expect: float-accumulation
        self.weight += int(share)

    def merge(self, other: "DriftySketch") -> None:
        self.total += float(other.total)  # expect: float-accumulation

    def add(self, index: int) -> None:
        # Integer-only mutation: no finding.
        self.cells[index] += 1
        self.total += 1

    def estimate(self, index: int) -> float:
        # Estimators may divide freely; the rule only covers mutators.
        return self.cells[index] / max(1, self.total)
