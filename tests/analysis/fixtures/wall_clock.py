"""Fixture for the wall-clock rule.

Analyzed under ``repro/core/fixture_wall_clock.py`` — a deterministic
package, where wall-clock reads and the module-global RNG are banned.
"""

import random
import time
from datetime import date, datetime
from random import random as uniform01  # expect: wall-clock
from time import monotonic  # expect: wall-clock


def stamp_rows(rows):
    started = time.time()  # expect: wall-clock
    deadline = time.monotonic() + 5  # expect: wall-clock
    return rows, started, deadline


def label_run():
    today = date.today()  # expect: wall-clock
    at = datetime.now()  # expect: wall-clock
    return today, at, uniform01(), monotonic()


def jitter(values):
    return [value + random.random() for value in values]  # expect: wall-clock


def shuffle_deterministically(values, seed):
    rng = random.Random(seed)
    shuffled = list(values)
    rng.shuffle(shuffled)
    return shuffled


def parse_timestamp(text):
    # Constructing a datetime from input data is fine; only *reading*
    # the clock is nondeterministic.
    return datetime.fromisoformat(text)
