"""Fixture: exception flow across the pool boundary, analyzed under
``repro/parallel/fixture_errors.py``. Worker-raised errors must
survive pickling; caught faults must be accounted."""


class FaultError(RuntimeError):
    pass


class ShardError(RuntimeError):
    def __init__(self, shard, detail):
        super().__init__(f"shard {shard}: {detail}")
        self.shard = shard
        self.detail = detail


class SafeShardError(RuntimeError):
    def __init__(self, shard, detail):
        super().__init__(f"shard {shard}: {detail}")
        self.shard = shard
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.shard, self.detail))


class FaultLog:
    def record_fault(self, error):
        pass


def explode(shard):
    raise ShardError(shard, "boom")  # expect: exception-flow


def explode_safely(shard):
    raise SafeShardError(shard, "boom")


def swallow(shards):
    done = 0
    for shard in shards:
        try:
            done += shard
        except FaultError:  # expect: exception-flow
            continue
    return done


def account(shards, log: FaultLog):
    done = 0
    for shard in shards:
        try:
            done += shard
        except FaultError as error:
            log.record_fault(error)
    return done
