"""Fixture: order-taint producers, analyzed under
``repro/measurement/fixture_producer.py`` together with
``taint_sink.py`` — the taint crosses the module boundary."""

from typing import Dict, List


def rows(counts: Dict[str, int]) -> List[str]:
    out: List[str] = []
    for name, value in counts.items():  # expect: canonicalization-taint
        out.append(f"{name}={value}")
    return out


def rows_sorted(counts: Dict[str, int]) -> List[str]:
    return [f"{k}={v}" for k, v in sorted(counts.items())]


def total(counts: Dict[str, int]) -> int:
    # Scalar accumulation over .values() is order-insensitive: clean.
    amount = 0
    for value in counts.values():
        amount += value
    return amount
