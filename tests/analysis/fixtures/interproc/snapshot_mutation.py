"""Fixture: snapshot/index mutation, analyzed under
``repro/serve/fixture_swap.py``. Published state may only change at
the designated publish points."""


class QueryIndex:
    def __init__(self, rows):
        self.rows = dict(rows)

    def lookup(self, key):
        return self.rows.get(key)


class DaySwapper:
    def __init__(self):
        self._index = QueryIndex(())

    def current_index(self):
        return self._index

    def rebuild(self, rows):
        self._index = QueryIndex(rows)

    def poke(self, rows):
        self._index = QueryIndex(rows)  # expect: snapshot-mutation


def tamper(rows) -> dict:
    index = QueryIndex(rows)
    index.rows = {}  # expect: snapshot-mutation
    return index.rows


def read_only(rows) -> object:
    index = QueryIndex(rows)
    return index.lookup("example.nl")
