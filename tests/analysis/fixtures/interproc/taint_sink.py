"""Fixture: serialization sinks, analyzed under
``repro/reporting/fixture_sink.py``. ``canonical`` becomes a sink *by
discovery* (its parameter reaches ``json.dumps``), so ``publish`` is
flagged without ``canonical`` ever being listed as a sink."""

import json
from typing import Dict

from repro.measurement.fixture_producer import rows, rows_sorted


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def encode(counts: Dict[str, int]) -> str:
    return json.dumps(rows(counts))


def encode_sorted(counts: Dict[str, int]) -> str:
    return json.dumps(rows_sorted(counts))


def publish(counts: Dict[str, int]) -> str:
    keys = list(counts.keys())  # expect: canonicalization-taint
    return canonical(keys)


def publish_sizes(counts: Dict[str, int]) -> str:
    # len() is order-insensitive: clean.
    return canonical(len(counts))
