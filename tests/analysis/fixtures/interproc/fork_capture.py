"""Fixture: fork-boundary capture, analyzed under
``repro/parallel/fixture_fork.py``. ``ShardWriter`` is fork-unsafe
*transitively* — it holds a ``LockedCounter`` which holds the lock."""

import threading

from repro.parallel.executor import ShardedExecutor


class LockedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0


class ShardWriter:
    def __init__(self):
        self.counter = LockedCounter()


class PlainConfig:
    def __init__(self):
        self.limit = 8


def _task(shard):
    return shard


def run_bad(shards):
    counter = LockedCounter()
    executor = ShardedExecutor(2)
    return executor.map_shards(  # expect: fork-unsafe-capture
        _task, shards, initargs=(counter,)
    )


def run_transitive(shards):
    writer = ShardWriter()
    executor = ShardedExecutor(2)
    return executor.map_shards(  # expect: fork-unsafe-capture
        _task, shards, initargs=(writer,)
    )


def run_ok(shards):
    config = PlainConfig()
    executor = ShardedExecutor(2)
    return executor.map_shards(_task, shards, initargs=(config.limit,))
