"""Fixture: blocking calls under ``async def``, analyzed under
``repro/serve/fixture_handlers.py``. ``handle_reload`` blocks two
frames down — only the call graph sees it."""

import time


def _read_config(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_limit(text: str) -> int:
    return int(text.strip())


async def handle_query(writer) -> None:
    time.sleep(0.01)  # expect: async-blocking
    writer.close()


async def handle_reload(path: str) -> int:
    text = _read_config(path)  # expect: async-blocking
    return _parse_limit(text)


async def handle_ok(loop, path: str) -> str:
    return await loop.run_in_executor(None, _read_config, path)


async def handle_pure(payload: dict) -> int:
    return _parse_limit(payload.get("limit", "8"))
