"""Fixture for the mutable-default rule (applies on every path)."""

from collections import defaultdict


def accumulate(value, bucket=[]):  # expect: mutable-default
    bucket.append(value)
    return bucket


def index_rows(rows, by=dict()):  # expect: mutable-default
    for row in rows:
        by[row[0]] = row
    return by


def tally(events, *, counts=defaultdict(int)):  # expect: mutable-default
    for event in events:
        counts[event] += 1
    return counts


def label(names, seen={"root"}):  # expect: mutable-default
    seen.update(names)
    return seen


def good(value, bucket=None, names=(), flags=frozenset()):
    if bucket is None:
        bucket = []
    bucket.append((value, names, flags))
    return bucket
