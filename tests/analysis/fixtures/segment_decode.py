"""Fixture for the ``decode-in-segment-hot-path`` rule.

Analyzed as a ``repro/store`` module (see CASES in ``test_rules.py``),
where column pages are struct-framed binary and the read path must
decode a whole page once, never per row and never through an
object-serialization library.
"""

import json  # expect: decode-in-segment-hot-path
import struct

from pickle import loads  # expect: decode-in-segment-hot-path


def page_cells_via_json(blob):
    return json.loads(blob)  # expect: decode-in-segment-hot-path


def page_cells_via_pickle(blob):
    return loads(blob)


def per_row_parse_loop(pages, row_count):
    cells = []
    for index in range(row_count):  # expect: decode-in-segment-hot-path
        cells.append(pages[index].decode("utf-8"))
    return cells


def per_row_parse_comprehension(view, ref):
    return [  # expect: decode-in-segment-hot-path
        struct.unpack("<I", view[4 * i: 4 * i + 4])
        for i in range(ref.rows)
    ]


def directory_parse_loop(cursor, column_count):
    # Per-COLUMN parsing (a handful of directory entries per open) is
    # the sanctioned shape; only per-ROW bounds are flagged.
    return [
        struct.unpack("<QQ", cursor.take(16))
        for _ in range(column_count)
    ]


def translate_once(entries, indexes):
    # The sanctioned hot-path shape: the page was decoded wholesale and
    # rows map through the dictionary index list.
    return [entries[i] for i in indexes]


def row_lookup_loop(columns, rows):
    # A range(rows) loop that only *reads* decoded cells is fine — the
    # parsing already happened page-at-a-time.
    return [columns["domain"][i] for i in range(rows)]
