"""Fixture: process-pool imports outside repro.parallel.

Sharded work anywhere else in the tree must go through
``repro.parallel.backend.resolve_backend`` so the pass honours
``--backend``/``REPRO_BACKEND`` and keeps the byte-identity and
fault-retry contracts. Direct pool imports bypass all of that.
"""

import multiprocessing  # expect: direct-pool-use
import multiprocessing.pool  # expect: direct-pool-use
import concurrent.futures  # expect: direct-pool-use
from concurrent.futures import ProcessPoolExecutor  # expect: direct-pool-use
from multiprocessing import Pool  # expect: direct-pool-use

from repro.parallel.backend import resolve_backend  # fine: the front door


def flagged_fan_out(jobs):
    with Pool(processes=4) as pool:
        return pool.map(len, jobs)


def flagged_futures_fan_out(jobs):
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(len, jobs))


def sanctioned_fan_out(task, shards):
    executor = resolve_backend("local", workers=4)
    return executor.map_shards(task, shards)


def uses_modules(jobs):
    count = multiprocessing.cpu_count()
    queue = multiprocessing.pool.ThreadPool
    futures = concurrent.futures.Future
    return count, queue, futures, jobs
