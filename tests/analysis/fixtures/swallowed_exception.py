"""Fixture for the swallowed-exception rule.

Analyzed under ``repro/stream/fixture_swallowed.py`` — an ingest path,
where broad handlers that never re-raise are banned. The bare ``except:``
finding applies on *any* path; the test re-analyzes this fixture under a
non-ingest module to check the broad-except findings are scoped.
"""


def parse_row(text):
    try:
        return int(text)
    except:  # expect: swallowed-exception  # noqa: E722
        return None


def ingest_partition(rows, sink):
    applied = 0
    for row in rows:
        try:
            sink.append(parse_row(row))
            applied += 1
        except Exception:  # expect: swallowed-exception
            continue
    return applied


def ingest_with_tuple(rows):
    try:
        return [parse_row(row) for row in rows]
    except (ValueError, Exception):  # expect: swallowed-exception
        return []


def quarantine_partition(partition, quarantine):
    # Broad, but re-raises after recording: the error is not swallowed.
    try:
        return partition.decode()
    except Exception:
        quarantine.add(partition.day)
        raise


def narrow_handler(text):
    # Narrow excepts are an explicit decision about one failure mode.
    try:
        return int(text)
    except ValueError:
        return None
