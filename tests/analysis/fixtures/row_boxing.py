"""Fixture for the ``row-boxing-in-hot-path`` rule.

Analyzed as a ``repro/measurement`` module (see CASES in
``test_rules.py``), where the data plane is columnar and per-row
``DomainObservation`` construction inside loops is a smell.
"""

from repro.measurement.snapshot import DomainObservation


def boxed_in_loop(rows):
    out = []
    for day, domain in rows:
        out.append(
            DomainObservation(  # expect: row-boxing-in-hot-path
                day=day,
                domain=domain,
                tld="com",
                ns_names=(),
                apex_addrs=(),
                www_cnames=(),
                www_addrs=(),
            )
        )
    return out


def boxed_in_comprehension(rows):
    return [
        DomainObservation(day=d, domain=n, tld="com")  # expect: row-boxing-in-hot-path
        for d, n in rows
    ]


def boxed_in_while(queue):
    out = []
    while queue:
        day, domain = queue.pop()
        obs = DomainObservation(  # expect: row-boxing-in-hot-path
            day=day, domain=domain, tld="com"
        )
        out.append(obs)
    return out


def boxed_via_attribute(snapshot, rows):
    # Attribute-style constructor calls count too.
    return [
        snapshot.DomainObservation(day=d)  # expect: row-boxing-in-hot-path
        for d in rows
    ]


def single_row(day, domain):
    # Not in a loop: a one-off construction is fine.
    return DomainObservation(day=day, domain=domain, tld="com")


def sanctioned_lazy_view(rows):
    # The batch plane's compatibility shims may box per row when the
    # caller asks for row objects; those sites carry a suppression.
    return [
        DomainObservation(day=d)  # repro: ignore[row-boxing-in-hot-path]
        for d in rows
    ]
