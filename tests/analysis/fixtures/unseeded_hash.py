"""Fixture: builtin hash() in a deterministic package."""


def bucket_of(key: str, width: int) -> int:
    return hash(key) % width  # expect: unseeded-hash


def pair_bucket(provider: str, day: int, width: int) -> int:
    value = hash((provider, day))  # expect: unseeded-hash
    return value % width


def stable_bucket(key: str, width: int, digest64) -> int:
    # A keyed digest is the sanctioned spelling: no finding.
    return digest64(key) % width


class Summary:
    def __init__(self, width: int):
        self.width = width
        self.cells = [0] * width

    def update(self, key: str) -> None:
        self.cells[hash(key) % self.width] += 1  # expect: unseeded-hash

    def __hash__(self) -> int:
        # Defining __hash__ is fine; only calling the builtin is banned.
        return id(self)
