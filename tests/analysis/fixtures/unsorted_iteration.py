"""Fixture for the unsorted-iteration rule.

Analyzed under the logical path ``repro/stream/fixture_unsorted.py``.
Lines carrying ``# expect:`` markers must produce exactly those
findings; everything else must stay silent.
"""


class Codec:
    """Defines both to_dict and from_dict → every method is in scope."""

    def __init__(self):
        self._totals = {"b": 2, "a": 1}
        self._days = {}

    def to_dict(self):
        return {
            "totals": {k: v for k, v in self._totals.items()},  # expect: unsorted-iteration
            "days": dict(sorted(self._days.items())),
        }

    @classmethod
    def from_dict(cls, payload):
        state = cls()
        for key, value in payload["totals"].items():  # expect: unsorted-iteration
            state._totals[key] = value
        state._days = dict(payload["days"])
        return state

    def any_method(self, extra):
        out = []
        for key in extra.keys():  # expect: unsorted-iteration
            out.append(key)
        return out


def checkpoint_everything(registry):
    return [key for key in registry.keys()]  # expect: unsorted-iteration


def series_to_dict(series):
    return {k: v for k, v in sorted(series.items())}


def summarize(mapping):
    # Not a serialization-shaped name and not inside a codec class:
    # arbitrary iteration order is allowed here.
    return {k: v for k, v in mapping.items()}


def save(rows):
    local = {"x": 1}
    # Locals are fresh values the function controls; only state that
    # crosses the function boundary (self/cls/parameters) is flagged.
    for key, value in local.items():
        rows.append((key, value))
    # A call in the receiver chain yields a fresh object too.
    for key in dict(rows).keys():
        pass
    return rows
