"""Fixture for the unordered-futures rule.

Analyzed under ``repro/parallel/fixture_futures.py`` — inside the
parallel package, where results must be collected in shard-index order,
never completion order.
"""

import concurrent.futures
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import as_completed  # expect: unordered-futures


def merge_in_completion_order(task, shards):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(task, shard) for shard in shards]
        return [
            future.result()
            for future in as_completed(futures)  # expect: unordered-futures
        ]


def merge_via_module_attribute(task, shards):
    with ProcessPoolExecutor() as pool:
        futures = {pool.submit(task, s): s for s in shards}
        done = concurrent.futures.as_completed(futures)  # expect: unordered-futures
        return [future.result() for future in done]


def merge_via_imap_unordered(pool, task, shards):
    return list(pool.imap_unordered(task, shards))  # expect: unordered-futures


def merge_in_shard_order(task, shards):
    # The sanctioned pattern: submit everything, then consume the
    # futures list in shard-index order.
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(task, shard) for shard in shards]
        return [future.result() for future in futures]
