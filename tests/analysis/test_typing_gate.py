"""The strict typing gate, runnable wherever mypy is installed.

The container image used for the tier-1 suite does not ship mypy, so
this test skips there; CI installs mypy and runs the same gate both via
this test and as a dedicated job. The config (per-module strictness
ladder) lives in pyproject.toml so every entry point agrees.
"""

from __future__ import annotations

from pathlib import Path

import pytest

mypy_api = pytest.importorskip(
    "mypy.api", reason="mypy not installed; the CI typecheck job runs this"
)

REPO = Path(__file__).parents[2]

#: The modules held to the strict tier of the ladder.
STRICT_TARGETS = (
    "src/repro/stream",
    "src/repro/routing",
    "src/repro/core/detection.py",
    "src/repro/batch",
    "src/repro/measurement",
    "src/repro/serve",
    "src/repro/analysis",
    "src/repro/store",
    "src/repro/sketch",
)


def test_strict_targets_typecheck():
    stdout, stderr, status = mypy_api.run(
        [
            "--config-file", str(REPO / "pyproject.toml"),
            *(str(REPO / target) for target in STRICT_TARGETS),
        ]
    )
    assert status == 0, f"mypy gate failed:\n{stdout}\n{stderr}"
