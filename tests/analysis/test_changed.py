"""``repro analyze --changed``: call-graph-scoped incremental runs."""

from __future__ import annotations

import os
import subprocess
from pathlib import Path

import pytest

from repro.analysis.project import ProjectAnalyzer
from repro.cli import main


def _write_tree(root: Path) -> None:
    package = root / "src" / "repro" / "demo"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "producer.py").write_text(
        "def rows(d):\n"
        "    return [k for k in d.keys()]\n"
    )
    (package / "consumer.py").write_text(
        "import json\n"
        "from repro.demo.producer import rows\n"
        "def dump(d):\n"
        "    return json.dumps(rows(d))\n"
    )
    (package / "island.py").write_text(
        "def lonely(d):\n"
        "    return [k for k in d.keys()]\n"
    )


def test_changed_filter_follows_call_graph(tmp_path):
    _write_tree(tmp_path)
    analyzer = ProjectAnalyzer(jobs=1, root=str(tmp_path))
    src = str(tmp_path / "src")
    # Changing the consumer keeps the producer's finding (the taint
    # crosses between them), even though producer.py didn't change.
    result = analyzer.analyze_paths(
        [src], changed={"repro/demo/consumer.py"}
    )
    assert [f.rule for f in result.findings] == ["canonicalization-taint"]
    # Changing only the disconnected island drops it.
    result = analyzer.analyze_paths(
        [src], changed={"repro/demo/island.py"}
    )
    assert result.findings == []


def test_changed_filter_with_unknown_module(tmp_path):
    _write_tree(tmp_path)
    analyzer = ProjectAnalyzer(jobs=1, root=str(tmp_path))
    result = analyzer.analyze_paths(
        [str(tmp_path / "src")], changed={"repro/demo/deleted.py"}
    )
    assert result.findings == []


def _git(root: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv],
        cwd=root,
        check=True,
        capture_output=True,
        env={
            **os.environ,
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
        },
    )


@pytest.mark.skipif(
    subprocess.run(
        ["git", "--version"], capture_output=True
    ).returncode != 0,
    reason="git unavailable",
)
def test_cli_changed_against_git_ref(tmp_path, capsys, monkeypatch):
    _write_tree(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    # Nothing changed vs HEAD: analysis is scoped to nothing.
    code = main(["analyze", "src", "--changed", "HEAD", "--no-cache"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out
    # Touch the consumer: the producer's cross-module finding returns.
    consumer = tmp_path / "src" / "repro" / "demo" / "consumer.py"
    consumer.write_text(consumer.read_text() + "\n# touched\n")
    code = main(["analyze", "src", "--changed", "HEAD", "--no-cache"])
    assert code == 1
    out = capsys.readouterr().out
    assert "canonicalization-taint" in out
    assert "producer.py" in out


def test_cli_changed_bad_ref_is_an_error(tmp_path, capsys, monkeypatch):
    _write_tree(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    monkeypatch.chdir(tmp_path)
    code = main(
        ["analyze", "src", "--changed", "no-such-ref", "--no-cache"]
    )
    assert code == 2
    assert "cannot diff" in capsys.readouterr().err
