"""Suppression comments: parsing and end-to-end silencing."""

from __future__ import annotations

from repro.analysis import Analyzer, suppressed_rules

BAD_DEFAULT = "def f(bucket=[]):\n    return bucket\n"


def test_parse_bare_and_bracketed():
    source = (
        "a = 1  # repro: ignore\n"
        "b = 2  # repro: ignore[wall-clock]\n"
        "c = 3  # repro: ignore[wall-clock, mutable-default]\n"
        "d = 4  # repro: ignore[]\n"
        "e = 5  # no marker here\n"
    )
    parsed = suppressed_rules(source)
    assert parsed[1] is None
    assert parsed[2] == frozenset({"wall-clock"})
    assert parsed[3] == frozenset({"wall-clock", "mutable-default"})
    assert parsed[4] is None  # empty brackets behave like a bare ignore
    assert 5 not in parsed


def test_matching_suppression_silences_finding():
    source = BAD_DEFAULT.replace(
        "bucket=[]):", "bucket=[]):  # repro: ignore[mutable-default]"
    )
    result = Analyzer().analyze_source(source, "x.py")
    assert result.clean


def test_bare_suppression_silences_everything():
    source = BAD_DEFAULT.replace("bucket=[]):", "bucket=[]):  # repro: ignore")
    result = Analyzer().analyze_source(source, "x.py")
    assert result.clean


def test_unrelated_suppression_does_not_silence():
    source = BAD_DEFAULT.replace(
        "bucket=[]):", "bucket=[]):  # repro: ignore[wall-clock]"
    )
    result = Analyzer().analyze_source(source, "x.py")
    assert [f.rule for f in result.findings] == ["mutable-default"]


def test_suppression_on_other_line_does_not_silence():
    source = "# repro: ignore[mutable-default]\n" + BAD_DEFAULT
    result = Analyzer().analyze_source(source, "x.py")
    assert [f.rule for f in result.findings] == ["mutable-default"]
