"""Each interprocedural rule, demonstrated on its fixture group.

Mirrors ``test_rules.py``: fixtures carry ``# expect: <rule-id>``
markers on the exact lines that must produce findings. Interprocedural
fixtures are *groups* — several files analyzed together under scoped
module paths, so taint and call chains cross module boundaries the way
they do in the real tree.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.analysis import project_rule_ids
from repro.analysis.project import ProjectAnalyzer

FIXTURES = Path(__file__).parent / "fixtures" / "interproc"

_MARKER_RE = re.compile(
    r"#\s*expect:\s*(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)

#: group name → {module path analyzed under: fixture file}.
GROUPS: Dict[str, Dict[str, str]] = {
    "canonicalization-taint": {
        "repro/measurement/fixture_producer.py": "taint_producer.py",
        "repro/reporting/fixture_sink.py": "taint_sink.py",
    },
    "async-blocking": {
        "repro/serve/fixture_handlers.py": "async_blocking.py",
    },
    "snapshot-mutation": {
        "repro/serve/fixture_swap.py": "snapshot_mutation.py",
    },
    "fork-unsafe-capture": {
        "repro/parallel/fixture_fork.py": "fork_capture.py",
    },
    "exception-flow": {
        "repro/parallel/fixture_errors.py": "exception_flow.py",
    },
}


def _sources(group: Dict[str, str]) -> Dict[str, str]:
    return {
        module: (FIXTURES / filename).read_text()
        for module, filename in group.items()
    }


def expected_markers(
    group: Dict[str, str]
) -> List[Tuple[str, int, str]]:
    expected = []
    for module, filename in group.items():
        source = (FIXTURES / filename).read_text()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _MARKER_RE.search(text)
            if match is None:
                continue
            for rule_id in match.group("rules").split(","):
                expected.append((module, lineno, rule_id.strip()))
    return sorted(expected)


@pytest.mark.parametrize("name", sorted(GROUPS))
def test_fixture_findings_match_markers(name):
    group = GROUPS[name]
    markers = expected_markers(group)
    assert markers, f"fixture group {name} has no # expect markers"
    result = ProjectAnalyzer().analyze_sources(_sources(group))
    found = sorted(
        (f.path, f.line, f.rule) for f in result.findings
    )
    assert found == markers, "\n".join(
        f.format() for f in result.findings
    )


def test_every_project_rule_has_a_fixture():
    covered = set()
    for group in GROUPS.values():
        covered.update(rule for _, _, rule in expected_markers(group))
    assert covered == set(project_rule_ids())


def test_project_rule_metadata():
    from repro.analysis import project_rules

    rules = project_rules()
    ids = [rule.id for rule in rules]
    assert len(ids) == len(set(ids))
    assert all(rule.summary for rule in rules)
    # Project and local rule ids never collide.
    from repro.analysis import rule_ids

    assert not set(ids) & set(rule_ids())


def test_async_blocking_scoped_to_serve():
    source = (FIXTURES / "async_blocking.py").read_text()
    result = ProjectAnalyzer().analyze_sources(
        {"repro/stream/fixture_handlers.py": source}
    )
    assert not any(
        f.rule == "async-blocking" for f in result.findings
    )


def test_exception_flow_scoped_to_worker_packages():
    source = (FIXTURES / "exception_flow.py").read_text()
    result = ProjectAnalyzer().analyze_sources(
        {"repro/reporting/fixture_errors.py": source}
    )
    assert not any(
        f.rule == "exception-flow" for f in result.findings
    )


def test_snapshot_mutation_excluded_under_tests_profile():
    # Test setup legitimately builds and pokes snapshot indexes; the
    # same source under a tests/ module key raises nothing. The
    # fixture's classes must live on a serve path for the rule to see
    # them, so pair the serve module with a tests-profile mutator.
    swap = (FIXTURES / "snapshot_mutation.py").read_text()
    result = ProjectAnalyzer().analyze_sources(
        {
            "repro/serve/fixture_swap.py": swap,
        }
    )
    assert any(f.rule == "snapshot-mutation" for f in result.findings)
    mutator = (
        "from repro.serve.fixture_swap import QueryIndex\n"
        "\n"
        "def poke_fixture(rows):\n"
        "    index = QueryIndex(rows)\n"
        "    index.rows = {}\n"
        "    return index\n"
    )
    result = ProjectAnalyzer().analyze_sources(
        {
            "repro/serve/fixture_swap.py": swap,
            "tests/serve/fixture_mutator.py": mutator,
        }
    )
    flagged = [
        f.path for f in result.findings
        if f.rule == "snapshot-mutation"
    ]
    # Serve-side findings stay; the tests-profile mutation is excused.
    assert "repro/serve/fixture_swap.py" in flagged
    assert "tests/serve/fixture_mutator.py" not in flagged


def test_inline_suppression_silences_project_rules():
    source = (FIXTURES / "async_blocking.py").read_text().replace(
        "time.sleep(0.01)  # expect: async-blocking",
        "time.sleep(0.01)  # repro: ignore[async-blocking]",
    )
    result = ProjectAnalyzer().analyze_sources(
        {"repro/serve/fixture_handlers.py": source}
    )
    lines = [
        f.line for f in result.findings if f.rule == "async-blocking"
    ]
    assert 18 not in lines  # the suppressed site
    assert lines  # the unsuppressed handler is still flagged


def test_rule_filter_restricts_project_rules():
    group = GROUPS["canonicalization-taint"]
    result = ProjectAnalyzer().analyze_sources(
        _sources(group), rule_filter={"async-blocking"}
    )
    assert not result.findings
    assert result.rules_run == ("async-blocking",)
