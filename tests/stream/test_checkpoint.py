"""Tests for checkpoint serialisation, atomicity and resume."""

import json
import os
import zlib

import pytest

from repro.stream import checkpoint
from repro.stream.checkpoint import (
    dump_state,
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine

from tests.stream.test_engine import (
    DOMAINS,
    StubCatalog,
    day_partitions,
    engine,
    partition,
)


class TestDumpState:
    def test_equal_states_dump_identical_bytes(self):
        first, second = engine(), engine()
        for stream in (first, second):
            stream.ingest_feed(day_partitions(range(4)))
        assert dump_state(first) == dump_state(second)
        assert state_digest(first) == state_digest(second)

    def test_different_states_differ(self):
        first, second = engine(), engine()
        first.ingest_feed(day_partitions(range(4)))
        second.ingest_feed(day_partitions(range(3)))
        assert state_digest(first) != state_digest(second)

    def test_roundtrip_through_dict(self):
        stream = engine()
        stream.ingest_feed(day_partitions(range(4)))
        restored = StreamEngine.from_dict(
            stream.to_dict(), catalog=StubCatalog()
        )
        assert dump_state(restored) == dump_state(stream)


class TestSaveLoad:
    def test_save_and_load_roundtrip(self, tmp_path):
        stream = engine()
        stream.ingest_feed(day_partitions(range(5)))
        path = str(tmp_path / "stream.ckpt")
        written = save_checkpoint(stream, path)
        assert written == os.path.getsize(path)
        restored = load_checkpoint(path, catalog=StubCatalog())
        assert state_digest(restored) == state_digest(stream)

    def test_resumed_engine_continues_ingest(self, tmp_path):
        parts = day_partitions(range(6))
        interrupted = engine()
        interrupted.ingest_feed(parts[:3])
        path = str(tmp_path / "stream.ckpt")
        save_checkpoint(interrupted, path)
        resumed = load_checkpoint(path, catalog=StubCatalog())
        assert resumed.resume_day("com") == 3
        resumed.ingest_feed(parts[3:])
        uninterrupted = engine()
        uninterrupted.ingest_feed(parts)
        assert dump_state(resumed) == dump_state(uninterrupted)

    def test_quarantine_survives_checkpoint(self, tmp_path):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        stream.ingest(partition("com", 2, DOMAINS))
        path = str(tmp_path / "stream.ckpt")
        save_checkpoint(stream, path)
        resumed = load_checkpoint(path, catalog=StubCatalog())
        assert resumed.pending_days("com") == [2]
        # The gap fills after the resume; the quarantined day drains.
        resumed.ingest(partition("com", 1, DOMAINS))
        assert resumed.next_day("com") == 3
        assert resumed.adoption("StubDPS", day=2) == 1

    def test_no_temp_file_left_behind(self, tmp_path):
        stream = engine()
        stream.ingest_feed(day_partitions(range(2)))
        save_checkpoint(stream, str(tmp_path / "stream.ckpt"))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["stream.ckpt"]

    def test_save_creates_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "stream.ckpt")
        save_checkpoint(engine(), path)
        assert os.path.exists(path)

    def test_rejects_non_checkpoint_file(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(ValueError, match="not a stream checkpoint"):
            load_checkpoint(str(path))

    def test_rejects_unknown_format(self, tmp_path):
        blob = checkpoint._MAGIC + zlib.compress(
            json.dumps({"format": 99, "engine": {}}).encode()
        )
        path = tmp_path / "future.ckpt"
        path.write_bytes(blob)
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            load_checkpoint(str(path))
