"""Tests for the replay feeds (store- and segment-backed)."""

import pytest

from repro.measurement.scheduler import PartitionFeed
from repro.measurement.storage import ColumnStore
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed
from repro.stream.engine import StreamEngine
from repro.stream.checkpoint import state_digest
from repro.world.timeline import CCTLD_START_DAY


@pytest.fixture(scope="module")
def landed_store(tiny_world):
    """A few (source, day) partitions measured into a column store."""
    store = ColumnStore()
    feed = PartitionFeed(
        tiny_world, sources=("com", "org"), store=store
    )
    for day in range(3):
        for source in ("com", "org"):
            feed.partition(source, day)
    return store


class TestStoreReplayFeed:
    def test_partition_rematerialises_rows(self, landed_store):
        replay = StoreReplayFeed(landed_store)
        part = replay.partition("com", 0)
        assert part.observations == list(landed_store.rows("com", 0))
        assert part.zone_size == len(part.observations)

    def test_explicit_zone_sizes_win(self, landed_store):
        replay = StoreReplayFeed(landed_store, zone_sizes={("com", 0): 999})
        assert replay.partition("com", 0).zone_size == 999

    def test_days_are_day_major(self, landed_store):
        replay = StoreReplayFeed(landed_store)
        order = [(p.source, p.day) for p in replay.days()]
        assert order == [
            ("com", 0), ("org", 0),
            ("com", 1), ("org", 1),
            ("com", 2), ("org", 2),
        ]

    def test_days_honour_bounds(self, landed_store):
        replay = StoreReplayFeed(landed_store)
        order = [(p.source, p.day) for p in replay.days(start=1, end=2)]
        assert order == [("com", 1), ("org", 1)]

    def test_replay_reaches_live_state(self, tiny_world, landed_store):
        """Ingesting the replayed store equals ingesting the live feed."""
        live = StreamEngine(tiny_world.horizon, sources=("com", "org"))
        feed = PartitionFeed(tiny_world, sources=("com", "org"))
        for day in range(3):
            for source in ("com", "org"):
                live.ingest(feed.partition(source, day))
        replayed = StreamEngine(tiny_world.horizon, sources=("com", "org"))
        replayed.ingest_feed(StoreReplayFeed(landed_store).days())
        # The store does not retain listing sizes, so compare the
        # detection state rather than the full serialised engine.
        assert replayed.detection("gtld") == live.detection("gtld")


class TestSegmentReplayFeed:
    def test_windows_match_live_feed(self, tiny_world):
        replay = SegmentReplayFeed(tiny_world, {})
        live = PartitionFeed(tiny_world)
        assert replay.windows() == live.windows()
        assert replay.window("alexa") == (
            CCTLD_START_DAY, tiny_world.horizon
        )

    def test_unknown_source_rejected(self, tiny_world):
        with pytest.raises(ValueError):
            SegmentReplayFeed(tiny_world, {}, sources=("com", "de"))

    def test_replay_matches_live_measurement(self, tiny_world):
        """Segments expanded back into days equal the measured rows."""
        from repro.core.pipeline import AdoptionStudy

        segments = AdoptionStudy(tiny_world).collect_segments()
        replay = SegmentReplayFeed(tiny_world, segments, sources=("org",))
        live = PartitionFeed(tiny_world, sources=("org",))
        for day in (0, 250, 549):
            live_part = live.partition("org", day)
            replay_part = replay.partition("org", day)
            assert sorted(
                replay_part.observations, key=lambda o: o.domain
            ) == sorted(live_part.observations, key=lambda o: o.domain)

    def test_streamed_state_matches_live_feed(self, tiny_world):
        """Both feed flavours drive the engine to the same gTLD state."""
        from repro.core.pipeline import AdoptionStudy

        segments = AdoptionStudy(tiny_world).collect_segments()
        days = range(0, 5)
        sources = ("com", "net", "org")
        live = StreamEngine(tiny_world.horizon, sources=sources)
        live_feed = PartitionFeed(tiny_world, sources=sources)
        replayed = StreamEngine(tiny_world.horizon, sources=sources)
        replay_feed = SegmentReplayFeed(
            tiny_world, segments, sources=sources
        )
        for day in days:
            for source in sources:
                live.ingest(live_feed.partition(source, day))
                replayed.ingest(replay_feed.partition(source, day))
        assert replayed.detection("gtld") == live.detection("gtld")
        assert state_digest(replayed) != ""  # serialisable mid-stream
