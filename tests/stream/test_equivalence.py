"""Streamed aggregates equal the batch study's, exactly.

The batch :class:`AdoptionStudy` sees every domain's full history at
once; the stream engine sees one ``(source, day)`` partition at a time.
After ingesting the whole horizon the two must agree bit-for-bit on every
aggregate behind Figures 2–6 (and on the Fig. 7/8 interval analyses), and
an engine killed mid-study and resumed from its checkpoint must end in a
byte-identical state.
"""

import pytest

from repro.stream.checkpoint import (
    dump_state,
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine
from repro.stream.query import QueryAPI
from repro.world.timeline import CCTLD_START_DAY

#: Kill/resume split point: mid-study, with all three scopes active.
KILL_DAY = 400


class TestFigureEquivalence:
    def test_gtld_detection_is_identical(self, streamed_engine, stream_results):
        """Figs. 2–3 inputs: the full gTLD detection result (series,
        per-reference breakdowns, intervals, combo days, domain count)."""
        batch = stream_results.detection_gtld
        assert any(batch.any_use_combined), "batch study found no adoption"
        assert streamed_engine.detection("gtld") == batch

    def test_nl_series_match_inside_window(
        self, streamed_engine, stream_results
    ):
        """The .nl feed only exists from the window start; inside it the
        streamed daily series equals the batch detector's."""
        start = CCTLD_START_DAY
        batch = stream_results.detection_nl.any_use_combined
        assert any(batch[start:])
        assert streamed_engine.scope("nl").any_series()[start:] == batch[start:]

    def test_alexa_detection_is_identical(
        self, streamed_engine, stream_results
    ):
        """Alexa membership windows all start inside the measurement
        window, so the whole detection result round-trips."""
        batch = stream_results.detection_alexa
        streamed = streamed_engine.detection("alexa")
        assert streamed.any_use_combined == batch.any_use_combined
        assert streamed.intervals == batch.intervals
        assert {
            name: series.total for name, series in streamed.providers.items()
        } == {name: series.total for name, series in batch.providers.items()}

    def test_expansion_series_matches_world(
        self, streamed_engine, stream_results
    ):
        """Fig. 5 baseline: summed gTLD zone sizes from the cursors."""
        horizon = stream_results.horizon
        expansion = [
            sum(
                stream_results.zone_sizes[tld][day]
                for tld in ("com", "net", "org")
            )
            for day in range(horizon)
        ]
        assert streamed_engine.expansion_series() == expansion
        # .nl zones exist before the feed starts measuring them; inside
        # the window the streamed sizes equal the world's.
        start = CCTLD_START_DAY
        assert (
            streamed_engine.zone_size_series("nl")[start:]
            == stream_results.zone_sizes["nl"][start:]
        )

    def test_growth_gtld_matches_batch(self, streamed_engine, stream_results):
        assert streamed_engine.growth("gtld") == stream_results.growth_gtld

    def test_growth_cc_matches_batch(self, streamed_engine, stream_results):
        nl = streamed_engine.growth("nl")
        alexa = streamed_engine.growth("alexa")
        batch = stream_results.growth_cc
        assert nl["DPS adoption (.nl)"] == batch["DPS adoption (.nl)"]
        assert (
            nl["Overall expansion (.nl)"] == batch["Overall expansion (.nl)"]
        )
        assert (
            alexa["DPS adoption (Alexa)"] == batch["DPS adoption (Alexa)"]
        )

    def test_fig4_distributions_match_batch(
        self, streamed_engine, stream_results
    ):
        namespace, dps = streamed_engine.fig4_distributions()
        assert namespace == pytest.approx(
            stream_results.namespace_distribution
        )
        assert dps == pytest.approx(stream_results.dps_distribution)

    def test_flux_matches_batch(self, streamed_engine, stream_results):
        assert streamed_engine.flux("gtld") == stream_results.flux

    def test_peaks_match_batch(self, streamed_engine, stream_results):
        streamed = streamed_engine.peaks("gtld")
        batch = stream_results.peaks
        assert set(streamed) == set(batch)
        for name in batch:
            assert streamed[name].domain_count == batch[name].domain_count
            # Duration multisets (accumulation order may differ).
            assert sorted(streamed[name].durations) == sorted(
                batch[name].durations
            )
            if batch[name].durations:
                assert streamed[name].p80 == batch[name].p80


class TestLiveQueries:
    def test_adoption_queries_read_batch_values(
        self, streamed_engine, stream_results
    ):
        api = QueryAPI(streamed_engine)
        batch = stream_results.detection_gtld
        latest = stream_results.horizon - 1
        for provider, series in batch.providers.items():
            assert api.adoption(provider) == series.total[latest]
            assert api.adoption(provider, day=100) == series.total[100]

    def test_snapshot_totals_match_batch(
        self, streamed_engine, stream_results
    ):
        snapshot = QueryAPI(streamed_engine).snapshot("gtld")
        batch = stream_results.detection_gtld
        assert snapshot.day == stream_results.horizon - 1
        assert snapshot.domains_seen == batch.domains_seen
        assert snapshot.any_use == batch.any_use_combined[-1]


class TestKillAndResume:
    def test_kill_and_resume_is_byte_identical(
        self, tmp_path, stream_world, replay_feed, streamed_engine
    ):
        """Ingest to day N, checkpoint, kill, resume, finish: the final
        state serialises to the same bytes as the uninterrupted run."""
        windows = replay_feed.windows()
        interrupted = StreamEngine(stream_world.horizon, windows=windows)
        interrupted.ingest_feed(replay_feed.days(end=KILL_DAY))
        assert interrupted.latest_day("gtld") == KILL_DAY - 1

        path = str(tmp_path / "stream.ckpt")
        save_checkpoint(interrupted, path)
        del interrupted  # the "kill": only the checkpoint survives

        resumed = load_checkpoint(path)
        start = min(
            resumed.resume_day(source) for source in resumed.sources
        )
        assert start == KILL_DAY
        resumed.ingest_feed(replay_feed.days(start=start))

        assert state_digest(resumed) == state_digest(streamed_engine)
        assert dump_state(resumed) == dump_state(streamed_engine)

    def test_mid_stream_queries_match_batch_prefix(
        self, stream_world, replay_feed, stream_results
    ):
        """Halfway through the study the live counters already equal the
        batch values for the ingested prefix."""
        engine = StreamEngine(
            stream_world.horizon, windows=replay_feed.windows()
        )
        engine.ingest_feed(replay_feed.days(end=KILL_DAY))
        batch = stream_results.detection_gtld
        day = KILL_DAY - 1
        assert engine.any_adoption() == batch.any_use_combined[day]
        for provider, series in batch.providers.items():
            if series.total[day]:
                assert engine.adoption(provider) == series.total[day]
