"""Unit tests for the stream engine's ordering discipline and queries.

A stub signature catalog keeps these synthetic and fast: any domain whose
name starts with ``prot`` counts as protected by ``StubDPS`` via its NS
records. The real-catalog path is covered by the equivalence suite.
"""

import pytest

from repro.core.detection import UseInterval
from repro.core.references import RefType
from repro.measurement.scheduler import DayPartition
from repro.measurement.snapshot import DomainObservation
from repro.stream.checkpoint import state_digest
from repro.stream.engine import (
    APPLIED,
    DUPLICATE,
    QUARANTINED,
    RECONCILED,
    StreamEngine,
)
from repro.stream.query import QueryAPI

HORIZON = 10


class StubCatalog:
    def match(self, observation):
        if observation.domain.startswith("prot"):
            return {"StubDPS": frozenset({RefType.NS})}
        return {}


def observation(domain, day, tld="com"):
    return DomainObservation(
        day=day,
        domain=domain,
        tld=tld,
        ns_names=(f"ns1.{domain}.",),
        apex_addrs=("192.0.2.1",),
        asns=frozenset({64500}),
    )


def partition(source, day, domains, zone_size=None):
    rows = [observation(name, day, tld=source) for name in domains]
    return DayPartition(
        source=source,
        day=day,
        zone_size=len(rows) if zone_size is None else zone_size,
        observations=rows,
    )


def engine(sources=("com",), windows=None):
    return StreamEngine(
        HORIZON, catalog=StubCatalog(), sources=sources, windows=windows
    )


DOMAINS = ["prot-a.com", "plain-b.com"]


def day_partitions(days, domains=DOMAINS):
    return [partition("com", day, domains) for day in days]


class TestOrdering:
    def test_in_order_days_apply(self):
        stream = engine()
        outcomes = [
            stream.ingest(p) for p in day_partitions(range(3))
        ]
        assert outcomes == [APPLIED] * 3
        assert stream.next_day("com") == 3
        assert stream.partitions_applied == 3

    def test_future_day_quarantines_until_gap_fills(self):
        stream = engine()
        assert stream.ingest(partition("com", 0, DOMAINS)) == APPLIED
        assert stream.ingest(partition("com", 2, DOMAINS)) == QUARANTINED
        assert stream.pending_days("com") == [2]
        assert stream.latest_day("gtld") == 0
        # Day 1 lands: applied, and day 2 drains right behind it.
        assert stream.ingest(partition("com", 1, DOMAINS)) == APPLIED
        assert stream.pending_days("com") == []
        assert stream.next_day("com") == 3

    def test_out_of_order_run_equals_in_order_run(self):
        shuffled, ordered = engine(), engine()
        parts = day_partitions(range(5))
        for index in (0, 3, 2, 4, 1):
            shuffled.ingest(parts[index])
        for part in parts:
            ordered.ingest(part)
        assert state_digest(shuffled) == state_digest(ordered)

    def test_duplicate_raises_by_default(self):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        with pytest.raises(ValueError):
            stream.ingest(partition("com", 0, DOMAINS))

    def test_duplicate_skipped_on_request(self):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        outcome = stream.ingest(
            partition("com", 0, DOMAINS), on_duplicate="skip"
        )
        assert outcome == DUPLICATE
        assert stream.partitions_applied == 1

    def test_quarantined_duplicate_detected(self):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        stream.ingest(partition("com", 5, DOMAINS))
        with pytest.raises(ValueError):
            stream.ingest(partition("com", 5, DOMAINS))

    def test_skip_missing_declares_gap_and_drains(self):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        stream.ingest(partition("com", 3, DOMAINS))
        assert stream.skip_missing("com") == [1, 2]
        assert stream.missing_days("com") == [1, 2]
        assert stream.next_day("com") == 4
        assert stream.partitions_applied == 2

    def test_skip_missing_without_quarantine_is_noop(self):
        stream = engine()
        stream.ingest(partition("com", 0, DOMAINS))
        assert stream.skip_missing("com") == []

    def test_late_arrival_reconciles_to_in_order_state(self):
        parts = day_partitions(range(5))
        stream = engine()
        for index in (0, 1, 3, 4):
            stream.ingest(parts[index])
            stream.skip_missing("com")
        assert stream.missing_days("com") == [2]
        assert stream.ingest(parts[2]) == RECONCILED
        assert stream.missing_days("com") == []
        assert stream.late_arrivals == 1
        ordered = engine()
        for part in parts:
            ordered.ingest(part)
        # Aggregates (series, intervals, zone sizes) equal the in-order
        # run; only the late-arrival counter differs.
        assert stream.detection("gtld") == ordered.detection("gtld")
        assert stream.zone_size_series("com") == ordered.zone_size_series(
            "com"
        )

    def test_window_sets_first_expected_day(self):
        stream = engine(windows={"com": (3, HORIZON)})
        assert stream.resume_day("com") == 3
        assert stream.ingest(partition("com", 5, DOMAINS)) == QUARANTINED
        assert stream.ingest(partition("com", 3, DOMAINS)) == APPLIED

    def test_unknown_source_rejected(self):
        stream = engine()
        with pytest.raises(ValueError):
            stream.ingest(partition("nl", 0, ["prot-x.nl"]))

    def test_day_outside_horizon_rejected(self):
        stream = engine()
        with pytest.raises(ValueError):
            stream.ingest(partition("com", HORIZON, DOMAINS))

    def test_ingest_feed_counts_applied(self):
        stream = engine()
        applied = stream.ingest_feed(day_partitions(range(4)))
        assert applied == 4


class TestQueries:
    def test_latest_day_is_min_over_scope_sources(self):
        stream = engine(sources=("com", "net"))
        stream.ingest(partition("com", 0, DOMAINS))
        stream.ingest(partition("com", 1, DOMAINS))
        stream.ingest(partition("net", 0, ["prot-n.net"]))
        assert stream.latest_day("gtld") == 0

    def test_adoption_defaults_to_latest_day(self):
        stream = engine()
        stream.ingest_feed(day_partitions(range(3)))
        assert stream.adoption("StubDPS") == 1
        assert stream.adoption("StubDPS", day=1) == 1
        assert stream.any_adoption() == 1
        assert stream.adoption("NoSuchDPS") == 0

    def test_adoption_empty_engine_is_zero(self):
        stream = engine()
        assert stream.adoption("StubDPS") == 0
        assert stream.any_adoption() == 0

    def test_zone_size_and_expansion_series(self):
        stream = engine(sources=("com", "net"))
        stream.ingest(partition("com", 0, DOMAINS, zone_size=7))
        stream.ingest(partition("net", 0, ["prot-n.net"], zone_size=5))
        assert stream.zone_size_series("com")[0] == 7
        assert stream.expansion_series()[0] == 12

    def test_domain_history_spans_scopes(self):
        stream = engine(sources=("com", "nl"))
        stream.ingest(partition("com", 0, ["prot-a.com"]))
        stream.ingest(partition("nl", 0, ["prot-a.com"]))
        history = stream.domain_history("prot-a.com")
        assert set(history) == {"gtld", "nl"}
        assert history["gtld"]["StubDPS"] == [UseInterval(0, 1)]
        assert stream.domain_history("plain-b.com") == {}

    def test_growth_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            engine().growth("de")

    def test_growth_requires_ingested_days(self):
        with pytest.raises(ValueError, match="no ingested days"):
            engine().growth("gtld")


class TestQueryAPI:
    def test_snapshot_before_any_ingest(self):
        api = QueryAPI(engine())
        snapshot = api.snapshot("gtld")
        assert snapshot.day is None
        assert snapshot.any_use == 0

    def test_snapshot_reflects_latest_counters(self):
        stream = engine()
        stream.ingest_feed(day_partitions(range(3)))
        snapshot = QueryAPI(stream).snapshot("gtld")
        assert snapshot.day == 2
        assert snapshot.domains_seen == 2
        assert snapshot.any_use == 1
        assert snapshot.providers == {"StubDPS": 1}
        assert snapshot.top_providers() == ["StubDPS"]

    def test_domain_history_wrapper(self):
        stream = engine()
        stream.ingest_feed(day_partitions(range(3)))
        history = QueryAPI(stream).domain_history("prot-a.com")
        assert history.domain == "prot-a.com"
        assert history.providers == ["StubDPS"]
        assert history.total_days("gtld") == 3
        assert history.total_days("nl") == 0

    def test_adoption_passthrough(self):
        stream = engine()
        stream.ingest_feed(day_partitions(range(2)))
        api = QueryAPI(stream)
        assert api.adoption("StubDPS") == 1
        assert api.adoption("StubDPS", day=0) == 1
