"""Unit tests for the interval builder and per-scope stream state."""

import pytest

from repro.core.detection import IntervalBuilder, UseInterval
from repro.core.references import RefType
from repro.stream.state import ScopeState


class TestIntervalBuilder:
    def test_in_order_run(self):
        builder = IntervalBuilder()
        for day in (3, 4, 5):
            builder.add_day(day)
        assert builder.intervals() == [UseInterval(3, 6)]

    def test_gap_starts_new_run(self):
        builder = IntervalBuilder()
        builder.add_day(1)
        builder.add_day(3)
        assert builder.intervals() == [UseInterval(1, 2), UseInterval(3, 4)]

    def test_late_day_extends_left_run(self):
        builder = IntervalBuilder([[0, 2], [5, 6]])
        builder.add_day(2)
        assert builder.runs == [[0, 3], [5, 6]]

    def test_late_day_extends_right_run(self):
        builder = IntervalBuilder([[0, 2], [5, 6]])
        builder.add_day(4)
        assert builder.runs == [[0, 2], [4, 6]]

    def test_late_day_merges_adjacent_runs(self):
        builder = IntervalBuilder([[0, 2], [3, 6]])
        builder.add_day(2)
        assert builder.runs == [[0, 6]]

    def test_late_day_isolated_insert(self):
        builder = IntervalBuilder([[0, 1], [8, 9]])
        builder.add_day(4)
        assert builder.runs == [[0, 1], [4, 5], [8, 9]]

    def test_late_day_before_first_run(self):
        builder = IntervalBuilder([[5, 6]])
        builder.add_day(2)
        assert builder.runs == [[2, 3], [5, 6]]

    def test_late_day_prepends_to_first_run(self):
        builder = IntervalBuilder([[5, 6]])
        builder.add_day(4)
        assert builder.runs == [[4, 6]]

    def test_duplicate_day_raises(self):
        builder = IntervalBuilder()
        builder.add_day(3)
        with pytest.raises(ValueError):
            builder.add_day(3)

    def test_duplicate_late_day_raises(self):
        builder = IntervalBuilder([[0, 5]])
        with pytest.raises(ValueError):
            builder.add_day(2)

    def test_out_of_order_equals_in_order(self):
        days = [9, 0, 4, 2, 1, 7, 8, 3]
        shuffled = IntervalBuilder()
        for day in days:
            shuffled.add_day(day)
        ordered = IntervalBuilder()
        for day in sorted(days):
            ordered.add_day(day)
        assert shuffled.runs == ordered.runs


NS_ONLY = {"StubDPS": frozenset({RefType.NS})}
NS_AND_AS = {"StubDPS": frozenset({RefType.NS, RefType.AS})}


class TestScopeState:
    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            ScopeState(0)

    def test_non_matching_domain_counts_only_domains(self):
        state = ScopeState(10)
        state.observe("plain.com", "com", 0, {})
        assert state.domains_seen == 1
        assert state.provider_names == []
        assert state.any_adoption(0) == 0

    def test_matching_domain_increments_series(self):
        state = ScopeState(10)
        state.observe("prot.com", "com", 3, NS_ONLY)
        assert state.adoption("StubDPS", 3) == 1
        assert state.adoption("StubDPS", 4) == 0
        assert state.any_adoption(3) == 1
        assert state.tld_series("com")[3] == 1
        assert state.any_series()[3] == 1

    def test_intervals_accumulate_per_domain_provider(self):
        state = ScopeState(10)
        for day in (2, 3, 6):
            state.observe("prot.com", "com", day, NS_ONLY)
        assert state.domain_intervals("prot.com") == {
            "StubDPS": [UseInterval(2, 4), UseInterval(6, 7)]
        }
        assert ("prot.com", "StubDPS") in state.intervals()

    def test_result_matches_observed_facts(self):
        state = ScopeState(5)
        state.observe("prot.com", "com", 0, NS_AND_AS)
        state.observe("plain.net", "net", 0, {})
        result = state.result()
        assert result.domains_seen == 2
        assert result.providers["StubDPS"].total == [1, 0, 0, 0, 0]
        assert result.providers["StubDPS"].by_ref[RefType.NS][0] == 1
        assert result.providers["StubDPS"].by_ref[RefType.AS][0] == 1
        assert result.any_use_combined == [1, 0, 0, 0, 0]
        assert result.any_use_by_tld == {"com": [1, 0, 0, 0, 0]}
        assert result.combo_days == {"StubDPS": {"AS+NS": 1}}

    def test_serialization_roundtrip(self):
        state = ScopeState(8)
        state.observe("prot.com", "com", 1, NS_AND_AS)
        state.observe("prot.com", "com", 2, NS_ONLY)
        state.observe("plain.org", "org", 2, {})
        restored = ScopeState.from_dict(state.to_dict())
        assert restored.to_dict() == state.to_dict()
        assert restored.result() == state.result()

    def test_serialization_is_canonical(self):
        first = ScopeState(8)
        second = ScopeState(8)
        # Same facts, different arrival order.
        first.observe("a.com", "com", 1, NS_ONLY)
        first.observe("b.com", "com", 1, NS_ONLY)
        second.observe("b.com", "com", 1, NS_ONLY)
        second.observe("a.com", "com", 1, NS_ONLY)
        assert first.to_dict() == second.to_dict()
