"""Shared fixtures for the stream subsystem tests.

The equivalence suite needs a world large enough that every scope (gTLD,
.nl, Alexa) shows nonzero adoption, while keeping the full-horizon replay
down to a few seconds. The batch study and the fully streamed engine are
built once per session and compared from many angles.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

STREAM_SCALE = 150000
STREAM_SEED = 7


@pytest.fixture(scope="session")
def stream_world():
    """A small paper world (~1.2k domains) for streaming equivalence."""
    return build_paper_world(
        ScenarioConfig(scale=STREAM_SCALE, seed=STREAM_SEED)
    )


@pytest.fixture(scope="session")
def stream_results(stream_world):
    """The batch study over the same world — the ground truth."""
    return AdoptionStudy(stream_world).run()


@pytest.fixture(scope="session")
def replay_feed(stream_world, stream_results):
    """Daily partitions replayed from the batch study's segments."""
    return SegmentReplayFeed(stream_world, stream_results.segments)


@pytest.fixture(scope="session")
def streamed_engine(stream_world, replay_feed):
    """An engine that ingested the whole horizon day by day."""
    engine = StreamEngine(
        stream_world.horizon, windows=replay_feed.windows()
    )
    engine.ingest_feed(replay_feed.days())
    return engine
