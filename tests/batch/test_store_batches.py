"""The store's batch path is value-identical to its row path."""

import pytest

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.measurement.storage import ColumnStore
from repro.measurement.snapshot import DomainObservation


def observation(index, day=0):
    return DomainObservation(
        day=day,
        domain=f"d{index}.com",
        tld="com",
        ns_names=(f"ns1.h{index % 3}.net",),
        apex_addrs=(f"198.51.100.{index + 1}",),
        www_cnames=(f"d{index}.cdn.example.net",) if index % 2 else (),
        www_addrs=(f"203.0.113.{index + 1}",),
        apex_addrs6=(f"2001:db8::{index + 1:x}",) if index % 3 else (),
        asns=frozenset({64500, 64500 + index % 4}),
    )


@pytest.fixture()
def rows():
    return [observation(i, day=2) for i in range(15)]


@pytest.fixture()
def row_store(rows):
    store = ColumnStore()
    store.append("com", 2, rows)
    return store


@pytest.fixture()
def batch_store(rows):
    store = ColumnStore()
    store.append_batch("com", 2, ObservationBatch.from_rows(rows))
    return store


class TestAppendBatch:
    def test_rows_identical_to_row_append(self, row_store, batch_store):
        assert list(batch_store.rows("com", 2)) == list(
            row_store.rows("com", 2)
        )

    def test_encoded_partitions_byte_identical(
        self, row_store, batch_store
    ):
        """Table 1's ``estimated_bytes`` must not depend on which append
        path landed a partition."""
        assert batch_store.encode_partition(
            "com", 2
        ) == row_store.encode_partition("com", 2)

    def test_stats_identical(self, row_store, batch_store):
        assert batch_store.partition_stats(
            "com", 2
        ) == row_store.partition_stats("com", 2)


class TestBatchReads:
    def test_batch_rematerialises_rows(self, row_store, rows):
        batch = row_store.batch("com", 2)
        assert batch.rows() == rows

    def test_batches_covers_every_partition_in_order(self, rows):
        store = ColumnStore()
        store.append("com", 1, rows[:5])
        store.append("net", 1, rows[5:9])
        store.append("com", 2, rows[9:])
        seen = [
            (source, day, batch.rows())
            for source, day, batch in store.batches()
        ]
        assert [(s, d) for s, d, _ in seen] == list(store.partitions())
        assert seen == [
            (source, day, list(store.rows(source, day)))
            for source, day in store.partitions()
        ]

    def test_shared_builder_interns_across_partitions(self, rows):
        store = ColumnStore()
        store.append("com", 1, rows)
        store.append("com", 2, rows)  # same domains next day
        builder = BatchBuilder()
        first = store.batch("com", 1, builder=builder)
        second = store.batch("com", 2, builder=builder)
        assert first.names is second.names
        # Same domains → same interned ids across the two partitions.
        assert first.domains == second.domains

    def test_batch_survives_save_load(self, rows, tmp_path):
        store = ColumnStore()
        store.append("com", 2, rows)
        store.save(str(tmp_path))
        loaded = ColumnStore.load(str(tmp_path))
        assert loaded.batch("com", 2).rows() == rows
