"""Unit tests for the interning pools."""

import ipaddress

import pytest

from repro.batch.columns import AddressPool, StringPool


class TestStringPool:
    def test_ids_are_dense_first_seen_order(self):
        pool = StringPool()
        assert pool.intern("a.com") == 0
        assert pool.intern("b.com") == 1
        assert pool.intern("a.com") == 0
        assert len(pool) == 2

    def test_value_round_trips(self):
        pool = StringPool()
        texts = ["x.org", "y.org", "x.org", "z.org"]
        ids = pool.intern_all(texts)
        assert pool.values(ids) == tuple(texts)
        assert [pool.value(i) for i in ids] == texts

    def test_intern_tuple_matches_intern_all(self):
        memoized, plain = StringPool(), StringPool()
        sets = [("ns1.a.net", "ns2.a.net"), (), ("ns1.a.net",)] * 2
        for values in sets:
            assert memoized.intern_tuple(values) == plain.intern_all(
                values
            )
        assert len(memoized) == len(plain)

    def test_intern_tuple_memoizes(self):
        pool = StringPool()
        first = pool.intern_tuple(("a", "b"))
        assert pool.intern_tuple(["a", "b"]) is first

    def test_lookup_does_not_allocate(self):
        pool = StringPool()
        assert pool.lookup("never-seen") is None
        assert len(pool) == 0
        pool.intern("seen")
        assert pool.lookup("seen") == 0


class TestAddressPool:
    def test_texts_kept_verbatim(self):
        pool = AddressPool()
        # A non-canonical v6 spelling must round-trip byte-exact, not as
        # the ipaddress module's normalised form.
        spelling = "2001:0db8:0000:0000:0000:0000:0000:0001"
        index = pool.intern(spelling)
        assert pool.text(index) == spelling
        assert pool.parsed(index) == ipaddress.ip_address("2001:db8::1")

    def test_parsed_is_cached(self):
        pool = AddressPool()
        index = pool.intern("192.0.2.7")
        assert pool.parsed(index) is pool.parsed(index)

    def test_packed_matches_prefix_trie_key(self):
        pool = AddressPool()
        v4 = pool.intern("192.0.2.7")
        v6 = pool.intern("2001:db8::1")
        assert pool.packed(v4) == (4, int(ipaddress.ip_address("192.0.2.7")))
        assert pool.packed(v6) == (6, int(ipaddress.ip_address("2001:db8::1")))

    def test_intern_tuple_matches_intern_all(self):
        memoized, plain = AddressPool(), AddressPool()
        sets = [("192.0.2.1", "192.0.2.2"), (), ("192.0.2.1",)] * 2
        for texts in sets:
            assert memoized.intern_tuple(texts) == plain.intern_all(
                texts
            )
        assert len(memoized) == len(plain)

    def test_invalid_text_raises_only_on_parse(self):
        pool = AddressPool()
        index = pool.intern("not-an-address")
        assert pool.text(index) == "not-an-address"
        with pytest.raises(ValueError):
            pool.parsed(index)
