"""Unit tests for :class:`ObservationBatch` and its row adapters."""

import pytest

from repro.batch.batch import BatchBuilder, BatchRows, ObservationBatch
from repro.measurement.snapshot import DomainObservation


def observation(index, day=0, domain=None):
    return DomainObservation(
        day=day,
        domain=domain or f"d{index}.com",
        tld="com",
        ns_names=(f"ns1.h{index % 2}.net", f"ns2.h{index % 2}.net"),
        apex_addrs=(f"198.51.100.{index + 1}",),
        www_cnames=(f"d{index}.cdn.example.net",) if index % 2 else (),
        www_addrs=(f"203.0.113.{index + 1}",),
        apex_addrs6=(f"2001:db8::{index + 1:x}",) if index % 3 else (),
        www_addrs6=(),
        asns=frozenset({64500, 64500 + index % 4}),
    )


ROWS = [observation(i) for i in range(8)]


class TestRoundTrip:
    def test_from_rows_rows_round_trips(self):
        batch = ObservationBatch.from_rows(ROWS)
        assert batch.rows() == ROWS
        assert list(batch) == ROWS
        assert len(batch) == len(ROWS)

    def test_row_is_lazy_and_exact(self):
        batch = ObservationBatch.from_rows(ROWS)
        for index, row in enumerate(ROWS):
            assert batch.row(index) == row

    def test_append_fields_matches_append_row(self):
        boxed = ObservationBatch.from_rows(ROWS)
        raw = ObservationBatch()
        for row in ROWS:
            raw.append_fields(
                day=row.day,
                domain=row.domain,
                tld=row.tld,
                ns_names=row.ns_names,
                apex_addrs=row.apex_addrs,
                www_cnames=row.www_cnames,
                www_addrs=row.www_addrs,
                apex_addrs6=row.apex_addrs6,
                www_addrs6=row.www_addrs6,
                asns=row.asns,
            )
        assert raw == boxed

    def test_empty_batch(self):
        batch = ObservationBatch()
        assert len(batch) == 0
        assert batch.rows() == []
        assert batch.compact().rows() == []
        assert ObservationBatch.concat([]).rows() == []


class TestColumnarAccessors:
    def test_text_accessors(self):
        batch = ObservationBatch.from_rows(ROWS)
        for index, row in enumerate(ROWS):
            assert batch.domain_text(index) == row.domain
            assert batch.tld_text(index) == row.tld
            assert batch.ns_texts(index) == row.ns_names
            assert batch.cname_texts(index) == row.www_cnames
            assert batch.asn_set(index) == row.asns

    def test_asn_column_is_sorted(self):
        batch = ObservationBatch.from_rows(ROWS)
        for column in batch.asns:
            assert list(column) == sorted(set(column))

    def test_match_key_shared_iff_signature_fields_match(self):
        first = observation(0)
        twin = DomainObservation(
            day=5,
            domain="other.com",
            tld="com",
            ns_names=first.ns_names,
            apex_addrs=("203.0.113.200",),
            www_cnames=first.www_cnames,
            www_addrs=(),
            asns=first.asns,
        )
        batch = ObservationBatch.from_rows([first, twin, observation(1)])
        assert batch.match_key(0) == batch.match_key(1)
        assert batch.match_key(0) != batch.match_key(2)

    def test_row_address_ids_dedup_in_all_addresses_order(self):
        row = DomainObservation(
            day=0,
            domain="dup.com",
            tld="com",
            ns_names=("ns.dup.com",),
            apex_addrs=("192.0.2.1", "192.0.2.2"),
            www_addrs=("192.0.2.2", "192.0.2.3"),
            apex_addrs6=("2001:db8::1",),
            www_addrs6=("2001:db8::1",),
        )
        batch = ObservationBatch.from_rows([row])
        texts = batch.addresses.texts(batch.row_address_ids(0))
        assert texts == row.all_addresses()

    def test_unique_address_ids_first_seen_order(self):
        batch = ObservationBatch.from_rows(ROWS)
        texts = batch.addresses.texts(batch.unique_address_ids())
        expected = list(
            dict.fromkeys(
                addr for row in ROWS for addr in row.all_addresses()
            )
        )
        assert list(texts) == expected


class TestRestructuring:
    def test_slice_shares_pools(self):
        batch = ObservationBatch.from_rows(ROWS)
        part = batch.slice(2, 6)
        assert part.rows() == ROWS[2:6]
        assert part.names is batch.names
        assert part.addresses is batch.addresses

    def test_getitem_int_slice_and_step(self):
        batch = ObservationBatch.from_rows(ROWS)
        assert batch[3] == ROWS[3]
        assert batch[1:4].rows() == ROWS[1:4]
        with pytest.raises(ValueError):
            batch[::2]

    def test_compact_reinterns_only_referenced_values(self):
        batch = ObservationBatch.from_rows(ROWS)
        part = batch.slice(0, 2).compact()
        assert part.rows() == ROWS[:2]
        assert part.names is not batch.names
        assert len(part.names) < len(batch.names)
        assert len(part.addresses) < len(batch.addresses)

    def test_concat_shared_pools_fast_path(self):
        builder = BatchBuilder()
        first = builder.build(ROWS[:3])
        second = builder.build(ROWS[3:])
        merged = ObservationBatch.concat([first, second])
        assert merged.rows() == ROWS
        assert merged.names is builder.names

    def test_concat_mixed_pools_reinterns(self):
        first = ObservationBatch.from_rows(ROWS[:3])
        second = ObservationBatch.from_rows(ROWS[3:])
        merged = ObservationBatch.concat([first, second])
        assert merged.rows() == ROWS
        assert merged.names is not first.names

    def test_with_asns_replaces_only_asn_column(self):
        batch = ObservationBatch.from_rows(ROWS)
        enriched = batch.with_asns([(1,)] * len(ROWS))
        assert all(column == (1,) for column in enriched.asns)
        assert enriched.days is batch.days
        assert [r.domain for r in enriched] == [r.domain for r in ROWS]
        with pytest.raises(ValueError):
            batch.with_asns([(1,)])


class TestEqualityAndHashing:
    def test_batches_compare_by_rows(self):
        assert ObservationBatch.from_rows(ROWS) == ObservationBatch.from_rows(
            ROWS
        )
        assert ObservationBatch.from_rows(ROWS) != ObservationBatch.from_rows(
            ROWS[:-1]
        )

    def test_batch_is_unhashable(self):
        with pytest.raises(TypeError):
            hash(ObservationBatch())

    def test_batch_rows_compares_to_lists(self):
        view = BatchRows(ObservationBatch.from_rows(ROWS))
        assert view == ROWS
        assert view == tuple(ROWS)
        assert ROWS == view  # reflected: dataclass list eq delegates
        assert view == BatchRows(ObservationBatch.from_rows(ROWS))
        assert view != ROWS[:-1]

    def test_batch_rows_sequence_protocol(self):
        view = BatchRows(ObservationBatch.from_rows(ROWS))
        assert len(view) == len(ROWS)
        assert view[2] == ROWS[2]
        assert view[1:3] == ROWS[1:3]
        assert list(view) == ROWS
        with pytest.raises(TypeError):
            hash(view)
        assert "8 rows" in repr(view)


class TestBuilder:
    def test_builder_batches_share_pools(self):
        builder = BatchBuilder()
        first = builder.build(ROWS[:4])
        second = builder.build(ROWS[:4])
        assert first.domains == second.domains
        assert first.names is second.names
