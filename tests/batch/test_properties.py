"""Property-based round-trip checks for the columnar plane.

The contract under test: for any list of observations — IPv6-only rows,
empty CNAME chains, multi-origin ASN sets, the empty batch — boxing them
into an :class:`ObservationBatch` and reading the rows back reproduces
the input exactly, and every restructuring operation (slice, compact,
concat, chunking) preserves row content. Runs only where ``hypothesis``
is installed (optional dev dependency; the suite must not require it).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.batch.batch import BatchBuilder, ObservationBatch  # noqa: E402
from repro.measurement.snapshot import DomainObservation  # noqa: E402
from repro.parallel.sharding import chunk_batches, chunk_records  # noqa: E402

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=12,
)
hostname = st.builds("{}.{}.{}".format, label, label, label)
ipv4 = st.builds(
    "{}.{}.{}.{}".format,
    *[st.integers(min_value=0, max_value=255)] * 4,
)
ipv6 = st.builds(
    "2001:db8:{:x}::{:x}".format,
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=1, max_value=0xFFFF),
)


@st.composite
def observations(draw):
    """One observation; optional columns are frequently empty, ASN sets
    frequently multi-origin (anycast), addresses frequently IPv6-only."""
    v4_heavy = draw(st.booleans())
    return DomainObservation(
        day=draw(st.integers(min_value=0, max_value=3000)),
        domain=draw(hostname),
        tld=draw(st.sampled_from(["com", "net", "org", "nl"])),
        ns_names=tuple(
            draw(st.lists(hostname, min_size=0, max_size=3))
        ),
        apex_addrs=tuple(
            draw(st.lists(ipv4, max_size=2)) if v4_heavy else ()
        ),
        www_cnames=tuple(
            draw(st.lists(hostname, min_size=0, max_size=2))
        ),
        www_addrs=tuple(
            draw(st.lists(ipv4, max_size=2)) if v4_heavy else ()
        ),
        apex_addrs6=tuple(draw(st.lists(ipv6, max_size=2))),
        www_addrs6=tuple(draw(st.lists(ipv6, max_size=2))),
        asns=frozenset(
            draw(
                st.sets(
                    st.integers(min_value=1, max_value=70000), max_size=4
                )
            )
        ),
    )


row_lists = st.lists(observations(), min_size=0, max_size=12)


class TestBatchRoundTrip:
    @RELAXED
    @given(rows=row_lists)
    def test_from_rows_rows_is_identity(self, rows):
        assert ObservationBatch.from_rows(rows).rows() == rows

    @RELAXED
    @given(rows=row_lists)
    def test_shared_pool_builder_round_trips(self, rows):
        builder = BatchBuilder()
        # Interleave a second build to pollute the shared pools: row
        # fidelity must not depend on pool ids starting at zero.
        builder.build(rows[::-1])
        assert builder.build(rows).rows() == rows

    @RELAXED
    @given(rows=row_lists, data=st.data())
    def test_slice_compact_concat_preserve_rows(self, rows, data):
        batch = ObservationBatch.from_rows(rows)
        cut = data.draw(
            st.integers(min_value=0, max_value=len(rows)), label="cut"
        )
        head, tail = batch.slice(0, cut), batch.slice(cut, len(rows))
        assert head.rows() + tail.rows() == rows
        assert head.compact().rows() == rows[:cut]
        assert ObservationBatch.concat([head, tail]).rows() == rows
        assert (
            ObservationBatch.concat(
                [head.compact(), tail.compact()]
            ).rows()
            == rows
        )

    @RELAXED
    @given(
        rows=row_lists,
        chunks=st.integers(min_value=1, max_value=5),
    )
    def test_chunk_batches_matches_chunk_records(self, rows, chunks):
        batch = ObservationBatch.from_rows(rows)
        parts = chunk_batches(batch, chunks)
        expected = chunk_records(rows, chunks)
        assert len(parts) == chunks
        assert [part.rows() for part in parts] == [
            list(chunk) for chunk in expected
        ]

    @RELAXED
    @given(rows=row_lists)
    def test_all_addresses_matches_row_address_ids(self, rows):
        batch = ObservationBatch.from_rows(rows)
        for index, row in enumerate(rows):
            assert (
                batch.addresses.texts(batch.row_address_ids(index))
                == row.all_addresses()
            )
