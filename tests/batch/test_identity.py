"""Cross-mode byte-identity of the batch-first pipeline, three seeds.

The columnar plane is only allowed to change *how* data moves, never
*what* comes out. For three fixed worlds this suite pins the canonical
JSON export (the bytes ``repro study --output`` writes) across serial
and ``workers=2`` runs, and pins the streamed engine — fed columnar
partitions replayed from a landed :class:`ColumnStore`, including a
kill/checkpoint/resume cycle — plus whole-history
:meth:`AdoptionStudy.detect_from_store` against the serial detection
results.
"""

import json
import os

import pytest

from repro.core.pipeline import AdoptionStudy
from repro.measurement.storage import ColumnStore
from repro.reporting.export import study_to_dict
from repro.stream.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import StreamEngine
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed

SCALE = 300000
SEEDS = (3, 7, 11)
#: Kill/resume split point: mid-study, with every scope active.
KILL_DAY = 400


@pytest.fixture(scope="module", params=SEEDS)
def seeded(request):
    """(world, study, results, landed store) for one fixed seed."""
    from repro.world.scenario import ScenarioConfig, build_paper_world

    world = build_paper_world(
        ScenarioConfig(scale=SCALE, seed=request.param)
    )
    study = AdoptionStudy(world)
    results = study.run()
    assert any(results.detection_gtld.any_use_combined)
    # Land the daily partitions the study's segments compress — the
    # store then holds each domain's complete history per source.
    store = ColumnStore()
    feed = SegmentReplayFeed(world, results.segments)
    for part in feed.days():
        store.append(part.source, part.day, list(part.observations))
    return world, study, results, store


def _canonical(results) -> str:
    return json.dumps(study_to_dict(results), sort_keys=True)


class TestThreeSeedIdentity:
    def test_workers2_export_byte_identical(self, seeded):
        world, _, results, _ = seeded
        parallel = AdoptionStudy(world).run(
            parallel=True, workers=2, shard_count=4
        )
        assert _canonical(parallel) == _canonical(results)

    def test_streamed_batches_match_serial_detection(self, seeded):
        world, _, results, store = seeded
        feed = SegmentReplayFeed(world, results.segments)
        engine = StreamEngine(world.horizon, windows=feed.windows())
        engine.ingest_feed(StoreReplayFeed(store).days())
        assert engine.detection("gtld") == results.detection_gtld
        assert (
            engine.detection("alexa").any_use_combined
            == results.detection_alexa.any_use_combined
        )

    def test_kill_resume_streams_to_identical_state(self, seeded, tmp_path):
        world, _, results, store = seeded
        windows = SegmentReplayFeed(world, results.segments).windows()

        straight = StreamEngine(world.horizon, windows=windows)
        straight.ingest_feed(StoreReplayFeed(store).days())

        interrupted = StreamEngine(world.horizon, windows=windows)
        interrupted.ingest_feed(StoreReplayFeed(store).days(end=KILL_DAY))
        path = os.path.join(str(tmp_path), "stream.ckpt")
        save_checkpoint(interrupted, path)
        del interrupted  # the "kill": only the checkpoint survives

        resumed = load_checkpoint(path)
        start = min(
            resumed.resume_day(source) for source in resumed.sources
        )
        assert start == KILL_DAY
        resumed.ingest_feed(StoreReplayFeed(store).days(start=start))

        assert state_digest(resumed) == state_digest(straight)
        assert resumed.detection("gtld") == results.detection_gtld

    def test_detect_from_store_matches_serial_detection(self, seeded):
        _, study, results, store = seeded
        detected = study.detect_from_store(store, ("com", "net", "org"))
        assert detected == results.detection_gtld
