"""Tests for the name-server exposure analysis (§5)."""

import pytest

from repro.core.detection import DetectionResult
from repro.core.exposure import ExposureReport, analyze_exposure, render_exposure


def detection_with_combos(combo_days):
    return DetectionResult(
        horizon=100,
        providers={},
        any_use_by_tld={},
        any_use_combined=[],
        intervals={},
        combo_days=combo_days,
    )


class TestExposureReport:
    def test_ratio(self):
        report = ExposureReport("X", protected_days=25, exposed_days=75)
        assert report.exposure_ratio == 0.75
        assert report.total_days == 100

    def test_empty_ratio(self):
        assert ExposureReport("X", 0, 0).exposure_ratio == 0.0


class TestAnalyze:
    def test_combo_partitioning(self):
        detection = detection_with_combos(
            {
                "P": {
                    "AS+NS": 40,        # diverted + delegated: protected
                    "AS+CNAME+NS": 10,  # protected
                    "AS+CNAME": 30,     # diverted, own NS: exposed
                    "AS": 15,           # exposed
                    "NS": 99,           # delegation only: excluded
                }
            }
        )
        report = analyze_exposure(detection)["P"]
        assert report.protected_days == 50
        assert report.exposed_days == 45
        assert report.exposure_ratio == pytest.approx(45 / 95)

    def test_cname_only_counts_as_diversion(self):
        detection = detection_with_combos({"P": {"CNAME": 7}})
        assert analyze_exposure(detection)["P"].exposed_days == 7


class TestOnStudy:
    def test_incapsula_more_exposed_than_cloudflare(self, study_results):
        """The paper's §5 point, quantified: Incapsula customers rarely
        delegate, CloudFlare customers mostly do."""
        reports = analyze_exposure(study_results.detection_gtld)
        assert (
            reports["Incapsula"].exposure_ratio
            > reports["CloudFlare"].exposure_ratio
        )
        assert reports["Incapsula"].exposure_ratio > 0.9
        assert reports["CloudFlare"].exposure_ratio < 0.4

    def test_render(self, study_results):
        reports = analyze_exposure(study_results.detection_gtld)
        text = render_exposure(reports)
        assert "exposed" in text
        assert "CloudFlare" in text
