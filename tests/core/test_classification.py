"""Tests for always-on / on-demand classification (§3.4)."""

import pytest

from repro.core.classification import UsageClass, UsageClassifier
from repro.core.detection import UseInterval

HORIZON = 100


@pytest.fixture
def classifier():
    return UsageClassifier(HORIZON)


def classify(classifier, intervals, life=(0, HORIZON)):
    return classifier.classify_intervals(
        [UseInterval(*i) for i in intervals], *life
    )


class TestSingleInterval:
    def test_always_on(self, classifier):
        assert classify(classifier, [(0, HORIZON)]) == UsageClass.ALWAYS_ON

    def test_always_on_for_shorter_lived_domain(self, classifier):
        assert classify(
            classifier, [(10, 60)], life=(10, 60)
        ) == UsageClass.ALWAYS_ON

    def test_adopted(self, classifier):
        assert classify(classifier, [(40, HORIZON)]) == UsageClass.ADOPTED

    def test_abandoned(self, classifier):
        assert classify(classifier, [(0, 60)]) == UsageClass.ABANDONED

    def test_single_peak_is_ambiguous(self, classifier):
        assert classify(classifier, [(40, 60)]) == UsageClass.SINGLE_PEAK


class TestMultipleIntervals:
    def test_two_intervals_intermittent(self, classifier):
        assert classify(
            classifier, [(0, 10), (50, 60)]
        ) == UsageClass.INTERMITTENT

    def test_three_peaks_on_demand(self, classifier):
        assert classify(
            classifier, [(0, 10), (30, 40), (60, 70)]
        ) == UsageClass.ON_DEMAND

    def test_empty_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.classify_intervals([], 0, HORIZON)


class TestResultClassification:
    def test_classify_result_and_summaries(self, classifier):
        from repro.core.detection import DetectionResult

        detection = DetectionResult(
            horizon=HORIZON,
            providers={},
            any_use_by_tld={},
            any_use_combined=[],
            intervals={
                ("a.com", "CloudFlare"): [UseInterval(0, HORIZON)],
                ("b.com", "Neustar"): [
                    UseInterval(0, 5),
                    UseInterval(20, 24),
                    UseInterval(50, 53),
                ],
                ("c.com", "Neustar"): [UseInterval(10, 20)],
            },
            combo_days={},
        )
        usages = classifier.classify_result(
            detection, {"a.com": (0, HORIZON), "b.com": (0, HORIZON)}
        )
        by_key = {(u.domain, u.provider): u.usage for u in usages}
        assert by_key[("a.com", "CloudFlare")] == UsageClass.ALWAYS_ON
        assert by_key[("b.com", "Neustar")] == UsageClass.ON_DEMAND
        assert by_key[("c.com", "Neustar")] == UsageClass.SINGLE_PEAK

        summary = UsageClassifier.summarize(usages)
        assert summary["Neustar"][UsageClass.ON_DEMAND] == 1
        assert summary["Neustar"][UsageClass.SINGLE_PEAK] == 1

        on_demand = UsageClassifier.on_demand_domains(usages)
        assert [u.domain for u in on_demand["Neustar"]] == ["b.com"]
        assert "CloudFlare" not in on_demand

    def test_total_days(self):
        from repro.core.classification import DomainUsage

        usage = DomainUsage(
            domain="a.com",
            provider="X",
            usage=UsageClass.ON_DEMAND,
            intervals=(UseInterval(0, 5), UseInterval(10, 12)),
        )
        assert usage.total_days == 7
