"""Tests for median smoothing, anomaly cleaning, and growth factors."""

import pytest

from repro.core.growth import (
    GrowthAnalysis,
    median_smooth,
)


class TestMedianSmooth:
    def test_flat_series_unchanged(self):
        assert median_smooth([5.0] * 10, window=3) == [5.0] * 10

    def test_single_spike_removed(self):
        values = [1.0] * 10
        values[5] = 100.0
        smoothed = median_smooth(values, window=5)
        assert smoothed[5] == 1.0

    def test_even_window_rounded_up(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert median_smooth(values, window=2) == median_smooth(values, 3)

    def test_monotone_preserved(self):
        values = list(range(20))
        smoothed = median_smooth([float(v) for v in values], window=5)
        assert smoothed == sorted(smoothed)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            median_smooth([1.0], window=0)


class TestCleaning:
    def test_spike_is_cleaned_and_logged(self):
        analysis = GrowthAnalysis(window=5, clean_window=21)
        values = [100.0] * 60
        values[30] = 500.0
        cleaned, anomalies = analysis.clean(values)
        assert cleaned[30] == 100.0
        assert len(anomalies) == 1
        assert anomalies[0].day == 30
        assert anomalies[0].raw == 500.0
        assert anomalies[0].deviation == pytest.approx(4.0)

    def test_trough_is_cleaned(self):
        analysis = GrowthAnalysis(window=5, clean_window=21)
        values = [100.0] * 60
        values[30] = 10.0
        cleaned, anomalies = analysis.clean(values)
        assert cleaned[30] == 100.0
        assert anomalies

    def test_multiweek_plateau_cleaned_with_long_window(self):
        analysis = GrowthAnalysis(window=21, clean_window=91)
        values = [100.0] * 200
        for day in range(80, 120):  # a 40-day plateau
            values[day] = 250.0
        cleaned, anomalies = analysis.clean(values)
        assert max(cleaned) == 100.0
        assert len(anomalies) == 40

    def test_slow_trend_not_cleaned(self):
        analysis = GrowthAnalysis()
        values = [100.0 + 0.05 * day for day in range(550)]
        _, anomalies = analysis.clean(values)
        assert anomalies == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GrowthAnalysis(deviation_threshold=0)


class TestGrowthSeries:
    def test_growth_factor(self):
        analysis = GrowthAnalysis(window=3, clean_window=7)
        values = [float(100 + day) for day in range(50)]
        series = analysis.analyze("test", values)
        assert series.growth_factor == pytest.approx(149 / 100, abs=0.02)

    def test_relative_starts_at_one(self):
        analysis = GrowthAnalysis(window=3, clean_window=7)
        series = analysis.analyze("t", [50.0 + d for d in range(30)])
        assert series.relative()[0] == pytest.approx(1.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            GrowthAnalysis().analyze("t", [])

    def test_zero_start_rejected(self):
        analysis = GrowthAnalysis(window=3, clean_window=7)
        series = analysis.analyze("t", [0.0] * 20)
        with pytest.raises(ValueError):
            series.growth_factor

    def test_anomalous_growth_excluded_from_factor(self):
        """The paper's point: the 1.24x excludes anomalous peaks."""
        analysis = GrowthAnalysis(window=5, clean_window=41)
        values = [float(100 + day // 10) for day in range(100)]
        values[-1] = 10_000.0  # a mass event on the last day
        series = analysis.analyze("t", values)
        assert series.growth_factor < 1.2

    def test_compare_labels(self):
        analysis = GrowthAnalysis(window=3, clean_window=7)
        result = analysis.compare(
            {"a": [1.0] * 20, "b": [2.0] * 20}
        )
        assert set(result) == {"a", "b"}
        assert result["a"].label == "a"
