"""Tests for diversion-mechanism classification (§3.4)."""

import pytest

from repro.core.detection import DetectionResult, ProviderSeries, UseInterval
from repro.core.diversion import (
    DiversionClassifier,
    DiversionMechanism,
)
from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment

CATALOG = SignatureCatalog.paper_table2()
HORIZON = 100


def observation(ns=("ns1.hostco-dns.com",), cnames=(), apex=("10.8.0.1",),
                asns=frozenset({64500})):
    return DomainObservation(
        day=0,
        domain="a.com",
        tld="com",
        ns_names=tuple(ns),
        apex_addrs=tuple(apex),
        www_addrs=tuple(apex),
        www_cnames=tuple(cnames),
        asns=frozenset(asns),
    )


BASE = observation()
BGP_DIVERTED = observation(asns={26415})  # same addresses, Verisign origin
A_DIVERTED = observation(apex=("10.99.0.1",), asns={19324})
CNAME_DIVERTED = observation(
    cnames=("tok.incapdns.net",), apex=("10.50.0.1",), asns={19551}
)
NS_DIVERTED = observation(
    ns=("kate.ns.cloudflare.com",), apex=("10.60.0.1",), asns={13335}
)


@pytest.fixture
def classifier():
    return DiversionClassifier(CATALOG)


class TestClassifyEdge:
    def test_bgp(self, classifier):
        mechanism = classifier.classify_edge(
            CATALOG.get("Verisign"), BASE, BGP_DIVERTED
        )
        assert mechanism == DiversionMechanism.BGP

    def test_a_record(self, classifier):
        mechanism = classifier.classify_edge(
            CATALOG.get("DOSarrest"), BASE, A_DIVERTED
        )
        assert mechanism == DiversionMechanism.A_RECORD

    def test_cname(self, classifier):
        mechanism = classifier.classify_edge(
            CATALOG.get("Incapsula"), BASE, CNAME_DIVERTED
        )
        assert mechanism == DiversionMechanism.CNAME

    def test_ns_delegation(self, classifier):
        mechanism = classifier.classify_edge(
            CATALOG.get("CloudFlare"), BASE, NS_DIVERTED
        )
        assert mechanism == DiversionMechanism.NS_DELEGATION

    def test_missing_side_is_unobserved(self, classifier):
        assert classifier.classify_edge(
            CATALOG.get("Verisign"), None, BGP_DIVERTED
        ) == DiversionMechanism.UNOBSERVED


class TestClassifyDomain:
    def segments(self):
        return [
            ObservationSegment(0, 30, BASE),
            ObservationSegment(30, 40, BGP_DIVERTED),
            ObservationSegment(40, HORIZON, BASE),
        ]

    def test_on_and_off_edges(self, classifier):
        edges = classifier.classify_domain(
            "a.com", "Verisign", [UseInterval(30, 40)], self.segments(),
            HORIZON,
        )
        assert [(e.direction, e.day, e.mechanism) for e in edges] == [
            ("on", 30, DiversionMechanism.BGP),
            ("off", 40, DiversionMechanism.BGP),
        ]

    def test_interval_from_day_zero_has_no_on_edge(self, classifier):
        edges = classifier.classify_domain(
            "a.com", "Verisign", [UseInterval(0, 40)],
            [
                ObservationSegment(0, 40, BGP_DIVERTED),
                ObservationSegment(40, HORIZON, BASE),
            ],
            HORIZON,
        )
        assert [e.direction for e in edges] == ["off"]

    def test_censored_interval_has_no_off_edge(self, classifier):
        edges = classifier.classify_domain(
            "a.com", "Verisign", [UseInterval(30, HORIZON)],
            [
                ObservationSegment(0, 30, BASE),
                ObservationSegment(30, HORIZON, BGP_DIVERTED),
            ],
            HORIZON,
        )
        assert [e.direction for e in edges] == ["on"]

    def test_unknown_provider_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.classify_domain(
                "a.com", "Nope", [UseInterval(0, 10)], [], HORIZON
            )


class TestStudyLevel:
    def test_classify_result_and_summary(self, classifier):
        detection = DetectionResult(
            horizon=HORIZON,
            providers={"Verisign": ProviderSeries("Verisign",
                                                  [0] * HORIZON, {})},
            any_use_by_tld={},
            any_use_combined=[0] * HORIZON,
            intervals={("a.com", "Verisign"): [UseInterval(30, 40)]},
            combo_days={},
        )
        segments = {
            "a.com": [
                ObservationSegment(0, 30, BASE),
                ObservationSegment(30, 40, BGP_DIVERTED),
                ObservationSegment(40, HORIZON, BASE),
            ]
        }
        edges = classifier.classify_result(detection, segments)
        summary = DiversionClassifier.summarize(edges)
        assert summary["Verisign"][DiversionMechanism.BGP] == 1


class TestOnRealWorld:
    def test_enom_classified_as_bgp(self, study_world, study_results):
        """ENOM's diversion keeps the DNS untouched — pure BGP (§4.4.1)."""
        classifier = DiversionClassifier(CATALOG)
        name = study_world.thirdparties["ENOM"].domains[0]
        intervals = study_results.detection_gtld.intervals[
            (name, "Verisign")
        ]
        edges = classifier.classify_domain(
            name, "Verisign", intervals,
            study_results.segments[name], study_world.horizon,
        )
        on_edges = [e for e in edges if e.direction == "on"]
        assert on_edges
        assert all(
            e.mechanism == DiversionMechanism.BGP for e in on_edges
        )

    def test_namecheap_classified_as_a_record(
        self, study_world, study_results
    ):
        """Namecheap's registrar NS answers new addresses — A-record."""
        classifier = DiversionClassifier(CATALOG)
        name = study_world.thirdparties["Namecheap"].domains[0]
        intervals = study_results.detection_gtld.intervals[
            (name, "CloudFlare")
        ]
        edges = classifier.classify_domain(
            name, "CloudFlare", intervals,
            study_results.segments[name], study_world.horizon,
        )
        on_edges = [e for e in edges if e.direction == "on"]
        assert on_edges
        assert all(
            e.mechanism == DiversionMechanism.A_RECORD for e in on_edges
        )
