"""Tests for first-seen/last-seen flux analysis (§4.4.2)."""

import pytest

from repro.core.detection import DetectionResult, ProviderSeries, UseInterval
from repro.core.flux import FluxAnalysis, FluxSeries

HORIZON = 112  # 8 two-week windows


def detection_with(intervals):
    providers = {
        provider: ProviderSeries(provider, [0] * HORIZON, {})
        for _, provider in intervals
    }
    return DetectionResult(
        horizon=HORIZON,
        providers=providers,
        any_use_by_tld={},
        any_use_combined=[0] * HORIZON,
        intervals={
            key: [UseInterval(*pair) for pair in pairs]
            for key, pairs in intervals.items()
        },
        combo_days={},
    )


class TestFirstLastSeen:
    def test_simple(self):
        flux = FluxAnalysis(HORIZON)
        first, (last, censored) = flux.first_last_seen(
            [UseInterval(10, 20), UseInterval(40, 50)]
        )
        assert first == 10
        assert last == 49
        assert not censored

    def test_censored_at_horizon(self):
        flux = FluxAnalysis(HORIZON)
        _, (_, censored) = flux.first_last_seen([UseInterval(10, HORIZON)])
        assert censored

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FluxAnalysis(HORIZON).first_last_seen([])


class TestAnalyze:
    def test_influx_outflux_buckets(self):
        detection = detection_with(
            {
                ("a.com", "X"): [(0, 10)],
                ("b.com", "X"): [(15, 20), (30, 40)],
                ("c.com", "X"): [(20, HORIZON)],
            }
        )
        series = FluxAnalysis(HORIZON).analyze(detection)["X"]
        # Windows are day // 14: a first seen day 0 (w0); b day 15 (w1);
        # c day 20 (w1).
        assert series.influx == [1, 2, 0, 0, 0, 0, 0, 0]
        # a last seen day 9 (w0); b last seen day 39 (w2); c censored.
        assert series.outflux == [1, 0, 1, 0, 0, 0, 0, 0]
        assert series.delta == [0, 2, -1, 0, 0, 0, 0, 0]

    def test_domain_with_many_peaks_counts_once(self):
        """The paper's key flux property."""
        detection = detection_with(
            {("a.com", "X"): [(0, 5), (20, 25), (40, 45), (60, 65)]}
        )
        series = FluxAnalysis(HORIZON).analyze(detection)["X"]
        assert sum(series.influx) == 1
        assert sum(series.outflux) == 1

    def test_spread_metric(self):
        # Window 0 (the pre-existing base) is excluded from the metric.
        concentrated = FluxSeries("X", 14, [5, 10, 0, 0, 0], [0] * 5)
        spread_out = FluxSeries("Y", 14, [5, 3, 4, 3, 3], [0] * 5)
        assert concentrated.spread() == 0.0
        assert spread_out.spread() > 0.5

    def test_spread_of_empty_is_zero(self):
        assert FluxSeries("X", 14, [0, 0], [0, 0]).spread() == 0.0
        assert FluxSeries("X", 14, [9, 0], [0, 0]).spread() == 0.0

    def test_largest_inflow_window(self):
        series = FluxSeries("X", 14, [1, 7, 2], [0, 0, 0])
        assert series.largest_inflow_window() == 1

    def test_providers_without_intervals_get_empty_series(self):
        detection = detection_with({("a.com", "X"): [(0, 10)]})
        detection.providers["Y"] = ProviderSeries("Y", [0] * HORIZON, {})
        series = FluxAnalysis(HORIZON).analyze(detection)
        assert sum(series["Y"].influx) == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FluxAnalysis(HORIZON, window_days=0)
