"""Tests for on-demand peak-duration analysis (§4.4.3)."""

import pytest

from repro.core.detection import DetectionResult, ProviderSeries, UseInterval
from repro.core.peaks import PeakAnalysis, PeakStats

HORIZON = 100


def detection_with(intervals):
    providers = {
        provider: ProviderSeries(provider, [0] * HORIZON, {})
        for _, provider in intervals
    }
    return DetectionResult(
        horizon=HORIZON,
        providers=providers,
        any_use_by_tld={},
        any_use_combined=[0] * HORIZON,
        intervals={
            key: [UseInterval(*pair) for pair in pairs]
            for key, pairs in intervals.items()
        },
        combo_days={},
    )


class TestPeakStats:
    def test_p80(self):
        stats = PeakStats("X", 1, durations=[1, 2, 3, 4, 10])
        assert stats.p80 == 4

    def test_percentile_bounds(self):
        stats = PeakStats("X", 1, durations=[5])
        assert stats.percentile(1.0) == 5
        with pytest.raises(ValueError):
            stats.percentile(0.0)

    def test_empty_durations_raise(self):
        with pytest.raises(ValueError):
            PeakStats("X", 0, durations=[]).p80

    def test_cdf_monotone_and_complete(self):
        stats = PeakStats("X", 1, durations=[2, 2, 5])
        points = stats.cdf()
        assert points[0] == (1, 0.0)
        assert points[1] == (2, pytest.approx(2 / 3))
        assert points[-1] == (5, 1.0)
        probs = [p for _, p in points]
        assert probs == sorted(probs)

    def test_cdf_empty(self):
        assert PeakStats("X", 0, durations=[]).cdf() == []


class TestAnalysis:
    def test_on_demand_requires_three_peaks(self):
        detection = detection_with(
            {
                ("a.com", "X"): [(0, 5), (20, 25), (40, 46)],
                ("b.com", "X"): [(0, 5), (20, 25)],
            }
        )
        stats = PeakAnalysis(HORIZON).analyze(detection)["X"]
        assert stats.domain_count == 1
        assert sorted(stats.durations) == [5, 5, 6]

    def test_censored_final_interval_excluded_from_durations(self):
        detection = detection_with(
            {("a.com", "X"): [(0, 5), (20, 25), (60, HORIZON)]}
        )
        stats = PeakAnalysis(HORIZON).analyze(detection)["X"]
        assert stats.domain_count == 1
        assert sorted(stats.durations) == [5, 5]

    def test_min_peaks_configurable(self):
        detection = detection_with(
            {("a.com", "X"): [(0, 5), (20, 25)]}
        )
        stats = PeakAnalysis(HORIZON, min_peaks=2).analyze(detection)["X"]
        assert stats.domain_count == 1

    def test_provider_without_on_demand_domains(self):
        detection = detection_with({("a.com", "X"): [(0, HORIZON)]})
        stats = PeakAnalysis(HORIZON).analyze(detection)["X"]
        assert stats.domain_count == 0
        assert stats.durations == []

    def test_peaks_of_filters_censored(self):
        analysis = PeakAnalysis(HORIZON)
        peaks = analysis.peaks_of(
            [UseInterval(0, 10), UseInterval(50, HORIZON)]
        )
        assert peaks == [UseInterval(0, 10)]
