"""Tests for the full-study orchestration (on the shared mid-size world)."""

import pytest

from repro.core.classification import UsageClass
from repro.world.timeline import CCTLD_START_DAY, GTLD_DAYS


class TestStudyShape:
    def test_horizon(self, study_results):
        assert study_results.horizon == GTLD_DAYS

    def test_all_nine_providers_detected(self, study_results):
        assert set(study_results.detection_gtld.providers) == {
            "Akamai", "CenturyLink", "CloudFlare", "DOSarrest",
            "F5 Networks", "Incapsula", "Level 3", "Neustar", "Verisign",
        }

    def test_zone_sizes_present(self, study_results):
        assert set(study_results.zone_sizes) == {"com", "net", "org", "nl"}
        assert len(study_results.zone_sizes["com"]) == GTLD_DAYS

    def test_dataset_table_rows(self, study_results):
        sources = [row.source for row in study_results.dataset_table]
        assert sources == ["com", "net", "org", "nl", "alexa"]
        for row in study_results.dataset_table:
            assert row.slds > 0
            assert row.data_points > 0
            assert row.estimated_bytes > 0

    def test_dataset_windows(self, study_results):
        by_source = {row.source: row for row in study_results.dataset_table}
        assert by_source["com"].days == GTLD_DAYS
        assert by_source["nl"].start_day == CCTLD_START_DAY
        assert by_source["nl"].days == GTLD_DAYS - CCTLD_START_DAY

    def test_segments_retained(self, study_results, study_world):
        assert len(study_results.segments) == len(study_world.domains)


class TestHeadlineNumbers:
    def test_adoption_outgrows_expansion(self, study_results):
        adoption = study_results.provider_growth_factor()
        expansion = study_results.expansion_factor()
        assert adoption > expansion
        assert adoption == pytest.approx(1.24, abs=0.08)
        assert expansion == pytest.approx(1.09, abs=0.03)

    def test_cc_growth_trends(self, study_results):
        nl = study_results.growth_cc["DPS adoption (.nl)"].growth_factor
        nl_zone = study_results.growth_cc[
            "Overall expansion (.nl)"
        ].growth_factor
        alexa = study_results.growth_cc["DPS adoption (Alexa)"].growth_factor
        assert nl > nl_zone
        assert nl == pytest.approx(1.105, abs=0.08)
        assert alexa == pytest.approx(1.118, abs=0.08)

    def test_namespace_distribution(self, study_results):
        assert study_results.namespace_distribution["com"] == pytest.approx(
            0.8247, abs=0.02
        )
        assert sum(
            study_results.namespace_distribution.values()
        ) == pytest.approx(1.0)

    def test_dps_distribution_skews_to_com(self, study_results):
        assert (
            study_results.dps_distribution["com"]
            > study_results.namespace_distribution["com"]
        )

    def test_cloudflare_is_largest(self, study_results):
        detection = study_results.detection_gtld
        end = {
            name: series.total[-1]
            for name, series in detection.providers.items()
        }
        assert max(end, key=end.get) == "CloudFlare"

    def test_cloudflare_mostly_delegated(self, study_results):
        """§4.3: ~75% of CloudFlare-using domains use its name servers."""
        from repro.core.references import RefType

        series = study_results.detection_gtld.providers["CloudFlare"]
        day = 300
        share = series.by_ref[RefType.NS][day] / series.total[day]
        assert share == pytest.approx(0.75, abs=0.08)

    def test_incapsula_rarely_delegated(self, study_results):
        """§4.3: only ~0.02% of Incapsula domains use delegation."""
        from repro.core.references import RefType

        series = study_results.detection_gtld.providers["Incapsula"]
        ns_series = series.by_ref.get(RefType.NS)
        day = 300
        ns_count = ns_series[day] if ns_series else 0
        assert ns_count <= max(2, series.total[day] * 0.05)


class TestDynamics:
    def test_anomalies_traced_to_third_parties(self, study_results):
        tracked = {"ns:wixdns.net", "ns:enomdns.com", "ns:zohodns.com",
                   "ns:sedoparking.com", "ns:registrar-servers.com"}
        top_groups = {
            attribution.top_group
            for attribution in study_results.attributions
        }
        assert tracked & top_groups

    def test_sedo_trough_on_day_266(self, study_results):
        akamai = [
            a for a in study_results.attributions
            if a.event.provider == "Akamai" and a.event.day == 266
        ]
        assert akamai
        assert akamai[0].event.delta < 0
        assert akamai[0].top_group == "ns:sedoparking.com"

    def test_on_demand_populations_exist(self, study_results):
        for provider in ("Neustar", "CloudFlare", "Verisign"):
            stats = study_results.peaks[provider]
            assert stats.domain_count > 0
            assert stats.durations

    def test_short_lived_vs_long_lived_peaks(self, study_results):
        """Fig. 8 ordering: Neustar P80 well below CloudFlare's."""
        assert (
            study_results.peaks["Neustar"].p80
            < study_results.peaks["CloudFlare"].p80
        )

    def test_usage_classes_present(self, study_results):
        classes = {usage.usage for usage in study_results.usages}
        assert UsageClass.ALWAYS_ON in classes
        assert UsageClass.ON_DEMAND in classes
        assert UsageClass.ADOPTED in classes

    def test_flux_counts_each_domain_once(self, study_results, study_world):
        flux = study_results.flux["Incapsula"]
        assert sum(flux.influx) <= len(
            [
                1
                for (domain, provider) in (
                    study_results.detection_gtld.intervals
                )
                if provider == "Incapsula"
            ]
        )
