"""Tests for the §3.3 fingerprint bootstrap on synthetic observations."""

import pytest

from repro.core.fingerprint import FingerprintBootstrap
from repro.measurement.snapshot import DomainObservation
from repro.routing.asn import ASRegistry


def observation(domain, ns=(), cnames=(), asns=()):
    return DomainObservation(
        day=0,
        domain=domain,
        tld="com",
        ns_names=tuple(ns),
        apex_addrs=("10.0.0.1",),
        www_cnames=tuple(cnames),
        asns=frozenset(asns),
    )


@pytest.fixture
def registry():
    registry = ASRegistry()
    registry.register("ExampleDPS, Inc.", 65001)
    registry.register("ExampleDPS, Inc.", 65002)
    registry.register("BigHoster", 64999)
    registry.register("SomeRegistrar", 64998)
    return registry


def synthetic_rows():
    rows = []
    # 20 customers at the DPS via CNAME redirection (AS+CNAME).
    for index in range(20):
        rows.append(
            observation(
                f"c{index}.com",
                ns=("ns1.bighoster-dns.com",),
                cnames=(f"tok{index}.exampledps.net",),
                asns={65001},
            )
        )
    # 10 customers with delegated zones (AS+NS).
    for index in range(10):
        rows.append(
            observation(
                f"n{index}.com",
                ns=("ns1.exampledps-dns.com",),
                asns={65002},
            )
        )
    # 300 plain hoster domains sharing the hoster's NS SLD.
    for index in range(300):
        rows.append(
            observation(
                f"p{index}.com",
                ns=("ns1.bighoster-dns.com",),
                asns={64999},
            )
        )
    # 50 registrar-hosted domains, a handful of which sit at the DPS
    # (the Namecheap pattern) — the registrar SLD must NOT be absorbed.
    for index in range(50):
        at_dps = index < 3
        rows.append(
            observation(
                f"r{index}.com",
                ns=("dns1.someregistrar.com",),
                asns={65001} if at_dps else {64998},
            )
        )
    return rows


class TestBootstrap:
    def test_seed_from_as_name_data(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        assert bootstrap.seed_asns("ExampleDPS") == frozenset({65001, 65002})

    def test_unknown_provider_rejected(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        with pytest.raises(ValueError):
            bootstrap.derive("NoSuchProvider")

    def test_derives_cname_and_ns_slds(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert "exampledps.net" in result.cname_slds
        assert "exampledps-dns.com" in result.ns_slds

    def test_rejects_shared_hoster_and_registrar_slds(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert "bighoster-dns.com" not in result.ns_slds
        assert "someregistrar.com" not in result.ns_slds

    def test_keeps_seed_asns(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert result.asns >= frozenset({65001, 65002})
        assert 64999 not in result.asns
        assert 64998 not in result.asns

    def test_support_counts_recorded(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert result.support["cname:exampledps.net"] == 20

    def test_terminates_within_max_iterations(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert result.iterations <= 8

    def test_to_signature(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        signature = bootstrap.derive("ExampleDPS").to_signature()
        assert signature.name == "ExampleDPS"

    def test_derive_catalog(self, registry):
        bootstrap = FingerprintBootstrap(synthetic_rows(), registry)
        catalog = bootstrap.derive_catalog(["ExampleDPS"])
        matches = catalog.match(
            observation("x.com", cnames=("t.exampledps.net",))
        )
        assert "ExampleDPS" in matches

    def test_purity_validation(self, registry):
        with pytest.raises(ValueError):
            FingerprintBootstrap([], registry, purity=0.0)


class TestNsHostLookup:
    """The NS-host refinement: decide by who operates the servers."""

    @staticmethod
    def lookup(hostname):
        table = {
            "ns1.exampledps-dns.com": frozenset({65002}),
            "ns1.parkit.com": frozenset({64997}),  # the parker's own AS
            "ns1.managed-dps.com": frozenset({65001}),
        }
        return table.get(hostname, frozenset())

    def rows_with_parker(self):
        rows = synthetic_rows()
        # A parking service: 40 domains, all parked *inside* the DPS's
        # address space, but served by the parker's own name servers.
        for index in range(40):
            rows.append(
                observation(
                    f"park{index}.com",
                    ns=("ns1.parkit.com",),
                    asns={65001},
                )
            )
        # A managed-DNS service operated by the DPS whose customers
        # mostly do NOT divert traffic (the Verisign pattern): holder
        # purity is 4/12 < 0.5, but the servers are the provider's.
        for index in range(12):
            rows.append(
                observation(
                    f"m{index}.com",
                    ns=("ns1.managed-dps.com",),
                    asns={65001} if index < 4 else {64999},
                )
            )
        return rows

    def test_parker_sld_rejected_despite_purity(self, registry):
        bootstrap = FingerprintBootstrap(
            self.rows_with_parker(), registry, ns_host_lookup=self.lookup
        )
        result = bootstrap.derive("ExampleDPS")
        assert "parkit.com" not in result.ns_slds

    def test_parker_sld_absorbed_without_lookup(self, registry):
        """Documents the hazard the lookup exists to fix."""
        bootstrap = FingerprintBootstrap(self.rows_with_parker(), registry)
        result = bootstrap.derive("ExampleDPS")
        assert "parkit.com" in result.ns_slds

    def test_managed_dns_sld_accepted_despite_low_purity(self, registry):
        bootstrap = FingerprintBootstrap(
            self.rows_with_parker(), registry, ns_host_lookup=self.lookup
        )
        result = bootstrap.derive("ExampleDPS")
        assert "managed-dps.com" in result.ns_slds

    def test_lookup_keeps_true_positives(self, registry):
        bootstrap = FingerprintBootstrap(
            self.rows_with_parker(), registry, ns_host_lookup=self.lookup
        )
        result = bootstrap.derive("ExampleDPS")
        assert "exampledps-dns.com" in result.ns_slds
