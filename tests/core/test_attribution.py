"""Tests for anomaly detection and third-party attribution (§4.4.1)."""

import pytest

from repro.core.attribution import AnomalyAttributor
from repro.core.detection import DetectionResult, ProviderSeries, UseInterval
from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment

HORIZON = 120
CATALOG = SignatureCatalog.paper_table2()


def observation(domain, ns=(), asns=()):
    return DomainObservation(
        day=0,
        domain=domain,
        tld="com",
        ns_names=tuple(ns),
        apex_addrs=("10.7.0.1",),
        asns=frozenset(asns),
    )


@pytest.fixture
def mass_event():
    """60 wix-style domains jump onto Incapsula on day 50 for 10 days."""
    total = [5] * HORIZON
    for day in range(50, 60):
        total[day] += 60
    providers = {
        "Incapsula": ProviderSeries("Incapsula", total, {}),
    }
    intervals = {}
    segments = {}
    for index in range(60):
        domain = f"w{index}.com"
        intervals[(domain, "Incapsula")] = [UseInterval(50, 60)]
        base = observation(domain, ns=("ns1.wixdns.net",), asns={14618})
        diverted = observation(domain, ns=("ns1.wixdns.net",), asns={19551})
        segments[domain] = [
            ObservationSegment(0, 50, base),
            ObservationSegment(50, 60, diverted),
            ObservationSegment(60, HORIZON, base),
        ]
    detection = DetectionResult(
        horizon=HORIZON,
        providers=providers,
        any_use_by_tld={},
        any_use_combined=total,
        intervals=intervals,
        combo_days={},
    )
    return detection, segments


class TestAnomalyFinding:
    def test_mass_event_found(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=30)
        events = attributor.find_anomalies("Incapsula")
        assert [(e.day, e.delta) for e in events] == [(50, 60), (60, -60)]
        assert events[0].direction == "peak"
        assert events[1].direction == "trough"

    def test_small_jumps_ignored(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=100)
        assert attributor.find_anomalies("Incapsula") == []

    def test_unknown_provider_empty(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG)
        assert attributor.find_anomalies("Nope") == []


class TestAttribution:
    def test_peak_traced_to_third_party_ns(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=30)
        peak = attributor.find_anomalies("Incapsula")[0]
        attribution = attributor.attribute(peak)
        assert attribution.domains_involved == 60
        assert attribution.top_group == "ns:wixdns.net"

    def test_trough_uses_config_before_drop(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=30)
        trough = attributor.find_anomalies("Incapsula")[1]
        attribution = attributor.attribute(trough)
        assert attribution.top_group == "ns:wixdns.net"

    def test_attribute_all_sorted_by_day(self, mass_event):
        detection, segments = mass_event
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=30)
        attributions = attributor.attribute_all()
        days = [a.event.day for a in attributions]
        assert days == sorted(days)

    def test_provider_slds_never_named_as_third_party(self, mass_event):
        detection, segments = mass_event
        # Replace NS with a provider-owned SLD: grouping falls to prefix.
        for domain in list(segments):
            rows = []
            for segment in segments[domain]:
                rows.append(
                    ObservationSegment(
                        segment.start,
                        segment.end,
                        observation(
                            domain,
                            ns=("ns1.incapsecuredns.net",),
                            asns=segment.observation.asns,
                        ),
                    )
                )
            segments[domain] = rows
        attributor = AnomalyAttributor(detection, segments, CATALOG,
                                       min_jump=30)
        peak = attributor.find_anomalies("Incapsula")[0]
        attribution = attributor.attribute(peak)
        assert attribution.top_group.startswith("prefix:")
