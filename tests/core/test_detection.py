"""Tests for the streaming detector (intervals, series, combinations)."""


from repro.core.detection import (
    SegmentDetector,
    UseInterval,
    combo_label,
    detect_observation,
)
from repro.core.references import RefType, SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment

CATALOG = SignatureCatalog.paper_table2()
HORIZON = 100


def observation(domain="a.com", ns=(), cnames=(), asns=()):
    return DomainObservation(
        day=0,
        domain=domain,
        tld="com",
        ns_names=tuple(ns),
        apex_addrs=("10.0.0.1",),
        www_cnames=tuple(cnames),
        asns=frozenset(asns),
    )


CLOUDFLARE_OBS = observation(
    ns=("kate.ns.cloudflare.com",), asns={13335}
)
PLAIN_OBS = observation(ns=("ns1.hostco-dns.com",), asns={64500})
INCAPSULA_OBS = observation(cnames=("x.incapdns.net",), asns={19551})


def run_detector(segment_lists):
    detector = SegmentDetector(CATALOG, HORIZON)
    for domain, tld, segments in segment_lists:
        detector.process_domain(domain, tld, segments)
    return detector.result()


class TestComboLabel:
    def test_ordering_stable(self):
        assert combo_label(frozenset({RefType.NS, RefType.AS})) == "AS+NS"
        assert combo_label(frozenset()) == "none"


class TestDetectObservation:
    def test_wrapper(self):
        matches = detect_observation(CLOUDFLARE_OBS, CATALOG)
        assert matches["CloudFlare"] == frozenset({RefType.AS, RefType.NS})


class TestIntervals:
    def test_continuous_use_single_interval(self):
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 100, CLOUDFLARE_OBS)])]
        )
        assert result.intervals[("a.com", "CloudFlare")] == [
            UseInterval(0, 100)
        ]

    def test_gap_creates_two_intervals(self):
        segments = [
            ObservationSegment(0, 20, CLOUDFLARE_OBS),
            ObservationSegment(20, 40, PLAIN_OBS),
            ObservationSegment(40, 100, CLOUDFLARE_OBS),
        ]
        result = run_detector([("a.com", "com", segments)])
        assert result.intervals[("a.com", "CloudFlare")] == [
            UseInterval(0, 20),
            UseInterval(40, 100),
        ]

    def test_adjacent_segments_merge(self):
        other_cf = observation(ns=("ben.ns.cloudflare.com",), asns={13335})
        segments = [
            ObservationSegment(0, 50, CLOUDFLARE_OBS),
            ObservationSegment(50, 100, other_cf),
        ]
        result = run_detector([("a.com", "com", segments)])
        assert result.intervals[("a.com", "CloudFlare")] == [
            UseInterval(0, 100)
        ]

    def test_provider_switch(self):
        segments = [
            ObservationSegment(0, 30, CLOUDFLARE_OBS),
            ObservationSegment(30, 100, INCAPSULA_OBS),
        ]
        result = run_detector([("a.com", "com", segments)])
        assert result.intervals[("a.com", "CloudFlare")] == [
            UseInterval(0, 30)
        ]
        assert result.intervals[("a.com", "Incapsula")] == [
            UseInterval(30, 100)
        ]

    def test_unprotected_domain_has_no_intervals(self):
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 100, PLAIN_OBS)])]
        )
        assert result.intervals == {}

    def test_segments_clipped_to_horizon(self):
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 500, CLOUDFLARE_OBS)])]
        )
        assert result.intervals[("a.com", "CloudFlare")] == [
            UseInterval(0, 100)
        ]


class TestSeries:
    def test_daily_totals(self):
        segments = [
            ObservationSegment(0, 20, CLOUDFLARE_OBS),
            ObservationSegment(20, 100, PLAIN_OBS),
        ]
        result = run_detector(
            [
                ("a.com", "com", segments),
                ("b.com", "com",
                 [ObservationSegment(0, 100, CLOUDFLARE_OBS)]),
            ]
        )
        series = result.providers["CloudFlare"]
        assert series.total[0] == 2
        assert series.total[19] == 2
        assert series.total[20] == 1
        assert series.total[99] == 1

    def test_ref_breakdown(self):
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 100, CLOUDFLARE_OBS)])]
        )
        series = result.providers["CloudFlare"]
        assert series.by_ref[RefType.AS][50] == 1
        assert series.by_ref[RefType.NS][50] == 1
        assert RefType.CNAME not in series.by_ref

    def test_any_use_counts_domain_once(self):
        both = observation(
            ns=("kate.ns.cloudflare.com",), cnames=("x.incapdns.net",),
            asns={13335, 19551},
        )
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 100, both)])]
        )
        assert result.any_use_combined[10] == 1
        assert result.any_use_by_tld["com"][10] == 1

    def test_any_use_split_by_tld(self):
        result = run_detector(
            [
                ("a.com", "com",
                 [ObservationSegment(0, 100, CLOUDFLARE_OBS)]),
                ("b.org", "org",
                 [ObservationSegment(0, 100, INCAPSULA_OBS)]),
            ]
        )
        assert result.any_use_by_tld["com"][0] == 1
        assert result.any_use_by_tld["org"][0] == 1
        assert result.any_use_combined[0] == 2

    def test_peak_day(self):
        segments = [
            ObservationSegment(0, 40, PLAIN_OBS),
            ObservationSegment(40, 45, CLOUDFLARE_OBS),
            ObservationSegment(45, 100, PLAIN_OBS),
        ]
        result = run_detector(
            [
                ("a.com", "com", segments),
                ("b.com", "com",
                 [ObservationSegment(0, 100, CLOUDFLARE_OBS)]),
            ]
        )
        assert result.providers["CloudFlare"].peak_day() == 40


class TestCombos:
    def test_combo_days_accumulate(self):
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 100, CLOUDFLARE_OBS)])]
        )
        assert result.combo_days["CloudFlare"]["AS+NS"] == 100

    def test_cname_without_ns_combo(self):
        """The paper's example: CNAME+AS but no NS = no delegation."""
        result = run_detector(
            [("a.com", "com", [ObservationSegment(0, 10, INCAPSULA_OBS)])]
        )
        assert result.combo_days["Incapsula"] == {"AS+CNAME": 10}

    def test_domains_seen_counter(self):
        result = run_detector(
            [
                ("a.com", "com", [ObservationSegment(0, 10, PLAIN_OBS)]),
                ("b.com", "com", [ObservationSegment(0, 10, PLAIN_OBS)]),
            ]
        )
        assert result.domains_seen == 2

    def test_interval_count(self):
        result = run_detector(
            [
                ("a.com", "com", [
                    ObservationSegment(0, 10, CLOUDFLARE_OBS),
                    ObservationSegment(10, 20, PLAIN_OBS),
                    ObservationSegment(20, 30, CLOUDFLARE_OBS),
                ]),
            ]
        )
        assert result.interval_count() == 2
        assert result.providers_of("a.com") == ["CloudFlare"]
