"""Tests for signature matching (§3.3)."""

import pytest

from repro.core.references import ProviderSignature, RefType, SignatureCatalog
from repro.measurement.snapshot import DomainObservation


def observation(ns=(), cnames=(), asns=()):
    return DomainObservation(
        day=0,
        domain="a.com",
        tld="com",
        ns_names=tuple(ns),
        apex_addrs=("10.0.0.1",),
        www_cnames=tuple(cnames),
        asns=frozenset(asns),
    )


CLOUDFLARE = ProviderSignature(
    name="CloudFlare",
    asns=frozenset({13335}),
    cname_slds=frozenset({"cloudflare.net"}),
    ns_slds=frozenset({"cloudflare.com"}),
)


class TestSignatureMatch:
    def test_as_reference(self):
        assert CLOUDFLARE.match(observation(asns={13335})) == frozenset(
            {RefType.AS}
        )

    def test_ns_reference_via_sld(self):
        refs = CLOUDFLARE.match(observation(ns=("kate.ns.cloudflare.com",)))
        assert refs == frozenset({RefType.NS})

    def test_cname_reference_via_sld(self):
        refs = CLOUDFLARE.match(
            observation(cnames=("site.cdn.cloudflare.net",))
        )
        assert refs == frozenset({RefType.CNAME})

    def test_combined_references(self):
        refs = CLOUDFLARE.match(
            observation(ns=("kate.ns.cloudflare.com",), asns={13335})
        )
        assert refs == frozenset({RefType.AS, RefType.NS})

    def test_no_reference(self):
        assert CLOUDFLARE.match(observation(ns=("ns1.hostco.com",))) == (
            frozenset()
        )

    def test_to_row_renders_dashes_for_empty(self):
        signature = ProviderSignature(
            "DOSarrest", frozenset({19324}), frozenset(), frozenset()
        )
        row = signature.to_row()
        assert row["CNAME SLD(s)"] == "—"
        assert row["AS number(s)"] == "19324"


class TestCatalog:
    def test_paper_table2_has_nine_providers(self):
        catalog = SignatureCatalog.paper_table2()
        assert len(catalog) == 9
        assert catalog.get("Verisign").ns_slds == frozenset(
            {"verisigndns.com"}
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SignatureCatalog([CLOUDFLARE, CLOUDFLARE])

    def test_match_uses_indexes(self):
        catalog = SignatureCatalog.paper_table2()
        matches = catalog.match(
            observation(cnames=("x.incapdns.net",), asns={19551})
        )
        assert matches == {
            "Incapsula": frozenset({RefType.AS, RefType.CNAME})
        }

    def test_match_multiple_providers(self):
        catalog = SignatureCatalog.paper_table2()
        matches = catalog.match(
            observation(
                ns=("kate.ns.cloudflare.com",),
                asns={13335, 19551},
            )
        )
        assert set(matches) == {"CloudFlare", "Incapsula"}

    def test_shared_asn_matches_all_owners(self):
        a = ProviderSignature("A", frozenset({7}), frozenset(), frozenset())
        b = ProviderSignature("B", frozenset({7}), frozenset(), frozenset())
        catalog = SignatureCatalog([a, b])
        assert set(catalog.match(observation(asns={7}))) == {"A", "B"}

    def test_provider_names_sorted(self):
        catalog = SignatureCatalog.paper_table2()
        assert catalog.provider_names == sorted(catalog.provider_names)

    def test_to_table(self):
        rows = SignatureCatalog.paper_table2().to_table()
        assert len(rows) == 9
        assert rows[0]["Provider"] == "Akamai"
