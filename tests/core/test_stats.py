"""Tests for growth-uncertainty statistics."""

import pytest

from repro.core.growth import GrowthAnalysis
from repro.core.stats import (
    GrowthEstimate,
    growth_confidence_interval,
    relative_error,
)


def make_series(values):
    return GrowthAnalysis(window=5, clean_window=21).analyze("t", values)


class TestGrowthEstimate:
    def test_str_and_contains(self):
        estimate = GrowthEstimate(1.24, 1.20, 1.28, 0.95)
        assert "1.240x" in str(estimate)
        assert estimate.contains(1.24)
        assert not estimate.contains(1.5)


class TestConfidenceInterval:
    def test_interval_brackets_trend(self):
        values = [100.0 * (1.0 + 0.0004) ** day for day in range(550)]
        series = make_series(values)
        estimate = growth_confidence_interval(series, seed=1)
        assert estimate.low <= series.growth_factor <= estimate.high

    def test_flat_series_tight_interval(self):
        series = make_series([100.0] * 200)
        estimate = growth_confidence_interval(series, seed=1)
        assert estimate.low == pytest.approx(1.0)
        assert estimate.high == pytest.approx(1.0)

    def test_noisier_series_wider_interval(self):
        import random

        rng = random.Random(3)
        smooth = [100.0 + 0.05 * day for day in range(300)]
        noisy = [v + rng.uniform(-8, 8) for v in smooth]
        tight = growth_confidence_interval(make_series(smooth), seed=1)
        wide = growth_confidence_interval(make_series(noisy), seed=1)
        assert (wide.high - wide.low) > (tight.high - tight.low)

    def test_deterministic_for_seed(self):
        series = make_series([100.0 + d for d in range(100)])
        a = growth_confidence_interval(series, seed=9)
        b = growth_confidence_interval(series, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        series = make_series([100.0] * 50)
        with pytest.raises(ValueError):
            growth_confidence_interval(series, confidence=1.0)
        with pytest.raises(ValueError):
            growth_confidence_interval(series, block_days=0)

    def test_short_series_handled(self):
        series = make_series([100.0, 101.0, 102.0])
        estimate = growth_confidence_interval(series, block_days=28, seed=1)
        assert estimate.low <= estimate.high


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.23, 1.25) == pytest.approx(0.016)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestCalmWorldFlag:
    def test_calm_world_has_no_transient_events(self):
        from repro.world.scenario import ScenarioConfig, build_paper_world

        calm = build_paper_world(
            ScenarioConfig(
                scale=60000, seed=7, include_transient_anomalies=False
            )
        )
        kinds = {event.kind for event in calm.event_log}
        assert "divert-on" not in kinds
        assert "outage" not in kinds
        assert "migration" in kinds  # permanent behaviour kept

    def test_calm_world_shares_organic_trend(self):
        """Same seed → identical organic adoption in both worlds."""
        from repro.world.scenario import ScenarioConfig, build_paper_world

        full = build_paper_world(ScenarioConfig(scale=60000, seed=7))
        calm = build_paper_world(
            ScenarioConfig(
                scale=60000, seed=7, include_transient_anomalies=False
            )
        )
        # Every domain protected in the calm world at day 0 is also
        # protected (identically) in the full world.
        cloudflare_full = {
            name
            for name, timeline in full.domains.items()
            if timeline.alive(0)
            and any(
                "cloudflare" in ns
                for ns in timeline.config_at(0).ns_names
            )
        }
        cloudflare_calm = {
            name
            for name, timeline in calm.domains.items()
            if timeline.alive(0)
            and any(
                "cloudflare" in ns
                for ns in timeline.config_at(0).ns_names
            )
        }
        assert cloudflare_calm == cloudflare_full