"""Always-on versus on-demand protection classification (§3.4, §4.4.3).

From a domain's use intervals (and its lifetime), decide how it uses a
provider. The paper's rules:

* **always-on** — the domain references the DPS "without gap days";
* **on-demand** — the domain "switches back and forth" between non-DPS and
  DPS state;
* a **single period of use** is ambiguous ("could either be a short-lived
  always-on customer, or brief on-demand use"); for the peak-duration
  analysis the paper therefore requires **at least three peaks** before
  calling a domain on-demand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.detection import DetectionResult, UseInterval

ON_DEMAND_MIN_PEAKS = 3


class UsageClass(enum.Enum):
    """How a domain uses a provider over the measurement window."""

    ALWAYS_ON = "always-on"
    #: Continuous use from mid-life to the end of observation: an adopter.
    ADOPTED = "adopted"
    #: Continuous use from life start that stops mid-study: a leaver.
    ABANDONED = "abandoned"
    #: One bounded period of use — ambiguous per the paper.
    SINGLE_PEAK = "single-peak"
    #: Two bounded periods — switching, but below the paper's threshold.
    INTERMITTENT = "intermittent"
    #: Three or more peaks — the paper's on-demand criterion.
    ON_DEMAND = "on-demand"


@dataclass(frozen=True)
class DomainUsage:
    """Classification outcome for one (domain, provider) pair."""

    domain: str
    provider: str
    usage: UsageClass
    intervals: Tuple[UseInterval, ...]

    @property
    def total_days(self) -> int:
        return sum(interval.days for interval in self.intervals)


class UsageClassifier:
    """Classifies (domain, provider) pairs from detection intervals."""

    def __init__(self, horizon: int):
        self._horizon = horizon

    def classify_intervals(
        self,
        intervals: Sequence[UseInterval],
        life_start: int,
        life_end: int,
    ) -> UsageClass:
        """Classify from use intervals within ``[life_start, life_end)``."""
        if not intervals:
            raise ValueError("cannot classify empty interval list")
        life_end = min(life_end, self._horizon)
        if len(intervals) == 1:
            interval = intervals[0]
            starts_at_birth = interval.start <= life_start
            right_censored = interval.end >= life_end
            if starts_at_birth and right_censored:
                return UsageClass.ALWAYS_ON
            if right_censored:
                return UsageClass.ADOPTED
            if starts_at_birth:
                return UsageClass.ABANDONED
            return UsageClass.SINGLE_PEAK
        if len(intervals) >= ON_DEMAND_MIN_PEAKS:
            return UsageClass.ON_DEMAND
        return UsageClass.INTERMITTENT

    def classify_result(
        self,
        detection: DetectionResult,
        lifetimes: Dict[str, Tuple[int, int]],
    ) -> List[DomainUsage]:
        """Classify every (domain, provider) pair in a detection result.

        *lifetimes* maps domain → ``(created, end_exclusive)``; pairs whose
        domain is unknown are classified against the full window.
        """
        usages: List[DomainUsage] = []
        for (domain, provider), intervals in sorted(
            detection.intervals.items()
        ):
            life_start, life_end = lifetimes.get(
                domain, (0, self._horizon)
            )
            usages.append(
                DomainUsage(
                    domain=domain,
                    provider=provider,
                    usage=self.classify_intervals(
                        intervals, life_start, life_end
                    ),
                    intervals=tuple(intervals),
                )
            )
        return usages

    @staticmethod
    def summarize(
        usages: Sequence[DomainUsage],
    ) -> Dict[str, Dict[UsageClass, int]]:
        """Per-provider counts of each usage class."""
        summary: Dict[str, Dict[UsageClass, int]] = {}
        for usage in usages:
            bucket = summary.setdefault(usage.provider, {})
            bucket[usage.usage] = bucket.get(usage.usage, 0) + 1
        return summary

    @staticmethod
    def on_demand_domains(
        usages: Sequence[DomainUsage],
    ) -> Dict[str, List[DomainUsage]]:
        """Per-provider on-demand sets (the Fig. 8 populations)."""
        result: Dict[str, List[DomainUsage]] = {}
        for usage in usages:
            if usage.usage == UsageClass.ON_DEMAND:
                result.setdefault(usage.provider, []).append(usage)
        return result
