"""Statistical support: uncertainty on the growth estimates.

The paper reports point estimates (1.24×); this module adds a
moving-block bootstrap over the cleaned daily series so the reproduction
can state a confidence interval, and a helper for comparing two growth
estimates (used by the cleaning-validation ablation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.growth import GrowthSeries


@dataclass(frozen=True)
class GrowthEstimate:
    """A growth factor with a bootstrap confidence interval."""

    factor: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.factor:.3f}x "
            f"({self.confidence * 100:.0f}% CI "
            f"{self.low:.3f}–{self.high:.3f})"
        )

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def _log_increments(values: Sequence[float]) -> List[float]:
    increments = []
    for left, right in zip(values, values[1:]):
        if left <= 0 or right <= 0:
            increments.append(0.0)
        else:
            increments.append(math.log(right / left))
    return increments


def growth_confidence_interval(
    series: GrowthSeries,
    n_bootstrap: int = 200,
    block_days: int = 28,
    confidence: float = 0.95,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> GrowthEstimate:
    """Moving-block bootstrap CI for a series' growth factor.

    The cleaned series' daily log-increments are resampled in contiguous
    blocks (preserving short-range dependence), summed to a bootstrap
    growth factor, and the empirical quantiles give the interval.

    Randomness never comes from the module-global RNG: callers either
    pass an explicitly seeded :class:`random.Random` via *rng* (preferred
    — it makes the caller's reproducibility contract visible) or rely on
    *seed*, from which a private instance is constructed. Either way two
    runs with the same inputs produce the same interval.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if block_days < 1:
        raise ValueError("block_days must be positive")
    increments = _log_increments(series.cleaned)
    if len(increments) < block_days:
        block_days = max(1, len(increments))
    if rng is None:
        rng = random.Random(seed)
    blocks_needed = max(1, len(increments) // block_days)
    # Blocks cover blocks_needed·block_days of the len(increments)-day
    # horizon; rescale so bootstrap factors span the full period.
    horizon_scale = len(increments) / max(1, blocks_needed * block_days)
    factors: List[float] = []
    max_start = len(increments) - block_days
    for _ in range(n_bootstrap):
        total = 0.0
        for _ in range(blocks_needed):
            start = rng.randint(0, max(0, max_start))
            total += sum(increments[start : start + block_days])
        factors.append(math.exp(total * horizon_scale))
    # Recentre on the reported (smoothed) factor: the bootstrap resamples
    # the cleaned series, whose endpoint ratio differs slightly from the
    # smoothed-endpoint headline number.
    cleaned_start = series.cleaned[0]
    cleaned_end = series.cleaned[-1]
    if cleaned_start > 0 and cleaned_end > 0:
        centre_shift = series.growth_factor / (cleaned_end / cleaned_start)
        factors = [factor * centre_shift for factor in factors]
    factors.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_index = max(0, int(alpha * len(factors)))
    hi_index = min(len(factors) - 1, int((1.0 - alpha) * len(factors)))
    return GrowthEstimate(
        factor=series.growth_factor,
        low=factors[lo_index],
        high=factors[hi_index],
        confidence=confidence,
    )


def relative_error(estimate: float, truth: float) -> float:
    """|estimate − truth| / truth — the cleaning-validation metric."""
    if truth == 0:
        raise ValueError("truth must be non-zero")
    return abs(estimate - truth) / abs(truth)
