"""Deriving the provider reference catalog from measurement data (§3.3).

"We take the ASNs of a DPS as starting point. Then we find all the domain
names that reference these ASNs and analyze frequently occurring SLDs in
CNAME and NS records. The SLDs obtained in this manner are used to find any
ASNs we may have missed in the first step, or to remove ASNs that do not
belong to the mitigation infrastructure of a DPS."

The seed comes from AS-to-name data (:class:`repro.routing.asn.ASRegistry`);
the loop then alternates SLD discovery and ASN discovery until a fixpoint.
A *purity* test automates the paper's manual vetting: a candidate SLD (or
ASN) is accepted only if the domains exhibiting it predominantly also
exhibit the provider's already-accepted references — this is what keeps
e.g. a registrar's name-server SLD (shared by mostly-unprotected domains)
out of a provider's fingerprint.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.references import ProviderSignature, SignatureCatalog
from repro.measurement.snapshot import DomainObservation, sld_of
from repro.routing.asn import ASRegistry

MAX_ITERATIONS = 8

#: Resolves a name-server hostname to the origin ASNs of its addresses.
#: The measurement platform issues these A lookups anyway; the fingerprint
#: uses them to decide who *operates* a candidate NS SLD.
NsHostLookup = Callable[[str], FrozenSet[int]]


@dataclass
class FingerprintResult:
    """The bootstrap's output for one provider."""

    provider: str
    asns: FrozenSet[int]
    cname_slds: FrozenSet[str]
    ns_slds: FrozenSet[str]
    iterations: int
    #: How many observed domains supported each accepted reference.
    support: Dict[str, int] = field(default_factory=dict)

    def to_signature(self) -> ProviderSignature:
        return ProviderSignature(
            name=self.provider,
            asns=self.asns,
            cname_slds=self.cname_slds,
            ns_slds=self.ns_slds,
        )


class FingerprintBootstrap:
    """Runs the §3.3 procedure over a day's enriched observations."""

    def __init__(
        self,
        observations: Sequence[DomainObservation],
        as_registry: ASRegistry,
        min_support: int = 3,
        purity: float = 0.5,
        ns_host_lookup: Optional[NsHostLookup] = None,
    ):
        if not 0.0 < purity <= 1.0:
            raise ValueError("purity must be in (0, 1]")
        self._observations = list(observations)
        self._registry = as_registry
        self._min_support = min_support
        self._purity = purity
        self._ns_host_lookup = ns_host_lookup
        # Inverted indexes over the observation set.
        self._by_asn: Dict[int, List[int]] = {}
        self._by_ns_sld: Dict[str, List[int]] = {}
        self._by_cname_sld: Dict[str, List[int]] = {}
        #: NS SLD → the actual name-server hostnames seen under it.
        self._ns_hosts_by_sld: Dict[str, Set[str]] = {}
        for index, observation in enumerate(self._observations):
            for asn in observation.asns:
                self._by_asn.setdefault(asn, []).append(index)
            for sld in observation.ns_slds():
                self._by_ns_sld.setdefault(sld, []).append(index)
            for hostname in observation.ns_names:
                sld = sld_of(hostname)
                if sld is not None:
                    self._ns_hosts_by_sld.setdefault(sld, set()).add(
                        hostname
                    )
            for sld in observation.cname_slds():
                self._by_cname_sld.setdefault(sld, []).append(index)

    # -- seed -----------------------------------------------------------------

    def seed_asns(self, provider_name: str) -> FrozenSet[int]:
        """Seed AS numbers from AS-to-name data."""
        return frozenset(
            autonomous_system.number
            for autonomous_system in self._registry.find_by_name(provider_name)
        )

    # -- the loop ----------------------------------------------------------------

    def derive(self, provider_name: str) -> FingerprintResult:
        """Derive the full fingerprint of *provider_name*."""
        asns: Set[int] = set(self.seed_asns(provider_name))
        if not asns:
            raise ValueError(
                f"no AS registered under a name matching {provider_name!r}"
            )
        cname_slds: Set[str] = set()
        ns_slds: Set[str] = set()
        support: Dict[str, int] = {}

        iterations = 0
        for iterations in range(1, MAX_ITERATIONS + 1):
            referencing = self._domains_referencing(asns, cname_slds, ns_slds)
            new_cname, new_ns = self._frequent_slds(
                referencing, asns, support
            )
            new_asns = self._asns_from_slds(
                new_cname | cname_slds, new_ns | ns_slds, provider_name,
                support,
            )
            changed = (
                not new_cname <= cname_slds
                or not new_ns <= ns_slds
                or not new_asns <= asns
            )
            cname_slds |= new_cname
            ns_slds |= new_ns
            asns |= new_asns
            if not changed:
                break

        return FingerprintResult(
            provider=provider_name,
            asns=frozenset(asns),
            cname_slds=frozenset(cname_slds),
            ns_slds=frozenset(ns_slds),
            iterations=iterations,
            support=support,
        )

    def derive_catalog(
        self, provider_names: Iterable[str]
    ) -> SignatureCatalog:
        """Bootstrap every provider and assemble a detection catalog."""
        return SignatureCatalog(
            self.derive(name).to_signature() for name in provider_names
        )

    # -- internals ----------------------------------------------------------------

    def _domains_referencing(
        self,
        asns: Set[int],
        cname_slds: Set[str],
        ns_slds: Set[str],
    ) -> List[int]:
        indexes: Set[int] = set()
        for asn in asns:
            indexes.update(self._by_asn.get(asn, ()))
        for sld in cname_slds:
            indexes.update(self._by_cname_sld.get(sld, ()))
        for sld in ns_slds:
            indexes.update(self._by_ns_sld.get(sld, ()))
        return sorted(indexes)

    def _frequent_slds(
        self,
        referencing: Sequence[int],
        asns: Set[int],
        support: Dict[str, int],
    ) -> Tuple[Set[str], Set[str]]:
        """Frequent, *pure* SLDs among the referencing domains."""
        cname_counts: Counter = Counter()
        ns_counts: Counter = Counter()
        for index in referencing:
            observation = self._observations[index]
            cname_counts.update(observation.cname_slds())
            ns_counts.update(observation.ns_slds())

        accepted_cname: Set[str] = set()
        for sld, count in cname_counts.items():
            if count < self._min_support:
                continue
            if self._sld_purity(self._by_cname_sld.get(sld, ()), asns):
                accepted_cname.add(sld)
                support[f"cname:{sld}"] = count
        accepted_ns: Set[str] = set()
        for sld, count in ns_counts.items():
            if count < self._min_support:
                continue
            if self._ns_sld_belongs_to_provider(sld, asns):
                accepted_ns.add(sld)
                support[f"ns:{sld}"] = count
        return accepted_cname, accepted_ns

    def _ns_sld_belongs_to_provider(
        self, sld: str, asns: Set[int]
    ) -> bool:
        """Does the provider *operate* the name servers under *sld*?

        With an NS-host lookup (the platform measures name-server
        addresses too), the decision is direct: some server under the SLD
        must sit in the provider's address space. This both rejects a
        parking service whose parked domains all point at the provider
        (the servers are the parker's own) and accepts a managed-DNS SLD
        whose customers mostly do not divert (the servers are the
        provider's even though the customers' addresses are not).

        Without the lookup, fall back to holder purity.
        """
        if self._ns_host_lookup is not None:
            hostnames = self._ns_hosts_by_sld.get(sld, ())
            return any(
                self._ns_host_lookup(hostname) & asns
                for hostname in sorted(hostnames)
            )
        return self._sld_purity(self._by_ns_sld.get(sld, ()), asns)

    def _sld_purity(
        self, holder_indexes: Sequence[int], asns: Set[int]
    ) -> bool:
        """Do domains exhibiting this SLD predominantly sit in *asns*?

        This is the automated stand-in for the paper's manual vetting: a
        hoster's or registrar's SLD is shared mostly by domains outside the
        provider's address space and fails the test.
        """
        if not holder_indexes:
            return False
        inside = sum(
            1
            for index in holder_indexes
            if self._observations[index].asns & asns
        )
        return inside / len(holder_indexes) >= self._purity

    def _asns_from_slds(
        self,
        cname_slds: Set[str],
        ns_slds: Set[str],
        provider_name: str,
        support: Dict[str, int],
    ) -> Set[int]:
        """ASNs frequent among SLD-referencing domains, vetted two ways.

        A candidate ASN is accepted when its registered name matches the
        provider (AS-to-name data) or when a sufficient fraction of *all*
        domains inside it also carry the provider's SLD references —
        which rejects hosting ASNs that merely contain a few delegated
        customers.
        """
        holder_indexes: Set[int] = set()
        for sld in cname_slds:
            holder_indexes.update(self._by_cname_sld.get(sld, ()))
        for sld in ns_slds:
            holder_indexes.update(self._by_ns_sld.get(sld, ()))

        asn_counts: Counter = Counter()
        for index in holder_indexes:
            asn_counts.update(self._observations[index].asns)

        accepted: Set[int] = set()
        needle = provider_name.lower()
        for asn, count in asn_counts.items():
            if count < self._min_support:
                continue
            registered = self._registry.get(asn)
            if registered is not None and needle in registered.name.lower():
                accepted.add(asn)
                support[f"asn:{asn}"] = count
                continue
            population = self._by_asn.get(asn, ())
            if not population:
                continue
            referencing = sum(
                1 for index in population if index in holder_indexes
            )
            if referencing / len(population) >= self._purity:
                accepted.add(asn)
                support[f"asn:{asn}"] = count
        return accepted
