"""Adoption growth analysis with smoothing and anomaly cleaning (§4.2).

"For our growth analysis we do not count anomalous peaks and troughs. We
smooth shorter and smaller anomalies out by taking the median reference
count over a time window of several weeks, while the large anomalies are
cleaned manually." The manual step is automated here: days whose raw value
deviates from the running median by more than a threshold are treated as
anomalous and replaced by the median (with the deviation logged, so the
"manual" decisions stay inspectable).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

DEFAULT_WINDOW = 21  # days — "a time window of several weeks"
#: Anomaly cleaning compares against a much longer running median so that
#: multi-week plateaus (e.g. the Wix/Incapsula May 2015 episode) still
#: stand out against the underlying trend.
DEFAULT_CLEAN_WINDOW = 91
DEFAULT_DEVIATION = 0.08  # fraction of the median


def median_smooth(values: Sequence[float], window: int = DEFAULT_WINDOW) -> List[float]:
    """Centred running median of *values* with the given odd *window*.

    Edges use the available part of the window. O(n·w log w), fine for
    series of hundreds of days.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if window % 2 == 0:
        window += 1
    half = window // 2
    smoothed: List[float] = []
    for index in range(len(values)):
        lo = max(0, index - half)
        hi = min(len(values), index + half + 1)
        smoothed.append(statistics.median(values[lo:hi]))
    return smoothed


@dataclass(frozen=True)
class CleanedDay:
    """One day the cleaner treated as anomalous."""

    day: int
    raw: float
    replaced_with: float

    @property
    def deviation(self) -> float:
        if self.replaced_with == 0:
            return float("inf") if self.raw else 0.0
        return abs(self.raw - self.replaced_with) / self.replaced_with


@dataclass
class GrowthSeries:
    """A cleaned, smoothed daily series plus its growth statistics."""

    label: str
    raw: List[float]
    cleaned: List[float]
    smoothed: List[float]
    anomalous_days: List[CleanedDay]

    @property
    def start_level(self) -> float:
        return self.smoothed[0]

    @property
    def end_level(self) -> float:
        return self.smoothed[-1]

    @property
    def growth_factor(self) -> float:
        """End level over start level — the paper's ``1.24×`` number."""
        if self.start_level == 0:
            raise ValueError(f"series {self.label!r} starts at zero")
        return self.end_level / self.start_level

    def relative(self) -> List[float]:
        """The series normalised to its start (Fig. 5/6 y-axis)."""
        base = self.start_level
        if base == 0:
            raise ValueError(f"series {self.label!r} starts at zero")
        return [value / base for value in self.smoothed]


class GrowthAnalysis:
    """Builds :class:`GrowthSeries` from raw daily counts."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        deviation_threshold: float = DEFAULT_DEVIATION,
        clean_window: int = DEFAULT_CLEAN_WINDOW,
    ):
        if deviation_threshold <= 0:
            raise ValueError("deviation threshold must be positive")
        self._window = window
        self._clean_window = clean_window
        self._threshold = deviation_threshold

    def clean(
        self, values: Sequence[float]
    ) -> Tuple[List[float], List[CleanedDay]]:
        """Replace large-anomaly days with the running median.

        This automates the paper's manual cleaning of "anomalous peaks and
        troughs, which can involve millions of domains".
        """
        reference = median_smooth(values, self._clean_window)
        cleaned: List[float] = []
        anomalies: List[CleanedDay] = []
        for day, (raw, median) in enumerate(zip(values, reference)):
            limit = self._threshold * max(median, 1.0)
            if abs(raw - median) > limit:
                anomalies.append(CleanedDay(day, raw, median))
                cleaned.append(median)
            else:
                cleaned.append(raw)
        return cleaned, anomalies

    def analyze(
        self, label: str, values: Sequence[float]
    ) -> GrowthSeries:
        """Clean, smooth, and wrap a raw daily series."""
        if not values:
            raise ValueError("cannot analyse an empty series")
        cleaned, anomalies = self.clean(list(values))
        smoothed = median_smooth(cleaned, self._window)
        return GrowthSeries(
            label=label,
            raw=list(values),
            cleaned=cleaned,
            smoothed=smoothed,
            anomalous_days=anomalies,
        )

    def compare(
        self, series: Dict[str, Sequence[float]]
    ) -> Dict[str, GrowthSeries]:
        """Analyse several labelled series (e.g. adoption vs expansion)."""
        # Label order is semantic here — figures assign glyphs by
        # series position — and every caller passes a fixed literal
        # mapping, so insertion order is deterministic by construction.
        return {
            label: self.analyze(label, values)
            for label, values in series.items()  # repro: ignore[canonicalization-taint]
        }
