"""Name-server exposure analysis (the paper's §5 conclusion).

"For some providers, only a small percentage of domains use delegation,
which potentially leaves a part of a domain's DNS infrastructure (i.e.,
the authoritative name server) susceptible to DDoS attacks."

A domain that diverts traffic to a DPS via CNAME or address records but
keeps its own (or its hoster's) authoritative name servers is *exposed*:
an attacker who takes the name servers down denies the domain service
regardless of the traffic scrubbing. This module quantifies that exposure
per provider from the detection result's reference combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.core.detection import DetectionResult


@dataclass(frozen=True)
class ExposureReport:
    """Per-provider exposure of authoritative DNS infrastructure."""

    provider: str
    #: Domain-days with traffic diversion AND provider name servers.
    protected_days: int
    #: Domain-days with traffic diversion but third-party name servers.
    exposed_days: int

    @property
    def total_days(self) -> int:
        return self.protected_days + self.exposed_days

    @property
    def exposure_ratio(self) -> float:
        """Fraction of protected domain-days with exposed name servers."""
        if not self.total_days:
            return 0.0
        return self.exposed_days / self.total_days


def _has_ns(combo: str) -> bool:
    return "NS" in combo.split("+")


def _has_diversion(combo: str) -> bool:
    parts = combo.split("+")
    return "AS" in parts or "CNAME" in parts


def analyze_exposure(detection: DetectionResult) -> Dict[str, ExposureReport]:
    """Exposure reports for every provider in *detection*.

    Combination semantics follow §3.3: an ``AS`` or ``CNAME`` reference
    without ``NS`` means traffic is diverted but the zone is not delegated
    to the provider — the name servers remain outside its protection.
    Pure ``NS`` references (delegation without diversion, e.g. plain
    managed-DNS use) are not counted as protected *traffic* either way and
    are excluded from the denominator.
    """
    reports: Dict[str, ExposureReport] = {}
    for provider, combos in detection.combo_days.items():
        protected = 0
        exposed = 0
        for combo, days in combos.items():
            if not _has_diversion(combo):
                continue
            if _has_ns(combo):
                protected += days
            else:
                exposed += days
        reports[provider] = ExposureReport(
            provider=provider,
            protected_days=protected,
            exposed_days=exposed,
        )
    return reports


def render_exposure(reports: Mapping[str, ExposureReport]) -> str:
    """A small table for the §5 observation."""
    from repro.reporting.tables import render_table

    rows: List[List[str]] = []
    for provider in sorted(reports):
        report = reports[provider]
        rows.append(
            [
                provider,
                str(report.protected_days),
                str(report.exposed_days),
                f"{report.exposure_ratio * 100:.1f}%",
            ]
        )
    return render_table(
        ["Provider", "NS-protected days", "NS-exposed days", "exposed"],
        rows,
        title="Authoritative name-server exposure (§5)",
    )
