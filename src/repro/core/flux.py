"""Daily-flux analysis: first-seen/last-seen deltas (§4.4.2, Fig. 7).

"We analyzed the daily flux per provider in terms of first seen and last
seen domain names. This way, if protection is turned on and off several
times for a set of names, the names involved will contribute to influx at
most once, and to outflux at most once." Counts are grouped in two-week
windows and the figure plots the delta (influx − outflux) per window.

Domains still using the provider when the measurement ends are
right-censored: they have not been "last seen" and contribute no outflux.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.detection import DetectionResult, UseInterval
from repro.world.timeline import TWO_WEEKS


@dataclass
class FluxSeries:
    """Per-window influx, outflux, and delta for one provider."""

    provider: str
    window_days: int
    influx: List[int]
    outflux: List[int]

    @property
    def delta(self) -> List[int]:
        return [
            inflow - outflow
            for inflow, outflow in zip(self.influx, self.outflux)
        ]

    @property
    def windows(self) -> int:
        return len(self.influx)

    def largest_inflow_window(self) -> int:
        return max(range(self.windows), key=self.influx.__getitem__)

    def spread(self) -> float:
        """How spread out influx is: 1 − (max window share).

        CloudFlare's "rather spread out" influx scores high; a provider
        whose customers arrive in one mass event scores near zero. The
        first window is excluded — it holds the pre-existing customer base
        (everyone protected on day 0 is "first seen" then), not arrivals.
        """
        arrivals = self.influx[1:]
        total = sum(arrivals)
        if total == 0:
            return 0.0
        return 1.0 - max(arrivals) / total


class FluxAnalysis:
    """Computes per-provider flux series from detection intervals."""

    def __init__(self, horizon: int, window_days: int = TWO_WEEKS):
        if window_days < 1:
            raise ValueError("window_days must be positive")
        self._horizon = horizon
        self._window_days = window_days
        self._window_count = (horizon + window_days - 1) // window_days

    def first_last_seen(
        self, intervals: Sequence[UseInterval]
    ) -> Tuple[int, Tuple[int, bool]]:
        """``(first_seen_day, (last_seen_day, censored))`` for one domain."""
        if not intervals:
            raise ValueError("no intervals")
        first = intervals[0].start
        last_end = intervals[-1].end
        censored = last_end >= self._horizon
        return first, (last_end - 1, censored)

    def analyze(self, detection: DetectionResult) -> Dict[str, FluxSeries]:
        """Flux series per provider (Fig. 7)."""
        return self.analyze_intervals(
            detection.intervals, detection.providers
        )

    def analyze_intervals(
        self,
        intervals_by_key: Dict[Tuple[str, str], List[UseInterval]],
        providers: Sequence[str] = (),
    ) -> Dict[str, FluxSeries]:
        """Flux series from raw ``(domain, provider) → intervals`` state.

        The incremental ingest engine maintains use intervals directly and
        has no :class:`DetectionResult` to hand over; this entry point lets
        it (and anything else holding interval state) compute Fig. 7
        without materialising one. *providers* seeds empty series for
        providers that appear in the detection but have no intervals.
        """
        series: Dict[str, FluxSeries] = {}
        for provider in providers:
            series[provider] = FluxSeries(
                provider=provider,
                window_days=self._window_days,
                influx=[0] * self._window_count,
                outflux=[0] * self._window_count,
            )
        for (domain, provider), intervals in sorted(intervals_by_key.items()):
            flux = series.get(provider)
            if flux is None:
                flux = FluxSeries(
                    provider=provider,
                    window_days=self._window_days,
                    influx=[0] * self._window_count,
                    outflux=[0] * self._window_count,
                )
                series[provider] = flux
            first, (last, censored) = self.first_last_seen(intervals)
            flux.influx[first // self._window_days] += 1
            if not censored:
                flux.outflux[last // self._window_days] += 1
        return series

    def merge(
        self, parts: Sequence[Dict[str, FluxSeries]]
    ) -> Dict[str, FluxSeries]:
        """Combine per-shard flux series into one (exact aggregation).

        Each domain is first/last seen in exactly one shard, so influx
        and outflux merge as element-wise window sums; the result equals
        a single :meth:`analyze` pass over the un-sharded detection,
        byte for byte. Providers are emitted in sorted order, matching
        the serial path's canonical ordering.
        """
        merged: Dict[str, FluxSeries] = {}
        for provider in sorted({name for part in parts for name in part}):
            influx = [0] * self._window_count
            outflux = [0] * self._window_count
            for part in parts:
                series = part.get(provider)
                if series is None:
                    continue
                if (
                    series.window_days != self._window_days
                    or series.windows != self._window_count
                ):
                    raise ValueError(
                        f"flux series for {provider!r} has mismatched "
                        f"windowing; cannot merge"
                    )
                for index, value in enumerate(series.influx):
                    influx[index] += value
                for index, value in enumerate(series.outflux):
                    outflux[index] += value
            merged[provider] = FluxSeries(
                provider=provider,
                window_days=self._window_days,
                influx=influx,
                outflux=outflux,
            )
        return merged
