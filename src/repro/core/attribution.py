"""Tracing mass anomalies to third parties (§4.4.1).

An anomaly is a day on which a provider's use count jumps or drops far
beyond its smoothed level. The attributor collects the domains whose use
of that provider starts or stops on the anomaly day and groups them by the
infrastructure they share — non-provider NS SLDs first (how the paper
identified Wix, Namecheap, Sedo, Fabulous), then CNAME SLDs, then covering
address prefixes — and reports the dominant groups.
"""

from __future__ import annotations

import ipaddress
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.detection import DetectionResult
from repro.core.growth import median_smooth
from repro.core.references import SignatureCatalog
from repro.measurement.snapshot import ObservationSegment


@dataclass(frozen=True)
class AnomalyEvent:
    """One detected mass jump or drop for a provider."""

    provider: str
    day: int
    delta: int  # signed change in daily use count vs the previous day

    @property
    def direction(self) -> str:
        return "peak" if self.delta > 0 else "trough"


@dataclass
class Attribution:
    """The dominant shared-infrastructure groups behind an anomaly."""

    event: AnomalyEvent
    domains_involved: int
    #: ``(group label, domain count)``, largest group first.
    groups: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def top_group(self) -> Optional[str]:
        return self.groups[0][0] if self.groups else None


class AnomalyAttributor:
    """Finds anomalies in detection series and attributes them."""

    def __init__(
        self,
        detection: DetectionResult,
        segments_by_domain: Mapping[str, Sequence[ObservationSegment]],
        catalog: SignatureCatalog,
        min_jump: int = 10,
        relative_jump: float = 0.05,
    ):
        self._detection = detection
        self._segments = segments_by_domain
        self._catalog = catalog
        self._min_jump = min_jump
        self._relative_jump = relative_jump
        #: SLDs that belong to provider fingerprints — never a third party.
        self._provider_slds = set()
        for signature in catalog:
            self._provider_slds |= signature.cname_slds
            self._provider_slds |= signature.ns_slds

    # -- anomaly finding ------------------------------------------------------

    def find_anomalies(self, provider: str) -> List[AnomalyEvent]:
        """Days where *provider*'s count jumps beyond both thresholds."""
        series = self._detection.providers.get(provider)
        if series is None:
            return []
        totals = series.total
        smoothed = median_smooth(totals)
        events: List[AnomalyEvent] = []
        for day in range(1, len(totals)):
            delta = totals[day] - totals[day - 1]
            level = max(smoothed[day - 1], 1.0)
            if (
                abs(delta) >= self._min_jump
                and abs(delta) >= self._relative_jump * level
            ):
                events.append(AnomalyEvent(provider, day, delta))
        return events

    def find_all_anomalies(self) -> List[AnomalyEvent]:
        events: List[AnomalyEvent] = []
        for provider in self._detection.providers:
            events.extend(self.find_anomalies(provider))
        return sorted(events, key=lambda e: (e.day, e.provider))

    # -- attribution --------------------------------------------------------------

    def _domains_switching(self, event: AnomalyEvent) -> List[str]:
        """Domains whose use of the provider starts/stops on the day."""
        switching: List[str] = []
        for (domain, provider), intervals in self._detection.intervals.items():
            if provider != event.provider:
                continue
            for interval in intervals:
                if event.delta > 0 and interval.start == event.day:
                    switching.append(domain)
                    break
                if event.delta < 0 and interval.end == event.day:
                    switching.append(domain)
                    break
        return switching

    def _group_key(self, domain: str, day: int) -> str:
        """The shared-infrastructure label of *domain* around *day*."""
        segments = self._segments.get(domain, ())
        observation = None
        for segment in segments:
            if segment.start <= day < segment.end:
                observation = segment.observation
                break
        if observation is None and segments:
            observation = segments[-1].observation
        if observation is None:
            return "unknown"
        third_party_ns = sorted(
            observation.ns_slds() - self._provider_slds
        )
        if third_party_ns:
            return f"ns:{third_party_ns[0]}"
        third_party_cname = sorted(
            observation.cname_slds() - self._provider_slds
        )
        if third_party_cname:
            return f"cname:{third_party_cname[0]}"
        addresses = observation.all_addresses()
        if addresses:
            network = ipaddress.ip_network(addresses[0])
            covering = network.supernet(
                new_prefix=max(0, network.prefixlen - 8)
            )
            return f"prefix:{covering}"
        return "dark"

    def attribute(self, event: AnomalyEvent) -> Attribution:
        """Group the switching domains by shared infrastructure."""
        switching = self._domains_switching(event)
        counts: Counter = Counter()
        for domain in switching:
            # For a trough, look at the configuration just before the drop.
            reference_day = event.day if event.delta > 0 else event.day - 1
            counts[self._group_key(domain, reference_day)] += 1
        return Attribution(
            event=event,
            domains_involved=len(switching),
            groups=counts.most_common(),
        )

    def attribute_all(self) -> List[Attribution]:
        return [self.attribute(event) for event in self.find_all_anomalies()]
