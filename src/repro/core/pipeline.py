"""Full-study orchestration: world → measurement → analysis artifacts.

:class:`AdoptionStudy` wires the measurement platform and every analysis
stage together and produces a :class:`StudyResults` carrying the inputs of
every table and figure in the paper's evaluation:

* Table 1 — data set statistics (via sampled columnar measurement);
* Table 2 — the fingerprint bootstrap's derived catalog;
* Fig. 2  — daily DPS use per TLD and combined;
* Fig. 3  — per-provider daily use with AS/CNAME/NS breakdown;
* Fig. 4  — namespace vs DPS-use distribution over the gTLDs;
* Fig. 5  — growth of DPS use vs zone expansion (gTLDs);
* Fig. 6  — growth in .nl and the Alexa list;
* Fig. 7  — per-provider flux (first/last seen deltas);
* Fig. 8  — on-demand peak-duration CDFs;
* §4.4.1  — anomaly attribution to third parties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.parallel.backend import BackendSpec

from repro.batch.batch import BatchBuilder, ObservationBatch
from repro.core.attribution import AnomalyAttributor, Attribution
from repro.core.classification import DomainUsage, UsageClassifier
from repro.core.detection import DetectionResult, SegmentDetector
from repro.core.fingerprint import FingerprintBootstrap, FingerprintResult
from repro.core.flux import FluxAnalysis, FluxSeries
from repro.core.growth import GrowthAnalysis, GrowthSeries
from repro.core.peaks import PeakAnalysis, PeakStats
from repro.core.references import SignatureCatalog
from repro.faults.errors import PersistentFault
from repro.faults.inject import FaultyProber
from repro.faults.plan import FaultInjector, FaultLog, FaultPlan
from repro.faults.report import SCOPE_EXPORT_KEYS
from repro.measurement.enrich import AsnEnricher
from repro.measurement.prober import FastProber
from repro.measurement.scheduler import ClusterManager
from repro.measurement.snapshot import (
    MEASUREMENTS_PER_DOMAIN_DAY,
    ObservationSegment,
)
from repro.measurement.storage import ColumnStore
from repro.store.protocols import ObservationStore
from repro.world.timeline import CCTLD_START_DAY
from repro.world.world import World

GTLDS = ("com", "net", "org")


@dataclass
class DatasetRow:
    """One Table 1 row."""

    source: str
    start_day: int
    days: int
    slds: int
    data_points: int
    estimated_bytes: int


@dataclass
class StudyResults:
    """Everything the study produces, keyed by paper artifact."""

    horizon: int
    #: Fig. 2 / Fig. 3 inputs.
    detection_gtld: DetectionResult
    detection_nl: DetectionResult
    detection_alexa: DetectionResult
    #: Daily zone sizes per TLD.
    zone_sizes: Dict[str, List[int]]
    #: Fig. 5 series.
    growth_gtld: Dict[str, GrowthSeries]
    #: Fig. 6 series.
    growth_cc: Dict[str, GrowthSeries]
    #: Fig. 7.
    flux: Dict[str, FluxSeries]
    #: Fig. 8.
    peaks: Dict[str, PeakStats]
    #: §3.4 classification.
    usages: List[DomainUsage]
    #: Fig. 4 distributions: tld → share.
    namespace_distribution: Dict[str, float]
    dps_distribution: Dict[str, float]
    #: Table 1.
    dataset_table: List[DatasetRow]
    #: §4.4.1.
    attributions: List[Attribution]
    #: Per-domain enriched segments (kept for follow-up analyses).
    segments: Dict[str, List[ObservationSegment]] = field(
        default_factory=dict, repr=False
    )
    #: Fault accounting for runs under a fault plan (None on clean runs).
    fault_log: Optional[FaultLog] = None
    #: scope → reason for scopes quarantined during this run.
    quarantined_scopes: Dict[str, str] = field(default_factory=dict)

    def provider_growth_factor(self) -> float:
        """The headline number: DPS adoption growth over the gTLD window."""
        return self.growth_gtld["DPS adoption"].growth_factor

    def expansion_factor(self) -> float:
        return self.growth_gtld["Overall expansion"].growth_factor


class AdoptionStudy:
    """Runs the full methodology over a world."""

    def __init__(
        self,
        world: World,
        catalog: Optional[SignatureCatalog] = None,
        growth: Optional[GrowthAnalysis] = None,
        sample_days_for_storage: int = 2,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.world = world
        self.catalog = catalog or SignatureCatalog.paper_table2()
        self.growth = growth or GrowthAnalysis()
        self._sample_days = sample_days_for_storage
        self.prober = FastProber(world)
        self.enricher = AsnEnricher(world)
        #: Fault-injection state. With a plan, the prober is wrapped in a
        #: retrying :class:`FaultyProber` and every fault/retry/quarantine
        #: is accounted to :attr:`fault_log`.
        self.fault_plan = fault_plan
        self.fault_log = FaultLog()
        self.quarantined_scopes: Dict[str, str] = {}
        self._injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            self._injector = fault_plan.injector(self.fault_log)
            self.prober = FaultyProber(  # type: ignore[assignment]
                self.prober, world, self._injector
            )

    def quarantine_scope(self, scope: str, reason: str) -> None:
        """Contain a poisoned *scope*: its artifacts are zeroed, not trusted."""
        if scope not in SCOPE_EXPORT_KEYS:
            raise ValueError(f"unknown scope {scope!r}")
        if scope not in self.quarantined_scopes:
            self.quarantined_scopes[scope] = reason
            self.fault_log.record_quarantine(scope, reason)

    # -- measurement -----------------------------------------------------------

    def collect_segments(
        self, names: Optional[Sequence[str]] = None
    ) -> Dict[str, List[ObservationSegment]]:
        """Enriched observation segments for *names* (default: all domains)."""
        if names is None:
            names = list(self.world.domains)
        segments: Dict[str, List[ObservationSegment]] = {}
        for name in names:
            try:
                raw = self.prober.observe_segments(name)
            except PersistentFault as exc:
                # Retries are exhausted: the domain's history is gone for
                # this run. Contain the damage — quarantine every scope
                # the domain feeds and keep measuring the rest.
                for scope in exc.scopes:
                    self.quarantine_scope(scope, str(exc))
                self.fault_log.record_drop("prober.observe")
                segments[name] = []
                continue
            segments[name] = self.enricher.enrich_segments(raw)
        return segments

    def detect(
        self,
        segments: Mapping[str, List[ObservationSegment]],
        names: Sequence[str],
    ) -> DetectionResult:
        """Run the segment detector over *names*."""
        detector = SegmentDetector(self.catalog, self.world.horizon)
        for name in names:
            domain_segments = segments.get(name)
            if domain_segments:
                detector.process_domain(
                    name, self.world.domains[name].tld, domain_segments
                )
        return detector.result()

    def detect_alexa(
        self,
        segments: Mapping[str, List[ObservationSegment]],
        names: Optional[Sequence[str]] = None,
    ) -> DetectionResult:
        """Detection over the ranking, honouring membership windows.

        A domain only counts on days it is actually on the list, so each
        segment is clipped to the name's membership windows before
        detection.
        """
        if names is None:
            names = self.world.alexa_names
        detector = SegmentDetector(self.catalog, self.world.horizon)
        for name in names:
            domain_segments = segments.get(name)
            windows = self.world.alexa_membership(name)
            if not domain_segments or not windows:
                continue
            clipped: List[ObservationSegment] = []
            for segment in domain_segments:
                for window_start, window_end in windows:
                    lo = max(segment.start, window_start)
                    hi = min(segment.end, window_end)
                    if lo < hi:
                        clipped.append(
                            ObservationSegment(lo, hi, segment.observation)
                        )
            if clipped:
                detector.process_domain(
                    name, self.world.domains[name].tld, clipped
                )
        return detector.result()

    def detect_from_store(
        self,
        store: ObservationStore,
        sources: Sequence[str],
        backend: Optional["BackendSpec"] = None,
        shard_count: Optional[int] = None,
    ) -> DetectionResult:
        """Whole-history columnar detection over landed partitions.

        Concatenates every ``(source, day)`` partition of *sources* into
        one :class:`ObservationBatch` (pools shared across partitions,
        so each domain/NS/address strings interns once for the whole
        history) and runs :meth:`SegmentDetector.process_batch` over it.
        The store must hold the complete daily history of each domain
        for those sources — the process_batch contract; given that, the
        result is value-identical to streaming the same partitions
        through a :class:`repro.stream.engine.StreamEngine` or running
        the per-domain segment detector over the equivalent segments.

        With *backend* (a :class:`repro.parallel.backend.Backend`
        instance or spec) the pass runs sharded instead: the store —
        which must be a :class:`repro.store.store.SegmentStore` — hands
        each worker a manifest slice (all partitions, one domain hash
        shard) and per-shard results merge exactly, byte-identical to
        the serial concatenation without ever materialising the whole
        history in one batch.
        """
        if backend is not None:
            if not hasattr(store, "manifest_slices"):
                raise TypeError(
                    "backend-sharded detection needs a SegmentStore "
                    "(manifest slices); this store cannot be sliced"
                )
            # Imported lazily: repro.parallel imports from this module.
            from repro.parallel.detect import detect_from_slices

            return detect_from_slices(
                store,  # type: ignore[arg-type]
                sources,
                self.catalog,
                self.world.horizon,
                backend=backend,
                shard_count=shard_count,
            )
        detector = SegmentDetector(self.catalog, self.world.horizon)
        builder = BatchBuilder()
        wanted = set(sources)
        parts = [
            store.batch(source, day, builder=builder)
            for source, day in store.partitions()
            if source in wanted
        ]
        if parts:
            detector.process_batch(ObservationBatch.concat(parts))
        return detector.result()

    # -- the full study -----------------------------------------------------------

    def run(
        self,
        parallel: bool = False,
        workers: Optional[int] = None,
        shard_count: Optional[int] = None,
        backend: Optional["BackendSpec"] = None,
    ) -> StudyResults:
        """Run the full methodology.

        With ``parallel=True`` (or any *backend*) the measurement +
        detection phase is hash-sharded over an execution backend
        (see :mod:`repro.parallel.backend`; *backend* accepts an
        instance or a ``"name[:nodes]"`` spec, defaulting to
        ``REPRO_BACKEND`` then the local fork pool); the merged result
        — and hence the returned :class:`StudyResults` — is
        byte-identical to a serial run for any backend, worker count,
        and shard count.
        """
        world = self.world
        horizon = world.horizon
        window_start = CCTLD_START_DAY

        if parallel or backend is not None:
            # Imported lazily: repro.parallel imports from this module.
            from repro.parallel.study import run_sharded_measurement

            measured = run_sharded_measurement(
                self,
                workers=workers,
                shard_count=shard_count,
                backend=backend,
            )
            segments = measured.segments
            detection_gtld = measured.detection_gtld
            detection_nl = measured.detection_nl
            detection_alexa = measured.detection_alexa
            flux = measured.flux
            peaks = measured.peaks
        else:
            segments = self.collect_segments()
            gtld_names = [
                name for name, timeline in world.domains.items()
                if timeline.tld in GTLDS
            ]
            nl_names = [
                name for name, timeline in world.domains.items()
                if timeline.tld == "nl"
            ]
            detection_gtld = self.detect(segments, gtld_names)
            detection_nl = self.detect(segments, nl_names)
            detection_alexa = self.detect_alexa(segments)
            flux = FluxAnalysis(horizon).analyze(detection_gtld)
            peaks = PeakAnalysis(horizon).analyze(detection_gtld)

        # The study.detect fault site: an injected poison here models a
        # detection stage blowing up on one scope's data.
        if self._injector is not None:
            for scope in sorted(SCOPE_EXPORT_KEYS):
                event = self._injector.fire("study.detect", key=scope)
                if event is not None:
                    self.quarantine_scope(
                        scope, f"injected detection poison ({scope})"
                    )

        # Quarantined scopes contribute empty artifacts — their export
        # keys are untrusted and stripped by scope-aware comparison; the
        # remaining scopes are byte-identical to a clean run.
        quarantined = set(self.quarantined_scopes)
        if "gtld" in quarantined:
            detection_gtld = DetectionResult.empty(horizon)
            flux = {}
            peaks = {}
        if "nl" in quarantined:
            detection_nl = DetectionResult.empty(horizon)
        if "alexa" in quarantined:
            detection_alexa = DetectionResult.empty(horizon)

        zone_sizes = {
            tld: world.zone_size_series(tld)
            for tld in list(GTLDS) + ["nl"]
        }

        # Fig. 5: gTLD adoption vs expansion, relative to the window start.
        # Growth labels of a quarantined scope are skipped outright:
        # an all-zero adoption series has no meaningful growth factor.
        expansion = [
            sum(zone_sizes[tld][day] for tld in GTLDS)
            for day in range(horizon)
        ]
        gtld_growth_inputs: Dict[str, Sequence[float]] = {}
        if "gtld" not in quarantined:
            gtld_growth_inputs["DPS adoption"] = (
                detection_gtld.any_use_combined
            )
            gtld_growth_inputs["Overall expansion"] = expansion
        growth_gtld = self.growth.compare(gtld_growth_inputs)

        # Fig. 6: .nl and Alexa over the six-month window.
        cc_growth_inputs: Dict[str, Sequence[float]] = {}
        if "nl" not in quarantined:
            cc_growth_inputs["DPS adoption (.nl)"] = (
                detection_nl.any_use_combined[window_start:]
            )
            cc_growth_inputs["Overall expansion (.nl)"] = (
                zone_sizes["nl"][window_start:]
            )
        if "alexa" not in quarantined:
            cc_growth_inputs["DPS adoption (Alexa)"] = (
                detection_alexa.any_use_combined[window_start:]
            )
        growth_cc = self.growth.compare(cc_growth_inputs)

        lifetimes = {
            name: timeline.lifespan(horizon)
            for name, timeline in world.domains.items()
        }
        classifier = UsageClassifier(horizon)
        usages = classifier.classify_result(detection_gtld, lifetimes)

        namespace_distribution = self._namespace_distribution(zone_sizes)
        dps_distribution = self._dps_distribution(detection_gtld)

        dataset_table = self.build_dataset_table()

        attributor = AnomalyAttributor(
            detection_gtld, segments, self.catalog
        )
        attributions = attributor.attribute_all()

        return StudyResults(
            horizon=horizon,
            detection_gtld=detection_gtld,
            detection_nl=detection_nl,
            detection_alexa=detection_alexa,
            zone_sizes=zone_sizes,
            growth_gtld=growth_gtld,
            growth_cc=growth_cc,
            flux=flux,
            peaks=peaks,
            usages=usages,
            namespace_distribution=namespace_distribution,
            dps_distribution=dps_distribution,
            dataset_table=dataset_table,
            attributions=attributions,
            segments=segments,
            fault_log=(
                self.fault_log if self.fault_plan is not None else None
            ),
            quarantined_scopes=dict(self.quarantined_scopes),
        )

    # -- Fig. 4 -----------------------------------------------------------------

    def _namespace_distribution(
        self, zone_sizes: Mapping[str, List[int]]
    ) -> Dict[str, float]:
        averages = {
            tld: sum(zone_sizes[tld]) / max(1, len(zone_sizes[tld]))
            for tld in GTLDS
        }
        total = sum(averages.values())
        return {
            tld: value / total
            for tld, value in sorted(averages.items())
        }

    def _dps_distribution(
        self, detection: DetectionResult
    ) -> Dict[str, float]:
        averages = {}
        for tld in GTLDS:
            series = detection.any_use_by_tld.get(tld, [0])
            averages[tld] = sum(series) / max(1, len(series))
        total = sum(averages.values()) or 1.0
        return {
            tld: value / total
            for tld, value in sorted(averages.items())
        }

    # -- Table 1 --------------------------------------------------------------------

    def build_dataset_table(self) -> List[DatasetRow]:
        """Table 1: per-source SLD counts, data points, and storage.

        Data-point totals come from the zone-size series (four measurements
        per domain-day); byte sizes are measured on sampled days through
        the real columnar store and extrapolated — the honest equivalent of
        reporting cluster storage you cannot rerun in full.
        """
        world = self.world
        manager = ClusterManager(world, store=ColumnStore(), enrich=True)
        rows: List[DatasetRow] = []
        for source in list(GTLDS) + ["nl", "alexa"]:
            if source == "alexa":
                start, days = CCTLD_START_DAY, world.horizon - CCTLD_START_DAY
                slds = len(world.alexa_names)
                domain_days = world.alexa_member_days(start, days)
            else:
                start, days = world.tld_windows[source]
                slds = world.unique_slds(source)
                sizes = world.zone_size_series(source)
                domain_days = sum(sizes[start : start + days])
            data_points = domain_days * MEASUREMENTS_PER_DOMAIN_DAY
            sample_days = [
                start + offset * max(1, days // (self._sample_days + 1))
                for offset in range(1, self._sample_days + 1)
            ]
            sampled_bytes = 0
            sampled_points = 0
            for day in sample_days:
                manager.measure_day(source, day)
                stats = manager.store.partition_stats(source, day)
                sampled_bytes += stats.encoded_bytes
                sampled_points += stats.data_points
            bytes_per_point = (
                sampled_bytes / sampled_points if sampled_points else 0.0
            )
            rows.append(
                DatasetRow(
                    source=source,
                    start_day=start,
                    days=days,
                    slds=slds,
                    data_points=data_points,
                    estimated_bytes=int(data_points * bytes_per_point),
                )
            )
        return rows

    # -- Table 2 ---------------------------------------------------------------------

    def derive_table2(
        self, day: int = 30, min_support: int = 3, purity: float = 0.5
    ) -> Dict[str, FingerprintResult]:
        """Run the §3.3 bootstrap on one day's full measurement.

        The bootstrap additionally gets an NS-host lookup — the platform
        measures name-server addresses too — so it can decide who
        *operates* a candidate NS SLD (rejecting e.g. a parking provider
        whose parked domains all sit in a DPS's address space, and
        accepting a managed-DNS SLD whose customers mostly don't divert).
        """
        manager = ClusterManager(self.world, enrich=True)
        observations = []
        for source in GTLDS:
            observations.extend(manager.measure_day(source, day))
        pfx2as = self.world.pfx2as_at(day)

        def ns_host_lookup(hostname: str):
            address = self.world.ns_host_address(hostname)
            if address is None:
                return frozenset()
            return pfx2as.lookup(address)

        bootstrap = FingerprintBootstrap(
            observations,
            self.world.as_registry,
            min_support=min_support,
            purity=purity,
            ns_host_lookup=ns_host_lookup,
        )
        return {
            name: bootstrap.derive(name)
            for name in self.catalog.provider_names
        }
