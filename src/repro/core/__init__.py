"""The paper's methodology: detecting and characterising DPS use.

Given active-DNS observations (with ASN enrichment), this package

* matches per-domain, per-day **references** to DPS providers via CNAME
  SLDs, NS SLDs, and ASNs (§3.3) — :mod:`repro.core.references`,
  :mod:`repro.core.detection`;
* *derives* the provider reference catalog itself from measurement data by
  the seed-ASN bootstrap (§3.3) — :mod:`repro.core.fingerprint`;
* separates always-on from on-demand use (§3.4) —
  :mod:`repro.core.classification`;
* computes adoption growth with median smoothing and anomaly cleaning
  (§4.2) — :mod:`repro.core.growth`;
* analyses flux (first-seen/last-seen deltas, §4.4.2) and on-demand peak
  durations (§4.4.3) — :mod:`repro.core.flux`, :mod:`repro.core.peaks`;
* attributes mass anomalies to third parties (§4.4.1) —
  :mod:`repro.core.attribution`;
* orchestrates the full study — :mod:`repro.core.pipeline`.
"""

from repro.core.references import (
    ProviderSignature,
    RefType,
    SignatureCatalog,
)
from repro.core.detection import (
    DetectionResult,
    ProviderSeries,
    SegmentDetector,
    UseInterval,
    detect_observation,
)
from repro.core.classification import UsageClass, UsageClassifier
from repro.core.diversion import (
    DiversionClassifier,
    DiversionEdge,
    DiversionMechanism,
)
from repro.core.exposure import (
    ExposureReport,
    analyze_exposure,
    render_exposure,
)
from repro.core.growth import GrowthAnalysis, GrowthSeries, median_smooth
from repro.core.flux import FluxAnalysis, FluxSeries
from repro.core.peaks import PeakAnalysis, PeakStats
from repro.core.fingerprint import FingerprintBootstrap, FingerprintResult
from repro.core.attribution import AnomalyAttributor, AnomalyEvent
from repro.core.pipeline import AdoptionStudy, StudyResults

__all__ = [
    "AdoptionStudy",
    "AnomalyAttributor",
    "AnomalyEvent",
    "DetectionResult",
    "DiversionClassifier",
    "DiversionEdge",
    "DiversionMechanism",
    "ExposureReport",
    "FingerprintBootstrap",
    "FingerprintResult",
    "FluxAnalysis",
    "FluxSeries",
    "GrowthAnalysis",
    "GrowthSeries",
    "PeakAnalysis",
    "PeakStats",
    "ProviderSeries",
    "ProviderSignature",
    "RefType",
    "SegmentDetector",
    "SignatureCatalog",
    "StudyResults",
    "UsageClass",
    "UsageClassifier",
    "UseInterval",
    "analyze_exposure",
    "detect_observation",
    "median_smooth",
    "render_exposure",
]
