"""DPS reference signatures and per-observation matching (§3.3).

A provider signature is the paper's Table 2 row: AS numbers, CNAME
second-level domains, and NS second-level domains. Matching an observation
yields, per provider, the set of :class:`RefType` references found — the
raw material for everything downstream (detection, method breakdowns,
protection classification).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.measurement.snapshot import DomainObservation
from repro.world.providers import PAPER_PROVIDER_BLUEPRINTS


class RefType(enum.Enum):
    """How a domain references a DPS (Table 2 columns)."""

    AS = "AS"
    CNAME = "CNAME"
    NS = "NS"


@dataclass(frozen=True)
class ProviderSignature:
    """One provider's reference fingerprint."""

    name: str
    asns: FrozenSet[int]
    cname_slds: FrozenSet[str]
    ns_slds: FrozenSet[str]

    def match(self, observation: DomainObservation) -> FrozenSet[RefType]:
        """The reference types *observation* makes to this provider."""
        refs = set()
        if self.asns & observation.asns:
            refs.add(RefType.AS)
        if self.cname_slds and (self.cname_slds & observation.cname_slds()):
            refs.add(RefType.CNAME)
        if self.ns_slds and (self.ns_slds & observation.ns_slds()):
            refs.add(RefType.NS)
        return frozenset(refs)

    def to_row(self) -> Dict[str, str]:
        """A Table 2-style presentation row."""
        return {
            "Provider": self.name,
            "AS number(s)": ", ".join(str(a) for a in sorted(self.asns)),
            "CNAME SLD(s)": ", ".join(sorted(self.cname_slds)) or "—",
            "NS SLD(s)": ", ".join(sorted(self.ns_slds)) or "—",
        }


class SignatureCatalog:
    """The full set of provider signatures used for detection."""

    def __init__(self, signatures: Iterable[ProviderSignature]):
        self._signatures: Dict[str, ProviderSignature] = {}
        for signature in signatures:
            if signature.name in self._signatures:
                raise ValueError(f"duplicate signature {signature.name!r}")
            self._signatures[signature.name] = signature
        # Fast lookup indexes.
        self._by_asn: Dict[int, List[str]] = {}
        self._by_cname_sld: Dict[str, List[str]] = {}
        self._by_ns_sld: Dict[str, List[str]] = {}
        for signature in self._signatures.values():
            for asn in signature.asns:
                self._by_asn.setdefault(asn, []).append(signature.name)
            for sld in signature.cname_slds:
                self._by_cname_sld.setdefault(sld, []).append(signature.name)
            for sld in signature.ns_slds:
                self._by_ns_sld.setdefault(sld, []).append(signature.name)

    @classmethod
    def paper_table2(cls) -> "SignatureCatalog":
        """The catalog exactly as published in the paper's Table 2."""
        return cls(
            ProviderSignature(
                name=blueprint.name,
                asns=frozenset(blueprint.asns),
                cname_slds=frozenset(blueprint.cname_slds),
                ns_slds=frozenset(blueprint.ns_slds),
            )
            for blueprint in PAPER_PROVIDER_BLUEPRINTS
        )

    # -- access ------------------------------------------------------------

    def __iter__(self) -> Iterator[ProviderSignature]:
        return iter(
            sorted(self._signatures.values(), key=lambda s: s.name)
        )

    def __len__(self) -> int:
        return len(self._signatures)

    def get(self, name: str) -> Optional[ProviderSignature]:
        return self._signatures.get(name)

    @property
    def provider_names(self) -> List[str]:
        return sorted(self._signatures)

    # -- matching -----------------------------------------------------------------

    def match(
        self, observation: DomainObservation
    ) -> Dict[str, FrozenSet[RefType]]:
        """Per-provider references in *observation* (empty dict = no use).

        Uses the inverted indexes: an observation touches few ASNs/SLDs, so
        matching is O(observation), not O(catalog).
        """
        found: Dict[str, set] = {}
        for asn in observation.asns:
            for name in self._by_asn.get(asn, ()):
                found.setdefault(name, set()).add(RefType.AS)
        for sld in observation.cname_slds():
            for name in self._by_cname_sld.get(sld, ()):
                found.setdefault(name, set()).add(RefType.CNAME)
        for sld in observation.ns_slds():
            for name in self._by_ns_sld.get(sld, ()):
                found.setdefault(name, set()).add(RefType.NS)
        return {name: frozenset(refs) for name, refs in found.items()}

    def to_table(self) -> List[Dict[str, str]]:
        """Presentation rows for the Table 2 reproduction."""
        return [signature.to_row() for signature in self]
