"""On-demand peak-duration analysis (§4.4.3, Fig. 8).

For each provider the paper estimates a set of on-demand domains — those
showing **at least three peaks** over the measurement period — and plots
the CDF of peak durations (in days), marking the 80th percentile:
"for providers that show signs of highly anomalous behavior from day to
day, the majority of peak occurrences are short-lived
(P(duration <= days) = 0.8)".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.classification import ON_DEMAND_MIN_PEAKS
from repro.core.detection import DetectionResult, UseInterval


@dataclass
class PeakStats:
    """Peak-duration distribution for one provider's on-demand set."""

    provider: str
    domain_count: int
    durations: List[int]

    def percentile(self, fraction: float) -> int:
        """The smallest duration d with P(duration <= d) >= fraction."""
        if not self.durations:
            raise ValueError(f"{self.provider} has no on-demand peaks")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        ordered = sorted(self.durations)
        index = max(0, math.ceil(fraction * len(ordered)) - 1)
        return ordered[index]

    @property
    def p80(self) -> int:
        """The Fig. 8 marker: 80 % of peaks last at most this many days."""
        return self.percentile(0.8)

    def cdf(self, max_days: Optional[int] = None) -> List[Tuple[int, float]]:
        """``(duration, P(duration <= d))`` points for plotting."""
        if not self.durations:
            return []
        ordered = sorted(self.durations)
        horizon = max_days if max_days is not None else ordered[-1]
        points: List[Tuple[int, float]] = []
        count = 0
        cursor = 0
        for duration in range(1, horizon + 1):
            while cursor < len(ordered) and ordered[cursor] <= duration:
                cursor += 1
                count += 1
            points.append((duration, count / len(ordered)))
        return points


class PeakAnalysis:
    """Extracts on-demand sets and their peak durations per provider."""

    def __init__(
        self, horizon: int, min_peaks: int = ON_DEMAND_MIN_PEAKS
    ):
        self._horizon = horizon
        self._min_peaks = min_peaks

    def peaks_of(
        self, intervals: Sequence[UseInterval]
    ) -> List[UseInterval]:
        """The *bounded* peaks among a domain's use intervals.

        A right-censored final interval is not a complete peak — its true
        duration is unknown — so it is excluded from duration statistics
        (but still counts towards the ≥3-peaks membership test, since the
        domain demonstrably switched that many times).
        """
        return [
            interval
            for interval in intervals
            if interval.end < self._horizon
        ]

    def analyze(self, detection: DetectionResult) -> Dict[str, PeakStats]:
        """Per-provider peak statistics over the on-demand sets (Fig. 8)."""
        return self.analyze_intervals(
            detection.intervals, detection.providers
        )

    def analyze_intervals(
        self,
        intervals_by_key: Dict[Tuple[str, str], List[UseInterval]],
        providers: Sequence[str] = (),
    ) -> Dict[str, PeakStats]:
        """Peak statistics from raw ``(domain, provider) → intervals`` state.

        Interval-level entry point for the incremental ingest engine (see
        :meth:`FluxAnalysis.analyze_intervals` for the rationale).
        """
        stats: Dict[str, PeakStats] = {}
        counts: Dict[str, int] = {}
        durations: Dict[str, List[int]] = {}
        for (domain, provider), intervals in sorted(intervals_by_key.items()):
            if len(intervals) < self._min_peaks:
                continue
            counts[provider] = counts.get(provider, 0) + 1
            bucket = durations.setdefault(provider, [])
            bucket.extend(
                interval.days for interval in self.peaks_of(intervals)
            )
        for provider in sorted(set(providers) | set(counts)):
            stats[provider] = PeakStats(
                provider=provider,
                domain_count=counts.get(provider, 0),
                # Canonically sorted so the duration list is a pure
                # function of the duration multiset — which is what makes
                # per-shard results mergeable byte-identically.
                durations=sorted(durations.get(provider, [])),
            )
        return stats

    def merge(
        self, parts: Sequence[Dict[str, PeakStats]]
    ) -> Dict[str, PeakStats]:
        """Combine per-shard peak statistics (exact aggregation).

        A domain's ≥min-peaks membership is decided entirely inside its
        shard, so domain counts sum and duration multisets union; with
        durations kept canonically sorted, the merge equals a single
        :meth:`analyze` pass over the un-sharded detection, byte for
        byte.
        """
        merged: Dict[str, PeakStats] = {}
        for provider in sorted({name for part in parts for name in part}):
            domain_count = 0
            durations: List[int] = []
            for part in parts:
                stats = part.get(provider)
                if stats is None:
                    continue
                domain_count += stats.domain_count
                durations.extend(stats.durations)
            merged[provider] = PeakStats(
                provider=provider,
                domain_count=domain_count,
                durations=sorted(durations),
            )
        return merged
