"""Per-domain, per-day DPS use detection and its aggregation (§3.3, §4.1).

The detector consumes enriched observation segments and produces:

* daily use counts per provider, per reference type, per TLD, and combined
  (the series behind Figures 2 and 3);
* per ``(domain, provider)`` **use intervals** — maximal day ranges with at
  least one reference — which feed the always-on/on-demand classification,
  the flux analysis, and the peak-duration analysis;
* per-domain reference-combination tallies (e.g. ``CNAME+AS without NS``),
  the paper's "how is the domain protected" signal.

Counts are at the second level: "multiple references in the DNS zone of a
domain are counted as one" (§4.1 footnote 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.batch.batch import MatchKey, ObservationBatch
from repro.core.references import RefType, SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment

REF_COMBOS: Tuple[FrozenSet[RefType], ...] = tuple(
    frozenset(combo)
    for combo in (
        {RefType.AS},
        {RefType.CNAME},
        {RefType.NS},
        {RefType.AS, RefType.CNAME},
        {RefType.AS, RefType.NS},
        {RefType.CNAME, RefType.NS},
        {RefType.AS, RefType.CNAME, RefType.NS},
    )
)


def combo_label(refs: FrozenSet[RefType]) -> str:
    """A stable label like ``AS+CNAME`` for a reference combination."""
    order = (RefType.AS, RefType.CNAME, RefType.NS)
    return "+".join(ref.value for ref in order if ref in refs) or "none"


def detect_observation(
    observation: DomainObservation, catalog: SignatureCatalog
) -> Dict[str, FrozenSet[RefType]]:
    """References of a single daily observation (thin wrapper)."""
    return catalog.match(observation)


def _sum_series(
    series_list: Sequence[Sequence[int]], horizon: int
) -> List[int]:
    """Element-wise sum of daily count series, zero-padded to *horizon*."""
    totals = [0] * horizon
    for series in series_list:
        if len(series) != horizon:
            raise ValueError(
                f"series length {len(series)} != horizon {horizon}"
            )
        for index, value in enumerate(series):
            totals[index] += value
    return totals


@dataclass(frozen=True)
class UseInterval:
    """A maximal ``[start, end)`` range of continuous DPS use."""

    start: int
    end: int

    @property
    def days(self) -> int:
        return self.end - self.start


class IntervalBuilder:
    """Maximal-interval accumulation from single-day use facts.

    The batch :class:`SegmentDetector` sees a domain's whole history at
    once and in order; a daily-ingest engine sees one day at a time and —
    after a quarantined gap is reconciled — possibly out of order. This
    builder maintains the same invariant either way: ``runs`` is sorted,
    non-overlapping and never adjacent, so every run is a maximal range of
    continuous use, exactly like the batch detector's intervals.

    In-order insertion (the streaming hot path) is O(1); a late day costs
    a binary search over the existing runs.
    """

    __slots__ = ("runs",)

    def __init__(self, runs: Optional[Iterable[Iterable[int]]] = None):
        self.runs: List[List[int]] = [list(run) for run in (runs or [])]

    def add_day(self, day: int) -> None:
        """Record that *day* was a use day (raises if already recorded)."""
        runs = self.runs
        if runs and runs[-1][1] == day:  # hot path: in-order extension
            runs[-1][1] = day + 1
            return
        if not runs or runs[-1][1] < day:  # in-order after a gap
            runs.append([day, day + 1])
            return
        self._add_late(day)

    def _add_late(self, day: int) -> None:
        """Stitch a late-arriving *day* into the sorted runs."""
        runs = self.runs
        lo, hi = 0, len(runs)
        while lo < hi:  # rightmost run with start <= day
            mid = (lo + hi) // 2
            if runs[mid][0] <= day:
                lo = mid + 1
            else:
                hi = mid
        index = lo - 1
        if index >= 0 and runs[index][1] > day:
            raise ValueError(f"day {day} already recorded")
        if index >= 0 and runs[index][1] == day:
            runs[index][1] = day + 1
            if index + 1 < len(runs) and runs[index + 1][0] == day + 1:
                runs[index][1] = runs.pop(index + 1)[1]
        elif index + 1 < len(runs) and runs[index + 1][0] == day + 1:
            runs[index + 1][0] = day
        else:
            runs.insert(index + 1, [day, day + 1])

    def intervals(self) -> List[UseInterval]:
        return [UseInterval(start, end) for start, end in self.runs]


class _DiffSeries:
    """A daily count series accumulated as interval differences."""

    __slots__ = ("deltas",)

    def __init__(self, horizon: int):
        self.deltas = [0] * (horizon + 1)

    def add(self, start: int, end: int) -> None:
        self.deltas[start] += 1
        self.deltas[end] -= 1

    def materialize(self) -> List[int]:
        values: List[int] = []
        running = 0
        for delta in self.deltas[:-1]:
            running += delta
            values.append(running)
        return values


@dataclass
class ProviderSeries:
    """Daily series for one provider: total use and per-method breakdown."""

    provider: str
    total: List[int]
    by_ref: Dict[RefType, List[int]]

    def peak_day(self) -> int:
        """The day with the highest total use."""
        return max(range(len(self.total)), key=self.total.__getitem__)


@dataclass
class DetectionResult:
    """Everything the detector aggregates over a study window."""

    horizon: int
    #: provider → daily distinct-SLD count plus per-RefType breakdown.
    providers: Dict[str, ProviderSeries]
    #: tld → daily count of SLDs using *any* studied provider.
    any_use_by_tld: Dict[str, List[int]]
    #: Daily count of SLDs using any studied provider, across TLDs.
    any_use_combined: List[int]
    #: (domain, provider) → maximal use intervals, chronological.
    intervals: Dict[Tuple[str, str], List[UseInterval]]
    #: provider → combo label → domain-days with that reference combination.
    combo_days: Dict[str, Dict[str, int]]
    domains_seen: int = 0

    def providers_of(self, domain: str) -> List[str]:
        return sorted(
            provider
            for (name, provider) in self.intervals
            if name == domain
        )

    def interval_count(self) -> int:
        return sum(len(v) for v in self.intervals.values())

    @classmethod
    def empty(cls, horizon: int) -> "DetectionResult":
        """A result over zero observations.

        The quarantine placeholder: a poisoned detection scope exports
        this instead of partial garbage, so downstream consumers see an
        explicit all-zero series rather than a misleading one.
        """
        return cls(
            horizon=horizon,
            providers={},
            any_use_by_tld={},
            any_use_combined=[0] * horizon,
            intervals={},
            combo_days={},
            domains_seen=0,
        )

    @classmethod
    def merge(
        cls, parts: Sequence["DetectionResult"]
    ) -> "DetectionResult":
        """Combine per-shard results into one, canonically ordered.

        Every aggregate is either an integer sum (daily series, combo
        tallies, ``domains_seen``) or a keyed union (intervals), so the
        merge is exact: partitioning the domain set by shard and merging
        yields the same object — byte for byte — as a single detector
        pass over all domains, regardless of shard count. Each domain
        must be processed by exactly one shard; a ``(domain, provider)``
        interval key appearing in several parts means the partitioning
        was wrong and raises.
        """
        if not parts:
            raise ValueError("cannot merge zero detection results")
        horizon = parts[0].horizon
        for part in parts[1:]:
            if part.horizon != horizon:
                raise ValueError(
                    "cannot merge detection results with different "
                    f"horizons ({part.horizon} != {horizon})"
                )

        provider_names = sorted(
            {name for part in parts for name in part.providers}
        )
        providers: Dict[str, ProviderSeries] = {}
        for name in provider_names:
            shards = [
                part.providers[name]
                for part in parts
                if name in part.providers
            ]
            by_ref: Dict[RefType, List[int]] = {}
            for ref in RefType:
                ref_series = [
                    shard.by_ref[ref]
                    for shard in shards
                    if ref in shard.by_ref
                ]
                if ref_series:
                    by_ref[ref] = _sum_series(ref_series, horizon)
            providers[name] = ProviderSeries(
                provider=name,
                total=_sum_series(
                    [shard.total for shard in shards], horizon
                ),
                by_ref=by_ref,
            )

        tlds = sorted(
            {tld for part in parts for tld in part.any_use_by_tld}
        )
        any_use_by_tld = {
            tld: _sum_series(
                [
                    part.any_use_by_tld[tld]
                    for part in parts
                    if tld in part.any_use_by_tld
                ],
                horizon,
            )
            for tld in tlds
        }

        intervals: Dict[Tuple[str, str], List[UseInterval]] = {}
        for part in parts:
            for key in part.intervals:
                if key in intervals:
                    raise ValueError(
                        f"interval key {key!r} appears in multiple "
                        f"shards; domains must be partitioned disjointly"
                    )
            intervals.update(part.intervals)

        combo_days: Dict[str, Dict[str, int]] = {}
        for part in parts:
            for provider, combos in part.combo_days.items():
                bucket = combo_days.setdefault(provider, {})
                for label, days in combos.items():
                    bucket[label] = bucket.get(label, 0) + days

        return cls(
            horizon=horizon,
            providers=providers,
            any_use_by_tld=any_use_by_tld,
            any_use_combined=_sum_series(
                [part.any_use_combined for part in parts], horizon
            ),
            intervals={
                key: sorted(values, key=lambda i: i.start)
                for key, values in sorted(intervals.items())
            },
            combo_days={
                provider: dict(sorted(combos.items()))
                for provider, combos in sorted(combo_days.items())
            },
            domains_seen=sum(part.domains_seen for part in parts),
        )


class SegmentDetector:
    """Streaming detector over per-domain observation segments."""

    def __init__(self, catalog: SignatureCatalog, horizon: int):
        self._catalog = catalog
        self._horizon = horizon
        self._provider_total: Dict[str, _DiffSeries] = {}
        self._provider_ref: Dict[Tuple[str, RefType], _DiffSeries] = {}
        self._tld_any: Dict[str, _DiffSeries] = {}
        self._combined_any = _DiffSeries(horizon)
        self._intervals: Dict[Tuple[str, str], List[UseInterval]] = {}
        self._combo_days: Dict[str, Dict[str, int]] = {}
        self._domains_seen = 0

    # -- ingestion ----------------------------------------------------------

    def process_domain(
        self, domain: str, tld: str, segments: Iterable[ObservationSegment]
    ) -> None:
        """Ingest one domain's full (enriched) observation history."""
        ordered = sorted(segments, key=lambda s: s.start)
        self._ingest_spans(
            domain,
            tld,
            (
                (
                    segment.start,
                    segment.end,
                    self._catalog.match(segment.observation),
                )
                for segment in ordered
            ),
        )

    def process_batch(self, batch: ObservationBatch) -> None:
        """Ingest a whole-history batch of daily observations.

        The batch must contain each of its domains' *complete* daily
        history (one detector call per domain, like
        :meth:`process_domain`) — partial histories would close use
        intervals early. Signature matching is deduplicated by the
        batch's pool-relative match key — the catalog reads only NS
        names, CNAMEs, and ASNs, so rows sharing those columns share one
        match — and each domain's day rows run through the same span
        ingestion as the segment path, making the aggregate
        value-identical to per-row detection.
        """
        matches_by_key: Dict[MatchKey, Dict[str, FrozenSet[RefType]]] = {}
        grouped: Dict[int, List[Tuple[int, Dict[str, FrozenSet[RefType]]]]]
        grouped = {}
        tld_of: Dict[int, int] = {}
        for index in range(len(batch)):
            key = batch.match_key(index)
            matches = matches_by_key.get(key)
            if matches is None:
                matches = self._catalog.match(batch.row(index))
                matches_by_key[key] = matches
            domain_id = batch.domains[index]
            bucket = grouped.get(domain_id)
            if bucket is None:
                bucket = []
                grouped[domain_id] = bucket
                tld_of[domain_id] = batch.tlds[index]
            bucket.append((batch.days[index], matches))
        names = batch.names
        for domain_id, day_rows in grouped.items():
            day_rows.sort(key=lambda item: item[0])
            self._ingest_spans(
                names.value(domain_id),
                names.value(tld_of[domain_id]),
                (
                    (day, day + 1, matches)
                    for day, matches in day_rows
                ),
            )

    def _ingest_spans(
        self,
        domain: str,
        tld: str,
        spans: Iterable[Tuple[int, int, Dict[str, FrozenSet[RefType]]]],
    ) -> None:
        """Shared span loop: ``(start, end, matches)`` in start order."""
        self._domains_seen += 1
        per_provider_open: Dict[str, Tuple[int, int]] = {}
        any_open: Optional[Tuple[int, int]] = None

        for raw_start, raw_end, matches in spans:
            start, end = raw_start, min(raw_end, self._horizon)
            if start >= end:
                continue
            for provider, refs in matches.items():
                for ref in refs:
                    self._ref_series(provider, ref).add(start, end)
                self._combo(provider, combo_label(refs), end - start)
            # Interval building: extend or open per provider.
            for provider in matches:
                open_range = per_provider_open.get(provider)
                if open_range is not None and open_range[1] == start:
                    per_provider_open[provider] = (open_range[0], end)
                else:
                    if open_range is not None:
                        self._close(domain, provider, open_range)
                    per_provider_open[provider] = (start, end)
            for provider in list(per_provider_open):
                if provider not in matches and \
                        per_provider_open[provider][1] <= start:
                    self._close(domain, provider, per_provider_open.pop(provider))
            # Any-provider series per TLD and combined.
            if matches:
                if any_open is not None and any_open[1] == start:
                    any_open = (any_open[0], end)
                else:
                    if any_open is not None:
                        self._flush_any(tld, any_open)
                    any_open = (start, end)
            elif any_open is not None and any_open[1] <= start:
                self._flush_any(tld, any_open)
                any_open = None

        for provider, open_range in per_provider_open.items():
            self._close(domain, provider, open_range)
        if any_open is not None:
            self._flush_any(tld, any_open)

    # -- helpers ----------------------------------------------------------------

    def _ref_series(self, provider: str, ref: RefType) -> _DiffSeries:
        key = (provider, ref)
        series = self._provider_ref.get(key)
        if series is None:
            series = _DiffSeries(self._horizon)
            self._provider_ref[key] = series
        return series

    def _combo(self, provider: str, label: str, days: int) -> None:
        bucket = self._combo_days.setdefault(provider, {})
        bucket[label] = bucket.get(label, 0) + days

    def _close(
        self, domain: str, provider: str, open_range: Tuple[int, int]
    ) -> None:
        start, end = open_range
        series = self._provider_total.get(provider)
        if series is None:
            series = _DiffSeries(self._horizon)
            self._provider_total[provider] = series
        series.add(start, end)
        self._intervals.setdefault((domain, provider), []).append(
            UseInterval(start, end)
        )

    def _flush_any(self, tld: str, open_range: Tuple[int, int]) -> None:
        start, end = open_range
        series = self._tld_any.get(tld)
        if series is None:
            series = _DiffSeries(self._horizon)
            self._tld_any[tld] = series
        series.add(start, end)
        self._combined_any.add(start, end)

    # -- result ---------------------------------------------------------------

    def result(self) -> DetectionResult:
        providers: Dict[str, ProviderSeries] = {}
        names = set(self._provider_total) | {
            key[0] for key in self._provider_ref
        }
        for name in sorted(names):
            total_series = self._provider_total.get(name)
            providers[name] = ProviderSeries(
                provider=name,
                total=(
                    total_series.materialize()
                    if total_series
                    else [0] * self._horizon
                ),
                by_ref={
                    ref: self._provider_ref[(name, ref)].materialize()
                    for ref in RefType
                    if (name, ref) in self._provider_ref
                },
            )
        return DetectionResult(
            horizon=self._horizon,
            providers=providers,
            any_use_by_tld={
                tld: series.materialize()
                for tld, series in sorted(self._tld_any.items())
            },
            any_use_combined=self._combined_any.materialize(),
            intervals={
                key: sorted(values, key=lambda i: i.start)
                for key, values in sorted(self._intervals.items())
            },
            combo_days={
                provider: dict(sorted(combos.items()))
                for provider, combos in sorted(self._combo_days.items())
            },
            domains_seen=self._domains_seen,
        )
