"""Classifying *how* on-demand diversion was effected (§3.4).

"In this case, CNAME, NS, and ASN (non-)references reveal specifically how
on-demand traffic diversion was effected. For example, a domain for which
the ASN of an unchanged IP address references a DPS on and off suggests
BGP-based traffic diversion."

Given a domain's enriched observation segments and its use intervals for a
provider, the classifier compares the observation just before each
diversion edge with the one just after it:

* addresses unchanged, ASNs flip        → **BGP** prefix re-origination;
* NS SLDs flip to the provider          → **NS delegation** switch;
* a provider CNAME appears              → **CNAME** toggle;
* addresses flip into provider space    → **A-record** switch.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.detection import DetectionResult, UseInterval
from repro.core.references import ProviderSignature, SignatureCatalog
from repro.measurement.snapshot import DomainObservation, ObservationSegment


class DiversionMechanism(enum.Enum):
    """The §2 diversion mechanisms, as inferred from measurement."""

    A_RECORD = "a-record"
    CNAME = "cname"
    NS_DELEGATION = "ns-delegation"
    BGP = "bgp"
    #: The domain appeared/disappeared entirely (no before/after to compare).
    UNOBSERVED = "unobserved"


@dataclass(frozen=True)
class DiversionEdge:
    """One classified on/off switch for a (domain, provider) pair."""

    domain: str
    provider: str
    day: int
    direction: str  # "on" or "off"
    mechanism: DiversionMechanism


class DiversionClassifier:
    """Infers diversion mechanisms from observation segments."""

    def __init__(self, catalog: SignatureCatalog):
        self._catalog = catalog

    # -- single-edge classification ------------------------------------------

    def classify_edge(
        self,
        signature: ProviderSignature,
        before: Optional[DomainObservation],
        after: Optional[DomainObservation],
    ) -> DiversionMechanism:
        """Classify one switch given the observation on both sides.

        *before* is the non-diverted side, *after* the diverted side —
        callers orient them, so "off" edges pass (diverted, restored)
        reversed.
        """
        if before is None or after is None:
            return DiversionMechanism.UNOBSERVED
        if signature.ns_slds & after.ns_slds() and not (
            signature.ns_slds & before.ns_slds()
        ):
            return DiversionMechanism.NS_DELEGATION
        if signature.cname_slds & after.cname_slds() and not (
            signature.cname_slds & before.cname_slds()
        ):
            return DiversionMechanism.CNAME
        addresses_unchanged = (
            before.all_addresses() == after.all_addresses()
            and before.all_addresses()
        )
        asns_flipped = bool(signature.asns & after.asns) and not (
            signature.asns & before.asns
        )
        if addresses_unchanged and asns_flipped:
            return DiversionMechanism.BGP
        if asns_flipped:
            return DiversionMechanism.A_RECORD
        return DiversionMechanism.UNOBSERVED

    # -- per-domain classification -----------------------------------------------

    @staticmethod
    def _observation_at(
        segments: Sequence[ObservationSegment], day: int
    ) -> Optional[DomainObservation]:
        for segment in segments:
            if segment.start <= day < segment.end:
                return segment.observation
        return None

    def classify_domain(
        self,
        domain: str,
        provider: str,
        intervals: Sequence[UseInterval],
        segments: Sequence[ObservationSegment],
        horizon: int,
    ) -> List[DiversionEdge]:
        """Classify every diversion edge of one (domain, provider) pair."""
        signature = self._catalog.get(provider)
        if signature is None:
            raise ValueError(f"unknown provider {provider!r}")
        edges: List[DiversionEdge] = []
        for interval in intervals:
            if interval.start > 0:
                before = self._observation_at(segments, interval.start - 1)
                after = self._observation_at(segments, interval.start)
                edges.append(
                    DiversionEdge(
                        domain=domain,
                        provider=provider,
                        day=interval.start,
                        direction="on",
                        mechanism=self.classify_edge(
                            signature, before, after
                        ),
                    )
                )
            if interval.end < horizon:
                diverted = self._observation_at(segments, interval.end - 1)
                restored = self._observation_at(segments, interval.end)
                edges.append(
                    DiversionEdge(
                        domain=domain,
                        provider=provider,
                        day=interval.end,
                        direction="off",
                        mechanism=self.classify_edge(
                            signature, restored, diverted
                        ),
                    )
                )
        return edges

    # -- study-level aggregation ------------------------------------------------

    def classify_result(
        self,
        detection: DetectionResult,
        segments_by_domain: Mapping[str, Sequence[ObservationSegment]],
        min_peaks: int = 1,
    ) -> List[DiversionEdge]:
        """All classified edges across a detection result."""
        edges: List[DiversionEdge] = []
        for (domain, provider), intervals in sorted(
            detection.intervals.items()
        ):
            if len(intervals) < min_peaks:
                continue
            segments = segments_by_domain.get(domain)
            if not segments:
                continue
            edges.extend(
                self.classify_domain(
                    domain, provider, intervals, segments,
                    detection.horizon,
                )
            )
        return edges

    @staticmethod
    def summarize(
        edges: Sequence[DiversionEdge],
    ) -> Dict[str, Dict[DiversionMechanism, int]]:
        """Per-provider mechanism counts over "on" edges."""
        summary: Dict[str, Counter] = {}
        for edge in edges:
            if edge.direction != "on":
                continue
            summary.setdefault(edge.provider, Counter())[
                edge.mechanism
            ] += 1
        return {
            provider: dict(counts) for provider, counts in summary.items()
        }
