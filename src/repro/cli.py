"""Command-line interface: ``python -m repro <command>``.

Commands::

    study        run the full study and print selected artifacts
    resolve      dig-style resolution against the simulated world on a day
    zonefile     print a day's zone listing for a TLD (or the Alexa list)
    pfx2as       dump or query a day's Routeviews-style pfx2as snapshot
    fingerprint  run the §3.3 bootstrap for one provider
    measure      run one day's measurement and store it columnar on disk
    stream       tail the world day-by-day with the incremental engine
    serve        run the live adoption query service (docs/SERVING.md)
    analyze      run the determinism & invariant linter over source trees
    store        migrate/compact/inspect on-disk observation stores
    sketch       constant-memory streaming summaries (docs/SKETCHES.md)
    faults       list fault-injection sites / print an example fault plan

Every command accepts ``--scale`` and ``--seed``; the world is rebuilt
deterministically from those, so output is reproducible.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core.exposure import analyze_exposure, render_exposure
from repro.core.pipeline import AdoptionStudy
from repro.core.references import SignatureCatalog
from repro.dnscore.name import DomainName
from repro.dnscore.resolver import IterativeResolver, ResolutionError
from repro.dnscore.rrtypes import RRType
from repro.measurement.zonefeed import ZoneFeed
from repro.world.scenario import ScenarioConfig, build_paper_world

DEFAULT_SCALE = 12000

ARTIFACTS = (
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "anomalies", "exposure",
)

#: artifact → detection scopes it renders from. An artifact is skipped
#: when any of its scopes is quarantined by a fault plan (its numbers
#: would be the zeroed placeholders, not measurements).
ARTIFACT_SCOPES = {
    "fig2": ("gtld",),
    "fig3": ("gtld",),
    "fig4": ("gtld",),
    "fig5": ("gtld",),
    "fig6": ("nl", "alexa"),
    "fig7": ("gtld",),
    "fig8": ("gtld",),
    "anomalies": ("gtld",),
    "exposure": ("gtld",),
}


def _add_world_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=int, default=DEFAULT_SCALE,
        help="divide the paper's absolute counts by this "
             f"(default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--seed", type=int, default=2016, help="scenario seed",
    )


def _build_world(args: argparse.Namespace):
    return build_paper_world(
        ScenarioConfig(scale=args.scale, seed=args.seed)
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Measuring the Adoption of DDoS Protection "
            "Services' (IMC 2016)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser(
        "study", help="run the full study and print artifacts"
    )
    _add_world_options(study)
    study.add_argument(
        "--artifact", action="append", choices=ARTIFACTS + ("all",),
        help="artifact(s) to print (default: all)",
    )
    study.add_argument(
        "--output", help="also write artifacts + series.json to this dir",
    )
    study.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "run the measurement phase sharded over N worker processes "
            "(results are byte-identical to a serial run; default: serial)"
        ),
    )
    study.add_argument(
        "--shard-count", type=int, default=None, metavar="M",
        help="number of hash shards for --workers (default: 4 per worker)",
    )
    study.add_argument(
        "--backend", default=None, metavar="NAME[:N]",
        help=(
            "execution backend for the sharded measurement phase "
            "(serial, local, or cluster:N for N simulated nodes; "
            "default: $REPRO_BACKEND, else local when --workers is set)"
        ),
    )
    study.add_argument(
        "--fault-plan", metavar="PLAN.JSON",
        help=(
            "run under this fault plan (see 'repro faults'); injected "
            "faults are retried/contained and accounted in the output"
        ),
    )

    resolve = commands.add_parser(
        "resolve", help="resolve a name against the world on a given day"
    )
    _add_world_options(resolve)
    resolve.add_argument("name", help="domain name to resolve")
    resolve.add_argument("--day", type=int, default=0)
    resolve.add_argument(
        "--type", dest="rrtype", default="A",
        choices=["A", "AAAA", "NS", "CNAME"],
    )

    zonefile = commands.add_parser(
        "zonefile", help="print a day's zone listing"
    )
    _add_world_options(zonefile)
    zonefile.add_argument("tld", help="com/net/org/nl or 'alexa'")
    zonefile.add_argument("--day", type=int, default=0)
    zonefile.add_argument("--limit", type=int, default=20)

    pfx2as = commands.add_parser(
        "pfx2as", help="dump or query a day's pfx2as snapshot"
    )
    _add_world_options(pfx2as)
    pfx2as.add_argument("--day", type=int, default=0)
    pfx2as.add_argument(
        "--lookup", help="address to look up instead of dumping",
    )
    pfx2as.add_argument("--limit", type=int, default=30)

    fingerprint = commands.add_parser(
        "fingerprint", help="derive one provider's Table 2 row (§3.3)"
    )
    _add_world_options(fingerprint)
    fingerprint.add_argument("provider")
    fingerprint.add_argument("--day", type=int, default=30)

    measure = commands.add_parser(
        "measure",
        help="run a day's measurement and store it columnar on disk",
    )
    _add_world_options(measure)
    measure.add_argument("source", help="com/net/org/nl or 'alexa'")
    measure.add_argument("--day", type=int, default=0)
    measure.add_argument("--output", required=True,
                         help="directory for the columnar partition files")

    stream = commands.add_parser(
        "stream",
        help="tail the world day-by-day with the incremental ingest engine",
    )
    _add_world_options(stream)
    stream.add_argument(
        "--days", type=int, default=None,
        help="stop after this calendar day (default: the full horizon)",
    )
    stream.add_argument(
        "--sources", default="com,net,org,nl,alexa",
        help="comma-separated sources to tail",
    )
    stream.add_argument(
        "--interval", type=int, default=50,
        help="print live counters every N days (default 50)",
    )
    stream.add_argument(
        "--checkpoint", help="checkpoint file to write (and resume from)",
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="also checkpoint every N days (0: only at the end)",
    )
    stream.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint if it exists",
    )
    stream.add_argument(
        "--json", action="store_true",
        help=(
            "print snapshots as canonical JSON lines (the serve "
            "protocol encoding) instead of the counter tables"
        ),
    )

    serve = commands.add_parser(
        "serve",
        help="ingest the world and serve adoption queries over TCP",
    )
    _add_world_options(serve)
    serve.add_argument(
        "--days", type=int, default=None,
        help="ingest through this calendar day (default: full horizon)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0: ephemeral)",
    )
    serve.add_argument(
        "--strategy", choices=["sliding", "token", "none"],
        default="sliding",
        help="per-client rate-limit strategy (default sliding)",
    )
    serve.add_argument(
        "--limit", type=int, default=60,
        help="requests admitted per client per window (default 60)",
    )
    serve.add_argument(
        "--window", type=int, default=1000,
        help=(
            "rate-limit window in ticks; live serving ticks are "
            "milliseconds, --self-test ticks are requests "
            "(default 1000)"
        ),
    )
    serve.add_argument(
        "--self-test", action="store_true",
        help=(
            "serve on an ephemeral port, run a concurrent client mix "
            "and a deterministic limiter demonstration, then exit"
        ),
    )

    analyze = commands.add_parser(
        "analyze",
        help="run the determinism & invariant linter (docs/ANALYSIS.md)",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument(
        "--format", dest="output_format",
        choices=["text", "json", "sarif"],
        default="text", help="report format (default text)",
    )
    analyze.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE_ID",
        help="run only this rule (repeatable)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="list available rules and exit",
    )
    analyze.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    analyze.add_argument(
        "--baseline", metavar="FILE",
        help=(
            "suppression baseline to apply (default: "
            "analysis-baseline.json when present)"
        ),
    )
    analyze.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    analyze.add_argument(
        "--write-baseline", metavar="FILE",
        help=(
            "write current findings to FILE as a baseline (entries "
            "need justifications filled in) and exit clean"
        ),
    )
    analyze.add_argument(
        "--changed", metavar="REF",
        help=(
            "restrict findings to modules call-graph-reachable from "
            "files changed vs the given git ref"
        ),
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk incremental cache",
    )
    analyze.add_argument(
        "--cache-dir", metavar="DIR",
        help="incremental cache directory (default .repro-analysis-cache)",
    )
    analyze.add_argument(
        "--jobs", type=int, metavar="N",
        help="analysis worker processes (default: auto)",
    )
    analyze.add_argument(
        "--stats", action="store_true",
        help="print cache hit/miss statistics to stderr",
    )

    store = commands.add_parser(
        "store",
        help="manage on-disk observation stores (docs/STORAGE.md)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    store_migrate = store_commands.add_parser(
        "migrate",
        help="convert a legacy v1 zlib-JSON store to the v2 segment format",
    )
    store_migrate.add_argument("source", help="v1 store directory")
    store_migrate.add_argument("target", help="directory for the v2 store")
    store_migrate.add_argument(
        "--on-error", choices=["raise", "skip"], default="raise",
        help="skip unreadable v1 partitions instead of failing (default raise)",
    )
    store_migrate.add_argument(
        "--compact", type=int, default=None, metavar="FANOUT",
        help="also compact the migrated store with this tier fanout",
    )

    store_compact = store_commands.add_parser(
        "compact",
        help="merge day segments into multi-day runs (tiered compaction)",
    )
    store_compact.add_argument("directory", help="v2 store directory")
    store_compact.add_argument(
        "--fanout", type=int, default=8,
        help="segments per tier before merging into the next (default 8)",
    )

    store_stats = store_commands.add_parser(
        "stats",
        help="print per-partition and total on-disk statistics",
    )
    store_stats.add_argument("directory", help="v2 store directory")
    store_stats.add_argument(
        "--source", help="restrict the listing to one source",
    )

    sketch = commands.add_parser(
        "sketch",
        help="constant-memory streaming summaries (docs/SKETCHES.md)",
    )
    sketch_commands = sketch.add_subparsers(
        dest="sketch_command", required=True
    )

    sketch_stats = sketch_commands.add_parser(
        "stats",
        help="ingest the world and print per-scope sketch statistics",
    )
    _add_world_options(sketch_stats)
    sketch_stats.add_argument(
        "--days", type=int, default=None,
        help="ingest through this calendar day (default: full horizon)",
    )
    sketch_stats.add_argument(
        "--sources", default="com,net,org,nl,alexa",
        help="comma-separated sources to ingest",
    )

    sketch_topk = sketch_commands.add_parser(
        "topk",
        help="ingest the world and print a heavy-hitter ranking",
    )
    _add_world_options(sketch_topk)
    sketch_topk.add_argument(
        "--days", type=int, default=None,
        help="ingest through this calendar day (default: full horizon)",
    )
    sketch_topk.add_argument(
        "--sources", default="com,net,org,nl,alexa",
        help="comma-separated sources to ingest",
    )
    sketch_topk.add_argument(
        "--stream", choices=["providers", "churn", "third-party"],
        default="providers",
        help="which ranking to print (default providers)",
    )
    sketch_topk.add_argument(
        "--k", type=int, default=10,
        help="number of entries to print (default 10)",
    )
    sketch_topk.add_argument(
        "--scope", default=None,
        help="restrict to one scope (default: every ingested scope)",
    )

    faults = commands.add_parser(
        "faults",
        help="inspect the fault-injection harness (docs/ROBUSTNESS.md)",
    )
    faults.add_argument(
        "--list-sites", action="store_true",
        help="list injection sites and their kinds (the default)",
    )
    faults.add_argument(
        "--example-plan", action="store_true",
        help="print an example fault plan JSON for --fault-plan",
    )

    return parser


# -- command implementations ---------------------------------------------------


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.reporting import figures as fig

    wanted = set(args.artifact or ["all"])
    if "all" in wanted:
        wanted = set(ARTIFACTS)
    fault_plan = None
    if getattr(args, "fault_plan", None):
        from repro.faults.plan import FaultPlan

        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as error:
            print(
                f"error: cannot load fault plan {args.fault_plan}: {error}",
                file=sys.stderr,
            )
            return 2
    backend = None
    if getattr(args, "backend", None):
        from repro.parallel.backend import BackendError, resolve_backend

        try:
            backend = resolve_backend(
                args.backend,
                workers=args.workers,
                shard_count=args.shard_count,
            )
        except BackendError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    world = _build_world(args)
    study = AdoptionStudy(world, fault_plan=fault_plan)
    results = study.run(
        parallel=args.workers is not None or backend is not None,
        workers=args.workers,
        shard_count=args.shard_count,
        backend=backend,
    )
    quarantined = results.quarantined_scopes
    renderers = {
        "table1": lambda: fig.render_table1(results),
        "table2": lambda: fig.render_table2(
            study.derive_table2(), reference=SignatureCatalog.paper_table2()
        ),
        "fig2": lambda: fig.render_figure2(results),
        "fig3": lambda: fig.render_figure3(results),
        "fig4": lambda: fig.render_figure4(results),
        "fig5": lambda: fig.render_figure5(results),
        "fig6": lambda: fig.render_figure6(results),
        "fig7": lambda: fig.render_figure7(results),
        "fig8": lambda: fig.render_figure8(results),
        "anomalies": lambda: fig.render_attributions(results, limit=30),
        "exposure": lambda: render_exposure(
            analyze_exposure(results.detection_gtld)
        ),
    }
    skipped = []
    for name in ARTIFACTS:
        if name not in wanted:
            continue
        if any(
            scope in quarantined
            for scope in ARTIFACT_SCOPES.get(name, ())
        ):
            skipped.append(name)
            continue
        print(renderers[name]())
        print()
    for name in skipped:
        scopes = ", ".join(
            scope for scope in ARTIFACT_SCOPES[name] if scope in quarantined
        )
        print(f";; {name}: skipped (scope {scopes} quarantined)")
    if args.output:
        from repro.reporting.export import export_study

        exportable = [
            name for name in wanted
            if name != "table2" and name not in skipped
        ]
        written = export_study(results, args.output, artifacts=exportable)
        print(f";; wrote {len(written)} files to {args.output}")
    if results.fault_log is not None:
        log = results.fault_log.to_dict()
        print(
            ";; faults: "
            f"{results.fault_log.injections()} injected, "
            f"retries {sum(log['retries'].values())} "
            f"({log['backoff_ticks']} backoff ticks), "
            f"dropped {sum(log['dropped'].values())}, "
            f"shards retried {log['shards_retried']}"
        )
        for scope, reason in sorted(quarantined.items()):
            print(f";; quarantined {scope}: {reason}")
    return 0


def _cmd_resolve(args: argparse.Namespace) -> int:
    world = _build_world(args)
    qname = DomainName.from_text(args.name)
    apex = qname.sld()
    target = apex.to_text() if apex is not None else args.name
    network, roots = world.materialize_dns(args.day, [target])
    resolver = IterativeResolver(network, roots)
    try:
        result = resolver.resolve(qname, RRType.from_text(args.rrtype))
    except ResolutionError as error:
        print(f";; resolution failed: {error}")
        return 1
    print(f";; day {args.day}, status {result.rcode.name}, "
          f"{result.queries_sent} queries")
    print(";; ANSWER SECTION:")
    for record in result.answers:
        print(record.to_text())
    if result.authority:
        print(";; AUTHORITY SECTION:")
        for record in result.authority:
            print(record.to_text())
    return 0 if result.answers else 1


def _cmd_zonefile(args: argparse.Namespace) -> int:
    world = _build_world(args)
    feed = ZoneFeed(world)
    if args.tld == "alexa":
        listing = feed.alexa_listing(args.day)
    else:
        try:
            listing = feed.listing(args.tld, args.day)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    print(f"; zone {listing.tld} day {listing.day}: "
          f"{len(listing)} names")
    for name in sorted(listing.names)[: args.limit]:
        print(name)
    if len(listing) > args.limit:
        print(f"; ... {len(listing) - args.limit} more")
    return 0


def _cmd_pfx2as(args: argparse.Namespace) -> int:
    world = _build_world(args)
    snapshot = world.pfx2as_at(args.day)
    if args.lookup:
        origins = snapshot.lookup(args.lookup)
        prefix = snapshot.lookup_prefix(args.lookup)
        if not origins:
            print(f"{args.lookup}: unrouted")
            return 1
        names = ", ".join(
            f"AS{asn} ({world.as_registry.name_of(asn)})"
            for asn in sorted(origins)
        )
        print(f"{args.lookup}: {prefix} → {names}")
        return 0
    lines = snapshot.to_text().splitlines()
    for line in lines[: args.limit]:
        print(line)
    if len(lines) > args.limit:
        print(f"# ... {len(lines) - args.limit} more entries")
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    world = _build_world(args)
    study = AdoptionStudy(world)
    try:
        fingerprints = study.derive_table2(day=args.day)
        result = fingerprints[args.provider]
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{result.provider} (after {result.iterations} iterations)")
    print(f"  ASNs       : {sorted(result.asns)}")
    print(f"  CNAME SLDs : {sorted(result.cname_slds) or '—'}")
    print(f"  NS SLDs    : {sorted(result.ns_slds) or '—'}")
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.measurement.scheduler import ClusterManager

    world = _build_world(args)
    manager = ClusterManager(world)
    try:
        rows = manager.measure_day(args.source, args.day)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    written = manager.store.save(args.output)
    stats = manager.store.partition_stats(args.source, args.day)
    print(
        f"measured {len(rows)} domains "
        f"({stats.data_points} data points, "
        f"{stats.encoded_bytes} encoded bytes); "
        f"wrote {len(written)} files to {args.output}"
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import os

    from repro.measurement.scheduler import ALL_SOURCES, PartitionFeed
    from repro.stream import (
        QueryAPI,
        StreamEngine,
        load_checkpoint,
        save_checkpoint,
    )

    sources = tuple(s for s in args.sources.split(",") if s)
    unknown = set(sources) - set(ALL_SOURCES)
    if unknown:
        print(f"error: unknown sources {sorted(unknown)}", file=sys.stderr)
        return 1

    world = _build_world(args)
    feed = PartitionFeed(world, sources)
    if args.resume and args.checkpoint and os.path.exists(args.checkpoint):
        engine = load_checkpoint(args.checkpoint)
        resumed_from = [
            (source, engine.resume_day(source)) for source in sources
        ]
        print(
            ";; resumed from "
            + ", ".join(f"{source}@{day}" for source, day in resumed_from)
        )
        start = min(
            day for _, day in resumed_from if day is not None
        )
    else:
        engine = StreamEngine(
            world.horizon, sources=sources, windows=feed.windows()
        )
        start = min(window[0] for window in feed.windows().values())

    end = world.horizon if args.days is None else min(args.days, world.horizon)
    api = QueryAPI(engine)
    last_day = None
    for partition in feed.days(start=start, end=end):
        if partition.day != last_day:
            if last_day is not None:
                days_done = last_day + 1
                if args.interval and days_done % args.interval == 0:
                    _print_stream_snapshots(api, engine, args.json)
                if (
                    args.checkpoint
                    and args.checkpoint_every
                    and days_done % args.checkpoint_every == 0
                ):
                    save_checkpoint(engine, args.checkpoint)
            last_day = partition.day
        engine.ingest(partition, on_duplicate="skip")

    print(
        f";; tailed through day {last_day} "
        f"({engine.partitions_applied} partitions applied)"
    )
    _print_stream_snapshots(api, engine, args.json)
    for scope in engine.scope_names:
        try:
            growth = engine.growth(scope)
        except ValueError:
            continue
        for label, series in growth.items():
            try:
                factor = series.growth_factor
            except ValueError:
                continue
            print(f";; {label}: {factor:.2f}x over the ingested window")
    if args.checkpoint:
        written = save_checkpoint(engine, args.checkpoint)
        print(f";; checkpoint: {args.checkpoint} ({written} bytes)")
    return 0


def _print_stream_snapshots(api, engine, as_json: bool = False) -> None:
    from repro.reporting.figures import render_stream_counters
    from repro.serve.protocol import canonical_json

    for scope in engine.scope_names:
        snapshot = api.snapshot(scope)
        if snapshot.day is None:
            continue
        if as_json:
            print(canonical_json(snapshot.to_dict()))
            continue
        print(
            render_stream_counters(
                snapshot, engine.scope(scope).any_series()
            )
        )
        print()


def _sketch_engine(args: argparse.Namespace):
    """Build the world and ingest it with the sketch plane enabled."""
    from repro.measurement.scheduler import ALL_SOURCES, PartitionFeed
    from repro.sketch import SketchConfig
    from repro.stream import StreamEngine

    sources = tuple(s for s in args.sources.split(",") if s)
    unknown = set(sources) - set(ALL_SOURCES)
    if unknown:
        print(f"error: unknown sources {sorted(unknown)}", file=sys.stderr)
        return None

    world = _build_world(args)
    feed = PartitionFeed(world, sources)
    engine = StreamEngine(
        world.horizon,
        sources=sources,
        windows=feed.windows(),
        sketches=SketchConfig(),
    )
    start = min(window[0] for window in feed.windows().values())
    end = world.horizon if args.days is None else min(args.days, world.horizon)
    for partition in feed.days(start=start, end=end):
        engine.ingest(partition, on_duplicate="skip")
    return engine


def _sketch_scopes(engine, wanted: Optional[str]):
    plane = engine.sketches
    assert plane is not None
    names = [wanted] if wanted else sorted(plane.scopes)
    for name in names:
        yield name, plane.scope(name)


def _cmd_sketch(args: argparse.Namespace) -> int:
    from repro.serve.protocol import canonical_json

    engine = _sketch_engine(args)
    if engine is None:
        return 1
    plane = engine.sketches
    wanted = getattr(args, "scope", None)
    if wanted and wanted not in plane.scopes:
        print(
            f"error: unknown scope {wanted!r}; "
            f"expected one of {sorted(plane.scopes)}",
            file=sys.stderr,
        )
        return 1
    if args.sketch_command == "stats":
        for name, scope in _sketch_scopes(engine, None):
            if not scope.rows_observed:
                continue
            print(canonical_json({
                "scope": name,
                "rows_observed": scope.rows_observed,
                "matched_rows": scope.matched_rows,
                "providers": scope.provider_names(),
                "distinct_domains_estimate": round(
                    scope.distinct_domains(), 1
                ),
                "distinct_relative_error": round(
                    scope.domains.relative_error, 4
                ),
                "adoption_error_bound": round(
                    scope.adoption_error_bound(), 1
                ),
                "topk_exact": scope.provider_topk.exact,
            }))
        print(canonical_json({
            "plane_digest": plane.state_digest(),
        }))
        return 0
    for name, scope in _sketch_scopes(engine, wanted):
        if not scope.rows_observed:
            continue
        if args.stream == "churn":
            entries = [
                {"key": key, "estimate": joins}
                for key, joins in scope.top_churn(args.k)
            ]
        else:
            ranking = (
                scope.top_providers(args.k)
                if args.stream == "providers"
                else scope.top_third_parties(args.k)
            )
            entries = [
                {"key": key, "estimate": count, "error": error}
                for key, count, error in ranking
            ]
        print(canonical_json({
            "scope": name,
            "stream": args.stream,
            "k": args.k,
            "ranking": entries,
        }))
    return 0


def _build_serve_guard(args: argparse.Namespace):
    from repro.serve import (
        AdmissionGuard,
        SlidingWindowLimiter,
        TokenBucketLimiter,
    )

    if args.strategy == "none":
        return None
    if args.strategy == "token":
        strategy = TokenBucketLimiter(
            capacity=args.limit,
            ticks_per_token=max(1, args.window // max(1, args.limit)),
        )
    else:
        strategy = SlidingWindowLimiter(
            limit=args.limit, window=args.window
        )
    return AdmissionGuard(strategy)


def _serve_self_test(args: argparse.Namespace, swapper) -> int:
    """Deterministic serve demo: client mix + limiter behaviour."""
    from repro.serve import (
        AdmissionGuard,
        ServeDispatcher,
        SlidingWindowLimiter,
        ThreadedServer,
        request_mix,
    )
    from repro.serve.protocol import Request

    # Round-trip phase runs unguarded (all local connections share one
    # peer key, so any real limit would throttle the test itself); the
    # limiter phase below exercises --limit on its own dispatcher.
    index = swapper.current_index()
    dispatcher = ServeDispatcher(swapper.current_index)
    requests = [("health", {})] + [
        ("aggregate", {"scope": scope}) for scope in index.scope_names
    ] * 3 + [("snapshot", {})]
    with ThreadedServer(dispatcher) as (host, port):
        responses = request_mix(host, port, requests, connections=4)
    succeeded = sum(1 for response in responses if response.get("ok"))
    print(
        f";; self-test: {succeeded}/{len(responses)} responses ok "
        f"over 4 connections"
    )
    if succeeded != len(responses):
        return 1

    # Limiter demonstration at the dispatcher level: logical ticks, one
    # per request, so the outcome is exact and replayable.
    limit = max(1, min(args.limit, 10))
    demo = ServeDispatcher(
        swapper.current_index,
        guard=AdmissionGuard(
            SlidingWindowLimiter(limit=limit, window=10 * limit)
        ),
    )
    burst_total = 3 * limit
    burst_ok = sum(
        1
        for _ in range(burst_total)
        if demo.handle_request(
            Request(op="snapshot", params={}, id=None), "burster"
        ).get("ok")
    )
    steady_ok = demo.handle_request(
        Request(op="snapshot", params={}, id=None), "steady"
    ).get("ok")
    print(
        f";; limiter: burst client {burst_ok}/{burst_total} admitted, "
        f"compliant client {'admitted' if steady_ok else 'denied'}"
    )
    if burst_ok != limit or not steady_ok:
        return 1
    print(";; serve self-test ok")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.measurement.scheduler import ALL_SOURCES, PartitionFeed
    from repro.serve import (
        ServeDispatcher,
        SnapshotSwapper,
        ThreadedServer,
    )
    from repro.sketch import SketchConfig
    from repro.stream import StreamEngine

    world = _build_world(args)
    feed = PartitionFeed(world, tuple(ALL_SOURCES))
    engine = StreamEngine(
        world.horizon, windows=feed.windows(), sketches=SketchConfig()
    )
    swapper = SnapshotSwapper(engine)
    swapper.attach()

    start = min(window[0] for window in feed.windows().values())
    end = (
        world.horizon
        if args.days is None
        else min(args.days, world.horizon)
    )
    for partition in feed.days(start=start, end=end):
        engine.ingest(partition, on_duplicate="skip")
    index = swapper.current_index()
    days = ", ".join(
        f"{name}@{index.scope(name).day}" for name in index.scope_names
    )
    print(
        f";; ingested {engine.partitions_applied} partitions "
        f"({days}); index version {index.version}"
    )

    if args.self_test:
        return _serve_self_test(args, swapper)

    # Live serving uses millisecond ticks injected at this edge; the
    # decision path below it stays clock-free (see docs/SERVING.md).
    dispatcher = ServeDispatcher(
        swapper.current_index,
        guard=_build_serve_guard(args),
        tick_source=lambda: time.monotonic_ns() // 1_000_000,
    )
    server = ThreadedServer(dispatcher, host=args.host, port=args.port)
    host, port = server.start()
    print(f";; serving on {host}:{port} (Ctrl-C to drain and stop)")
    try:
        while True:
            time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(
        f";; drained: {dispatcher.requests_handled} requests handled"
    )
    return 0


def _changed_module_keys(ref: str, root: str) -> "set":
    """Module keys of files changed versus git *ref*."""
    import subprocess

    from repro.analysis.project import module_key

    completed = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        capture_output=True,
        text=True,
        cwd=root,
        check=True,
    )
    keys = set()
    for line in completed.stdout.splitlines():
        name = line.strip()
        if name.endswith(".py"):
            keys.add(module_key(os.path.join(root, name), root))
    return keys


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import render_json, render_text
    from repro.analysis.baseline import (
        BaselineError,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.cache import DEFAULT_CACHE_DIR, AnalysisCache
    from repro.analysis.project import (
        ProjectAnalyzer,
        all_rule_descriptions,
    )
    from repro.analysis.sarif import render_sarif

    descriptions = all_rule_descriptions()
    if args.list_rules:
        for rule_id, summary in descriptions:
            if rule_id != "parse-error":
                print(f"{rule_id}: {summary}")
        return 0
    rule_filter = None
    if args.rules:
        known = {rule_id for rule_id, _ in descriptions}
        unknown = [rule_id for rule_id in args.rules if rule_id not in known]
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(sorted(unknown))}; "
                f"see --list-rules",
                file=sys.stderr,
            )
            return 2
        rule_filter = set(args.rules)
    cache = None
    if not args.no_cache:
        cache = AnalysisCache(args.cache_dir or DEFAULT_CACHE_DIR)
    analyzer = ProjectAnalyzer(cache=cache, jobs=args.jobs)
    changed = None
    if args.changed:
        try:
            changed = _changed_module_keys(args.changed, os.getcwd())
        except Exception as error:  # subprocess/git failures
            print(
                f"error: cannot diff against {args.changed!r}: {error}",
                file=sys.stderr,
            )
            return 2
    try:
        result = analyzer.analyze_paths(
            args.paths, rule_filter=rule_filter, changed=changed
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.stats and result.cache_stats:
        print(f"cache: {result.cache_stats}", file=sys.stderr)
    if args.write_baseline:
        write_baseline(result.findings, args.write_baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}; fill in the justifications"
        )
        return 0
    stale = []
    if not args.no_baseline:
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(
            "analysis-baseline.json"
        ):
            baseline_path = "analysis-baseline.json"
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except (BaselineError, OSError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            match = baseline.apply(result.findings)
            result.findings = match.new_findings
            stale = match.stale_entries
    if args.output_format == "json":
        report = render_json(result)
    elif args.output_format == "sarif":
        report = render_sarif(result, descriptions)
    else:
        report = render_text(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    for entry in stale:
        print(
            f"warning: stale baseline entry: {entry.rule} at "
            f"{entry.path} no longer matches any finding",
            file=sys.stderr,
        )
    return 0 if result.clean else 1


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import SegmentStore, StorageError
    from repro.store.migrate import migrate_store

    try:
        if args.store_command == "migrate":
            report = migrate_store(
                args.source,
                args.target,
                on_error=args.on_error,
                compact_fanout=args.compact,
            )
            print(
                f"migrated {report.partitions} partitions "
                f"({report.rows} rows) into {report.segments} segment(s): "
                f"{report.source_bytes} -> {report.target_bytes} bytes"
            )
            for source, day, reason in report.skipped:
                print(f";; skipped {source}/{day}: {reason}")
            return 0
        if args.store_command == "compact":
            with SegmentStore(args.directory) as store:
                written = store.compact(fanout=args.fanout)
                stats = store.total_stats()
            if not written:
                print("nothing to compact")
                return 0
            print(f"compacted into {len(written)} segment(s):")
            for path in written:
                print(f"  {path}")
            print(f"store now {stats.encoded_bytes} bytes on disk")
            return 0
        with SegmentStore(args.directory) as store:
            keys = [
                key for key in store.partitions()
                if args.source is None or key[0] == args.source
            ]
            if args.source is not None and not keys:
                print(
                    f"error: no partitions for source {args.source!r}",
                    file=sys.stderr,
                )
                return 1
            print(f"{'SOURCE':<8} {'DAY':>5} {'ROWS':>8} "
                  f"{'POINTS':>9} {'BYTES':>10}")
            for source, day in keys:
                stats = store.partition_stats(source, day)
                print(
                    f"{source:<8} {day:>5} {stats.rows:>8} "
                    f"{stats.data_points:>9} {stats.encoded_bytes:>10}"
                )
            total = store.total_stats(args.source)
            generations = sorted(
                {meta.generation for meta in store.manifest.segments}
            )
        print(
            f"total: {total.rows} rows, {total.data_points} data points, "
            f"{total.encoded_bytes} bytes "
            f"(generations {', '.join(map(str, generations))})"
        )
        return 0
    except StorageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec

    if args.example_plan:
        plan = FaultPlan(
            seed=2016,
            specs=(
                FaultSpec("feed.partition", "transient", rate=0.05),
                FaultSpec("prober.observe", "transient", rate=0.01),
                FaultSpec(
                    "study.detect", "poison", keys=("nl",), times=1
                ),
            ),
        )
        print(plan.to_json())
        return 0
    width = max(len(site) for site in FAULT_SITES)
    print(f"{'SITE':<{width}}  KINDS")
    for site in sorted(FAULT_SITES):
        description, kinds = FAULT_SITES[site]
        print(f"{site:<{width}}  {', '.join(kinds)}")
        print(f"{'':<{width}}    {description}")
    return 0


_COMMANDS = {
    "study": _cmd_study,
    "resolve": _cmd_resolve,
    "zonefile": _cmd_zonefile,
    "pfx2as": _cmd_pfx2as,
    "fingerprint": _cmd_fingerprint,
    "measure": _cmd_measure,
    "stream": _cmd_stream,
    "serve": _cmd_serve,
    "analyze": _cmd_analyze,
    "store": _cmd_store,
    "sketch": _cmd_sketch,
    "faults": _cmd_faults,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
