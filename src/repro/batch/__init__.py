"""Columnar observation plane.

:class:`ObservationBatch` is the batch-first unit of data flow across
the measurement, enrichment, detection, streaming, and parallel layers:
parallel columns per field, interned string pools for domains / TLDs /
NS names / CNAMEs, a packed-int address pool shared with the LPM cache,
and per-row sorted ASN tuples. Row-shaped call sites keep working
through lazy :class:`repro.measurement.snapshot.DomainObservation` views
(``batch.row(i)``). See ``docs/DATA_MODEL.md``.
"""

from repro.batch.batch import BatchBuilder, BatchRows, ObservationBatch
from repro.batch.columns import AddressPool, StringPool

__all__ = [
    "AddressPool",
    "BatchBuilder",
    "BatchRows",
    "ObservationBatch",
    "StringPool",
]
