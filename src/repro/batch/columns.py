"""Interning pools backing the columnar observation plane.

A pool maps each distinct value to a small integer id, once; batch
columns then hold ids (or tuples of ids) instead of repeated Python
objects. Ids are *pool-relative*: they are dense, assigned in first-seen
order, and only meaningful against the pool that issued them — never use
them as keys in any structure that outlives the pool (checkpoints,
persistent caches). Batches sliced from the same builder share pools, so
their ids are mutually comparable; :meth:`ObservationBatch.compact`
re-interns into fresh pools when a batch must travel alone (e.g. across
a fork boundary).
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Tuple, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


class StringPool:
    """Dense first-seen-order interning of strings."""

    __slots__ = ("_ids", "_values", "_tuple_memo")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._values: List[str] = []
        self._tuple_memo: Dict[Tuple[str, ...], Tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value: str) -> int:
        """The id of *value*, allocating one on first sight."""
        found = self._ids.get(value)
        if found is not None:
            return found
        index = len(self._values)
        self._ids[value] = index
        self._values.append(value)
        return index

    def intern_all(self, values: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.intern(value) for value in values)

    def intern_tuple(self, values: Iterable[str]) -> Tuple[int, ...]:
        """:meth:`intern_all`, memoized on the whole value tuple.

        NS sets and CNAME chains repeat massively (mass hosters share
        them across domains, domains repeat them across days), so the
        hot batch-building paths pay one tuple hash instead of one dict
        probe per element.
        """
        key = tuple(values)
        found = self._tuple_memo.get(key)
        if found is None:
            found = tuple(self.intern(value) for value in key)
            self._tuple_memo[key] = found
        return found

    def value(self, index: int) -> str:
        return self._values[index]

    def values(self, indexes: Iterable[int]) -> Tuple[str, ...]:
        table = self._values
        return tuple(table[index] for index in indexes)

    def lookup(self, value: str) -> Optional[int]:
        """The id of *value* if already interned, else ``None``."""
        return self._ids.get(value)


class AddressPool:
    """Interned IP address texts with lazily parsed / packed forms.

    Address *texts* are kept verbatim (round-trips must be byte-exact —
    ``"192.0.2.1"`` must come back as ``"192.0.2.1"``, not a normalised
    respelling); the parsed :mod:`ipaddress` object and its packed
    ``(version, int)`` key are derived lazily, once per distinct
    address, for the longest-prefix-match path.
    """

    __slots__ = ("_ids", "_texts", "_parsed", "_tuple_memo")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._texts: List[str] = []
        self._parsed: List[Optional[IPAddress]] = []
        self._tuple_memo: Dict[Tuple[str, ...], Tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self._texts)

    def intern(self, text: str) -> int:
        found = self._ids.get(text)
        if found is not None:
            return found
        index = len(self._texts)
        self._ids[text] = index
        self._texts.append(text)
        self._parsed.append(None)
        return index

    def intern_all(self, texts: Iterable[str]) -> Tuple[int, ...]:
        return tuple(self.intern(text) for text in texts)

    def intern_tuple(self, texts: Iterable[str]) -> Tuple[int, ...]:
        """:meth:`intern_all`, memoized on the whole text tuple (address
        sets repeat across days just like NS sets do)."""
        key = tuple(texts)
        found = self._tuple_memo.get(key)
        if found is None:
            found = tuple(self.intern(text) for text in key)
            self._tuple_memo[key] = found
        return found

    def text(self, index: int) -> str:
        return self._texts[index]

    def texts(self, indexes: Iterable[int]) -> Tuple[str, ...]:
        table = self._texts
        return tuple(table[index] for index in indexes)

    def parsed(self, index: int) -> IPAddress:
        """The :mod:`ipaddress` object for id *index* (parsed once)."""
        address = self._parsed[index]
        if address is None:
            address = ipaddress.ip_address(self._texts[index])
            self._parsed[index] = address
        return address

    def packed(self, index: int) -> Tuple[int, int]:
        """The ``(version, integer)`` key of id *index* — the same key
        the :class:`repro.routing.prefixtrie.PrefixTrie` LPM cache uses.
        """
        address = self.parsed(index)
        return (address.version, int(address))
