"""The columnar :class:`ObservationBatch` and its row-view adapters.

One batch holds many domain-day observations as parallel columns:
integer ids into shared :class:`~repro.batch.columns.StringPool` /
:class:`~repro.batch.columns.AddressPool` pools instead of per-row boxed
dataclasses. ``batch.row(i)`` materialises the classic
:class:`~repro.measurement.snapshot.DomainObservation` on demand — the
sanctioned lazy row view — so every existing row-shaped call site keeps
working while the hot paths stay column-wise.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    overload,
)

from repro.batch.columns import AddressPool, StringPool
from repro.measurement.snapshot import DomainObservation

#: Per-partition match-cache key: (ns name ids, cname ids, sorted ASNs).
#: Pool-relative — never persist it (ids are not stable across pools).
MatchKey = Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]


class ObservationBatch:
    """Columnar storage for a set of domain-day observations.

    Columns are parallel lists, one entry per row: scalar name ids for
    ``domains``/``tlds``, int days, tuples of name ids for
    ``ns_names``/``www_cnames``, tuples of address ids for the four
    address columns, and sorted int tuples for ``asns`` (sorted so the
    column is deterministic and ``frozenset`` round-trips exactly).
    """

    __slots__ = (
        "names",
        "addresses",
        "days",
        "domains",
        "tlds",
        "ns_names",
        "www_cnames",
        "apex_addrs",
        "www_addrs",
        "apex_addrs6",
        "www_addrs6",
        "asns",
    )

    def __init__(
        self,
        names: Optional[StringPool] = None,
        addresses: Optional[AddressPool] = None,
    ) -> None:
        self.names = names if names is not None else StringPool()
        self.addresses = (
            addresses if addresses is not None else AddressPool()
        )
        self.days: List[int] = []
        self.domains: List[int] = []
        self.tlds: List[int] = []
        self.ns_names: List[Tuple[int, ...]] = []
        self.www_cnames: List[Tuple[int, ...]] = []
        self.apex_addrs: List[Tuple[int, ...]] = []
        self.www_addrs: List[Tuple[int, ...]] = []
        self.apex_addrs6: List[Tuple[int, ...]] = []
        self.www_addrs6: List[Tuple[int, ...]] = []
        self.asns: List[Tuple[int, ...]] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[DomainObservation],
        names: Optional[StringPool] = None,
        addresses: Optional[AddressPool] = None,
    ) -> "ObservationBatch":
        batch = cls(names=names, addresses=addresses)
        for row in rows:
            batch.append_row(row)
        return batch

    def append_row(self, row: DomainObservation) -> None:
        names = self.names
        addresses = self.addresses
        self.append_ids(
            day=row.day,
            domain=names.intern(row.domain),
            tld=names.intern(row.tld),
            ns_names=names.intern_tuple(row.ns_names),
            www_cnames=names.intern_tuple(row.www_cnames),
            apex_addrs=addresses.intern_tuple(row.apex_addrs),
            www_addrs=addresses.intern_tuple(row.www_addrs),
            apex_addrs6=addresses.intern_tuple(row.apex_addrs6),
            www_addrs6=addresses.intern_tuple(row.www_addrs6),
            asns=tuple(sorted(row.asns)),
        )

    def append_fields(
        self,
        day: int,
        domain: str,
        tld: str,
        ns_names: Sequence[str],
        apex_addrs: Sequence[str],
        www_cnames: Sequence[str] = (),
        www_addrs: Sequence[str] = (),
        apex_addrs6: Sequence[str] = (),
        www_addrs6: Sequence[str] = (),
        asns: Iterable[int] = (),
    ) -> None:
        """Append one row from raw field values (no boxing required)."""
        names = self.names
        addresses = self.addresses
        self.append_ids(
            day=day,
            domain=names.intern(domain),
            tld=names.intern(tld),
            ns_names=names.intern_tuple(ns_names),
            www_cnames=names.intern_tuple(www_cnames),
            apex_addrs=addresses.intern_tuple(apex_addrs),
            www_addrs=addresses.intern_tuple(www_addrs),
            apex_addrs6=addresses.intern_tuple(apex_addrs6),
            www_addrs6=addresses.intern_tuple(www_addrs6),
            asns=tuple(sorted(set(asns))),
        )

    def append_ids(
        self,
        day: int,
        domain: int,
        tld: int,
        ns_names: Tuple[int, ...],
        www_cnames: Tuple[int, ...],
        apex_addrs: Tuple[int, ...],
        www_addrs: Tuple[int, ...],
        apex_addrs6: Tuple[int, ...],
        www_addrs6: Tuple[int, ...],
        asns: Tuple[int, ...],
    ) -> None:
        """Append one fully interned row (ids must come from our pools,
        and *asns* must already be sorted and duplicate-free)."""
        self.days.append(day)
        self.domains.append(domain)
        self.tlds.append(tld)
        self.ns_names.append(ns_names)
        self.www_cnames.append(www_cnames)
        self.apex_addrs.append(apex_addrs)
        self.www_addrs.append(www_addrs)
        self.apex_addrs6.append(apex_addrs6)
        self.www_addrs6.append(www_addrs6)
        self.asns.append(asns)

    # -- row views ----------------------------------------------------------

    def row(self, index: int) -> DomainObservation:
        """Materialise row *index* as a classic boxed observation (the
        sanctioned lazy row view — everything else stays columnar)."""
        names = self.names
        addresses = self.addresses
        return DomainObservation(
            day=self.days[index],
            domain=names.value(self.domains[index]),
            tld=names.value(self.tlds[index]),
            ns_names=names.values(self.ns_names[index]),
            apex_addrs=addresses.texts(self.apex_addrs[index]),
            www_cnames=names.values(self.www_cnames[index]),
            www_addrs=addresses.texts(self.www_addrs[index]),
            apex_addrs6=addresses.texts(self.apex_addrs6[index]),
            www_addrs6=addresses.texts(self.www_addrs6[index]),
            asns=frozenset(self.asns[index]),
        )

    def rows(self) -> List[DomainObservation]:
        return [self.row(index) for index in range(len(self.days))]

    def iter_rows(self) -> Iterator[DomainObservation]:
        for index in range(len(self.days)):
            yield self.row(index)

    def __iter__(self) -> Iterator[DomainObservation]:
        return self.iter_rows()

    def __len__(self) -> int:
        return len(self.days)

    @overload
    def __getitem__(self, index: int) -> DomainObservation: ...

    @overload
    def __getitem__(self, index: slice) -> "ObservationBatch": ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[DomainObservation, "ObservationBatch"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self.days))
            if step != 1:
                raise ValueError("batch slices must be contiguous")
            return self.slice(start, stop)
        return self.row(index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ObservationBatch):
            return self.rows() == other.rows()
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ObservationBatch is unhashable (mutable columns)")

    # -- columnar accessors -------------------------------------------------

    def domain_text(self, index: int) -> str:
        return self.names.value(self.domains[index])

    def tld_text(self, index: int) -> str:
        return self.names.value(self.tlds[index])

    def ns_texts(self, index: int) -> Tuple[str, ...]:
        return self.names.values(self.ns_names[index])

    def cname_texts(self, index: int) -> Tuple[str, ...]:
        return self.names.values(self.www_cnames[index])

    def asn_set(self, index: int) -> FrozenSet[int]:
        return frozenset(self.asns[index])

    def match_key(self, index: int) -> MatchKey:
        """The pool-relative signature-match key of row *index*: the
        catalog reads only NS names, CNAMEs, and ASNs, so rows sharing
        this key share their match outcome within one batch."""
        return (
            self.ns_names[index],
            self.www_cnames[index],
            self.asns[index],
        )

    def row_address_ids(self, index: int) -> Tuple[int, ...]:
        """Deduplicated address ids of row *index*, in the apex → www →
        apex6 → www6 first-seen order :meth:`DomainObservation.
        all_addresses` uses."""
        return tuple(
            dict.fromkeys(
                self.apex_addrs[index]
                + self.www_addrs[index]
                + self.apex_addrs6[index]
                + self.www_addrs6[index]
            )
        )

    def unique_address_ids(self) -> List[int]:
        """Every distinct address id referenced by this batch, in
        first-row-seen order (the enrichment dedup pool)."""
        seen: Dict[int, None] = {}
        for index in range(len(self.days)):
            for address_id in self.row_address_ids(index):
                seen.setdefault(address_id, None)
        return list(seen)

    def with_asns(
        self, asns: Sequence[Tuple[int, ...]]
    ) -> "ObservationBatch":
        """A shallow sibling batch with the ASN column replaced (pools
        and all other columns shared) — the enrichment output shape."""
        if len(asns) != len(self.days):
            raise ValueError("asns column length mismatch")
        sibling = ObservationBatch(
            names=self.names, addresses=self.addresses
        )
        sibling.days = self.days
        sibling.domains = self.domains
        sibling.tlds = self.tlds
        sibling.ns_names = self.ns_names
        sibling.www_cnames = self.www_cnames
        sibling.apex_addrs = self.apex_addrs
        sibling.www_addrs = self.www_addrs
        sibling.apex_addrs6 = self.apex_addrs6
        sibling.www_addrs6 = self.www_addrs6
        sibling.asns = list(asns)
        return sibling

    # -- restructuring ------------------------------------------------------

    def slice(self, start: int, stop: int) -> "ObservationBatch":
        """Rows ``[start, stop)`` as a sub-batch sharing our pools."""
        part = ObservationBatch(names=self.names, addresses=self.addresses)
        part.days = self.days[start:stop]
        part.domains = self.domains[start:stop]
        part.tlds = self.tlds[start:stop]
        part.ns_names = self.ns_names[start:stop]
        part.www_cnames = self.www_cnames[start:stop]
        part.apex_addrs = self.apex_addrs[start:stop]
        part.www_addrs = self.www_addrs[start:stop]
        part.apex_addrs6 = self.apex_addrs6[start:stop]
        part.www_addrs6 = self.www_addrs6[start:stop]
        part.asns = self.asns[start:stop]
        return part

    def take(self, indexes: Sequence[int]) -> "ObservationBatch":
        """The given rows, in order, as a sub-batch sharing our pools.

        The row-selection counterpart of :meth:`slice` — a columnar
        gather, no row boxing — used by sharded passes that keep only
        their hash shard's rows of each partition (e.g. the manifest
        slices of :mod:`repro.store.slices`).
        """
        part = ObservationBatch(names=self.names, addresses=self.addresses)
        part.days = [self.days[i] for i in indexes]
        part.domains = [self.domains[i] for i in indexes]
        part.tlds = [self.tlds[i] for i in indexes]
        part.ns_names = [self.ns_names[i] for i in indexes]
        part.www_cnames = [self.www_cnames[i] for i in indexes]
        part.apex_addrs = [self.apex_addrs[i] for i in indexes]
        part.www_addrs = [self.www_addrs[i] for i in indexes]
        part.apex_addrs6 = [self.apex_addrs6[i] for i in indexes]
        part.www_addrs6 = [self.www_addrs6[i] for i in indexes]
        part.asns = [self.asns[i] for i in indexes]
        return part

    def compact(self) -> "ObservationBatch":
        """Re-intern into fresh pools holding only referenced values.

        Sub-batches share their parent's (possibly huge) pools; compact
        before pickling one across a process boundary so the payload
        carries only the strings its own rows reference.
        """
        names = StringPool()
        addresses = AddressPool()
        old_names = self.names
        old_addresses = self.addresses
        name_map: Dict[int, int] = {}
        address_map: Dict[int, int] = {}

        def remap_name(old_id: int) -> int:
            new_id = name_map.get(old_id)
            if new_id is None:
                new_id = names.intern(old_names.value(old_id))
                name_map[old_id] = new_id
            return new_id

        def remap_address(old_id: int) -> int:
            new_id = address_map.get(old_id)
            if new_id is None:
                new_id = addresses.intern(old_addresses.text(old_id))
                address_map[old_id] = new_id
            return new_id

        out = ObservationBatch(names=names, addresses=addresses)
        for index in range(len(self.days)):
            out.append_ids(
                day=self.days[index],
                domain=remap_name(self.domains[index]),
                tld=remap_name(self.tlds[index]),
                ns_names=tuple(
                    remap_name(i) for i in self.ns_names[index]
                ),
                www_cnames=tuple(
                    remap_name(i) for i in self.www_cnames[index]
                ),
                apex_addrs=tuple(
                    remap_address(i) for i in self.apex_addrs[index]
                ),
                www_addrs=tuple(
                    remap_address(i) for i in self.www_addrs[index]
                ),
                apex_addrs6=tuple(
                    remap_address(i) for i in self.apex_addrs6[index]
                ),
                www_addrs6=tuple(
                    remap_address(i) for i in self.www_addrs6[index]
                ),
                asns=self.asns[index],
            )
        return out

    @classmethod
    def concat(
        cls, parts: Sequence["ObservationBatch"]
    ) -> "ObservationBatch":
        """One batch holding every part's rows, in order.

        Parts sharing pools (siblings of one builder) concatenate by
        column extension; mixed-pool parts fall back to re-interning.
        """
        if not parts:
            return cls()
        first = parts[0]
        shared = all(
            part.names is first.names
            and part.addresses is first.addresses
            for part in parts
        )
        if not shared:
            out = cls()
            for part in parts:
                for row in part.iter_rows():
                    out.append_row(row)
            return out
        out = cls(names=first.names, addresses=first.addresses)
        for part in parts:
            out.days.extend(part.days)
            out.domains.extend(part.domains)
            out.tlds.extend(part.tlds)
            out.ns_names.extend(part.ns_names)
            out.www_cnames.extend(part.www_cnames)
            out.apex_addrs.extend(part.apex_addrs)
            out.www_addrs.extend(part.www_addrs)
            out.apex_addrs6.extend(part.apex_addrs6)
            out.www_addrs6.extend(part.www_addrs6)
            out.asns.extend(part.asns)
        return out


class BatchBuilder:
    """A factory of batches sharing one pair of interning pools.

    Feeds and stores keep one builder per lifetime so every partition
    batch they emit shares pools — domains repeat daily, so interning
    across partitions is where the memory win compounds, and shared
    pools make :meth:`ObservationBatch.concat` a cheap column extend.
    """

    __slots__ = ("names", "addresses")

    def __init__(
        self,
        names: Optional[StringPool] = None,
        addresses: Optional[AddressPool] = None,
    ) -> None:
        self.names = names if names is not None else StringPool()
        self.addresses = (
            addresses if addresses is not None else AddressPool()
        )

    def new_batch(self) -> ObservationBatch:
        return ObservationBatch(
            names=self.names, addresses=self.addresses
        )

    def build(
        self, rows: Iterable[DomainObservation]
    ) -> ObservationBatch:
        return ObservationBatch.from_rows(
            rows, names=self.names, addresses=self.addresses
        )


class BatchRows(Sequence[DomainObservation]):
    """A lazy, list-compatible row view over a whole batch.

    :class:`repro.measurement.scheduler.DayPartition` exposes this as
    ``observations`` so row-shaped consumers (checkpoint codecs, tests
    comparing against ``list(store.rows(...))``) see a sequence that
    materialises rows only on demand and compares equal to the
    equivalent plain list.
    """

    __slots__ = ("_batch",)

    def __init__(self, batch: ObservationBatch) -> None:
        self._batch = batch

    @property
    def batch(self) -> ObservationBatch:
        return self._batch

    def __len__(self) -> int:
        return len(self._batch)

    @overload
    def __getitem__(self, index: int) -> DomainObservation: ...

    @overload
    def __getitem__(
        self, index: slice
    ) -> Sequence[DomainObservation]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[DomainObservation, Sequence[DomainObservation]]:
        if isinstance(index, slice):
            return self._batch.rows()[index]
        return self._batch.row(index)

    def __iter__(self) -> Iterator[DomainObservation]:
        return self._batch.iter_rows()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BatchRows):
            return self._batch.rows() == other._batch.rows()
        if isinstance(other, (list, tuple)):
            return self._batch.rows() == list(other)
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("BatchRows is unhashable (mutable batch)")

    def __repr__(self) -> str:
        return f"BatchRows({len(self)} rows)"
