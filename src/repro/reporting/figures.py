"""One renderer per paper artifact, driven by :class:`StudyResults`."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.fingerprint import FingerprintResult
from repro.core.peaks import PeakStats
from repro.core.pipeline import StudyResults
from repro.core.references import RefType, SignatureCatalog
from repro.reporting.tables import (
    format_bytes,
    format_count,
    render_dict_table,
    render_table,
)
from repro.reporting.textplot import cdf_chart, line_chart, sparkline
from repro.world.timeline import CCTLD_START_DAY, month_label


def _axis(start_day: int, end_day: int):
    return (month_label(start_day), month_label(end_day))


# -- Table 1 -----------------------------------------------------------------


def render_table1(results: StudyResults) -> str:
    """Data set statistics (source, start, days, #SLDs, #DPs, size)."""
    rows = []
    total_slds = 0
    total_dps = 0
    total_bytes = 0
    for row in results.dataset_table:
        rows.append(
            [
                f".{row.source}" if row.source != "alexa" else "Alexa",
                month_label(row.start_day),
                str(row.days),
                format_count(row.slds),
                format_count(row.data_points),
                format_bytes(row.estimated_bytes),
            ]
        )
        total_slds += row.slds
        total_dps += row.data_points
        total_bytes += row.estimated_bytes
    rows.append(
        [
            "Total",
            "",
            "",
            format_count(total_slds),
            format_count(total_dps),
            format_bytes(total_bytes),
        ]
    )
    return render_table(
        ["Source", "start", "days", "#SLDs", "#DPs", "size"],
        rows,
        title="Table 1: Data set",
    )


# -- Table 2 --------------------------------------------------------------------


def render_table2(
    fingerprints: Mapping[str, FingerprintResult],
    reference: Optional[SignatureCatalog] = None,
) -> str:
    """The derived provider references, optionally vs the ground truth."""
    rows = []
    for name in sorted(fingerprints):
        result = fingerprints[name]
        row = {
            "Provider": name,
            "AS number(s)": ", ".join(str(a) for a in sorted(result.asns)),
            "CNAME SLD(s)": ", ".join(sorted(result.cname_slds)) or "—",
            "NS SLD(s)": ", ".join(sorted(result.ns_slds)) or "—",
        }
        if reference is not None:
            truth = reference.get(name)
            exact = (
                truth is not None
                and truth.asns == result.asns
                and truth.cname_slds == result.cname_slds
                and truth.ns_slds == result.ns_slds
            )
            row["matches Table 2"] = "yes" if exact else "no"
        rows.append(row)
    return render_dict_table(
        rows, title="Table 2: derived DPS provider references"
    )


# -- Figure 2 -----------------------------------------------------------------------


def render_figure2(results: StudyResults) -> str:
    """DPS use over time, per TLD and combined."""
    detection = results.detection_gtld
    series: Dict[str, Sequence[float]] = {
        tld: detection.any_use_by_tld.get(tld, [])
        for tld in ("com", "net", "org")
    }
    series["Combined"] = detection.any_use_combined
    chart = line_chart(
        series,
        x_labels=_axis(0, results.horizon - 1),
    )
    peak_day = max(
        range(results.horizon),
        key=detection.any_use_combined.__getitem__,
    )
    note = (
        f"peak: {format_count(detection.any_use_combined[peak_day])} "
        f"SLDs on day {peak_day} ({month_label(peak_day)})"
    )
    return f"Figure 2: DPS use and zone breakdown\n{chart}\n{note}"


# -- Figure 3 --------------------------------------------------------------------------


def render_figure3(results: StudyResults) -> str:
    """Per-provider use with AS/CNAME/NS method breakdown."""
    detection = results.detection_gtld
    blocks: List[str] = ["Figure 3: DPS use per provider and method"]
    header = ["Provider", "start", "end", "max", "trend"]
    rows = []
    for name, series in sorted(detection.providers.items()):
        rows.append(
            [
                name,
                format_count(series.total[0]),
                format_count(series.total[-1]),
                format_count(max(series.total)),
                sparkline(series.total[:: max(1, len(series.total) // 60)]),
            ]
        )
    blocks.append(render_table(header, rows))
    blocks.append("")
    blocks.append("Method breakdown (mean share of domains per reference):")
    method_rows = []
    for name, series in sorted(detection.providers.items()):
        total_days = sum(series.total) or 1
        shares = {}
        for ref in RefType:
            ref_series = series.by_ref.get(ref)
            shares[ref.value] = (
                sum(ref_series) / total_days if ref_series else 0.0
            )
        method_rows.append(
            [name]
            + [f"{shares[ref.value] * 100:.1f}%" for ref in RefType]
        )
    blocks.append(
        render_table(
            ["Provider", "AS", "CNAME", "NS"],
            method_rows,
        )
    )
    return "\n".join(blocks)


# -- Figure 4 -------------------------------------------------------------------------


def render_figure4(results: StudyResults) -> str:
    """Namespace distribution vs DPS-use distribution."""
    rows = []
    for tld in ("com", "net", "org"):
        rows.append(
            [
                f".{tld}",
                f"{results.namespace_distribution.get(tld, 0) * 100:.2f}%",
                f"{results.dps_distribution.get(tld, 0) * 100:.2f}%",
            ]
        )
    return render_table(
        ["Zone", "Namespace share", "DPS-use share"],
        rows,
        title="Figure 4: DPS use and gTLD distribution over namespace",
    )


# -- Figures 5 and 6 ----------------------------------------------------------------------


def render_figure5(results: StudyResults) -> str:
    """Growth of DPS use vs overall zone expansion (gTLDs)."""
    adoption = results.growth_gtld["DPS adoption"]
    expansion = results.growth_gtld["Overall expansion"]
    chart = line_chart(
        {
            "DPS adoption": [v * 100 for v in adoption.relative()],
            "Overall expansion": [v * 100 for v in expansion.relative()],
        },
        x_labels=_axis(0, results.horizon - 1),
        y_format="{:.0f}%",
    )
    note = (
        f"DPS adoption grew {adoption.growth_factor:.2f}x vs overall "
        f"expansion {expansion.growth_factor:.2f}x "
        f"({len(adoption.anomalous_days)} anomalous days cleaned)"
    )
    return f"Figure 5: Growth of DPS use in ~50% of the DNS\n{chart}\n{note}"


def render_figure6(results: StudyResults) -> str:
    """Growth of DPS use in .nl and the Alexa list."""
    series = {
        label: [v * 100 for v in growth.relative()]
        for label, growth in results.growth_cc.items()
    }
    chart = line_chart(
        series,
        x_labels=_axis(CCTLD_START_DAY, results.horizon - 1),
        y_format="{:.0f}%",
    )
    notes = ", ".join(
        f"{label}: {growth.growth_factor:.3f}x"
        for label, growth in results.growth_cc.items()
    )
    return f"Figure 6: Growth of DPS use in .nl and Alexa\n{chart}\n{notes}"


# -- Figure 7 ----------------------------------------------------------------------------


def render_figure7(results: StudyResults) -> str:
    """Flux of DPS use per provider (two-week first/last-seen deltas)."""
    blocks = ["Figure 7: Flux of DPS use per provider"]
    rows = []
    for name, flux in sorted(results.flux.items()):
        delta = flux.delta
        rows.append(
            [
                name,
                format_count(sum(flux.influx)),
                format_count(sum(flux.outflux)),
                f"{flux.spread():.2f}",
                sparkline(delta),
            ]
        )
    blocks.append(
        render_table(
            ["Provider", "influx", "outflux", "spread", "delta/2wk"],
            rows,
        )
    )
    return "\n".join(blocks)


# -- Figure 8 -----------------------------------------------------------------------------


def render_figure8(results: StudyResults) -> str:
    """On-demand peak-duration CDFs with P80 markers."""
    blocks = ["Figure 8: On-demand peak duration occurrences"]
    rows = []
    for name, stats in sorted(results.peaks.items()):
        if not stats.durations:
            rows.append([name, "0", "—", "—", ""])
            continue
        rows.append(
            [
                name,
                str(stats.domain_count),
                str(len(stats.durations)),
                f"{stats.p80}d",
                sparkline(
                    [p for _, p in stats.cdf(max_days=105)][::3]
                ),
            ]
        )
    blocks.append(
        render_table(
            ["Provider", "domains", "peaks", "P80", "CDF 0..15w"],
            rows,
        )
    )
    return "\n".join(blocks)


def render_provider_detail(results: StudyResults, provider: str) -> str:
    """One provider's Fig. 3 panel: total plus per-reference lines."""
    detection = results.detection_gtld
    series = detection.providers.get(provider)
    if series is None:
        return f"(no data for {provider})"
    lines: Dict[str, Sequence[float]] = {"total": series.total}
    for ref, values in series.by_ref.items():
        lines[ref.value] = values
    chart = line_chart(
        lines,
        x_labels=_axis(0, results.horizon - 1),
    )
    return f"{provider}: DPS use and protection-method breakdown\n{chart}"


def render_peak_cdf(stats: PeakStats) -> str:
    """A full CDF plot for one provider (used by examples)."""
    points = stats.cdf(max_days=105)
    return cdf_chart(
        [(float(d), p) for d, p in points],
        marker=float(stats.p80),
        marker_label=f"P80={stats.p80}d",
    )


# -- §4.4.1 anomalies -------------------------------------------------------------------------


def render_attributions(results: StudyResults, limit: int = 20) -> str:
    """The third-party anomaly walk-through."""
    rows = []
    for attribution in results.attributions[:limit]:
        event = attribution.event
        top = attribution.groups[0] if attribution.groups else ("?", 0)
        rows.append(
            [
                month_label(event.day),
                str(event.day),
                event.provider,
                f"{event.delta:+d}",
                format_count(attribution.domains_involved),
                f"{top[0]} ({top[1]})",
            ]
        )
    return render_table(
        ["When", "day", "Provider", "delta", "domains", "traced to"],
        rows,
        title="Third-party anomalies (§4.4.1)",
    )


# -- live streaming counters ---------------------------------------------------


def render_stream_counters(
    snapshot, any_series: Optional[Sequence[float]] = None
) -> str:
    """Live adoption counters from streamed aggregates.

    *snapshot* is a :class:`repro.stream.query.LiveSnapshot` (duck-typed:
    ``scope``, ``day``, ``domains_seen``, ``any_use``, ``providers``).
    Pass the scope's combined daily series so far to get a trend
    sparkline alongside the table.
    """
    if snapshot.day is None:
        return f"[{snapshot.scope}] no complete day ingested yet"
    rows = [
        [provider, format_count(snapshot.providers[provider])]
        for provider in sorted(
            snapshot.providers,
            key=lambda p: (-snapshot.providers[p], p),
        )
    ]
    rows.append(["any provider", format_count(snapshot.any_use)])
    table = render_table(
        ["Provider", "SLDs"],
        rows,
        title=(
            f"[{snapshot.scope}] day {snapshot.day} "
            f"({month_label(snapshot.day)}) — "
            f"{format_count(snapshot.domains_seen)} SLDs seen"
        ),
    )
    if any_series:
        trend = sparkline(list(any_series[: snapshot.day + 1]))
        table += f"\nany-use trend {trend}"
    return table
