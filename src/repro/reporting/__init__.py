"""Presentation layer: ASCII tables, time-series charts, and one renderer
per paper artifact (Table 1, Table 2, Figures 2–8, and the §4.4.1 anomaly
walk-through). The benchmark harness prints these so each bench regenerates
the same rows/series the paper reports.
"""

from repro.reporting.textplot import cdf_chart, line_chart, sparkline
from repro.reporting.tables import format_count, format_bytes, render_table
from repro.reporting.figures import (
    render_attributions,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_peak_cdf,
    render_provider_detail,
    render_table1,
    render_table2,
)
from repro.reporting.export import export_study, study_to_dict

__all__ = [
    "cdf_chart",
    "format_bytes",
    "format_count",
    "line_chart",
    "render_attributions",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_peak_cdf",
    "render_provider_detail",
    "render_table",
    "render_table1",
    "render_table2",
    "export_study",
    "sparkline",
    "study_to_dict",
]
