"""Exporting study results: text artifacts and machine-readable JSON.

``export_study`` writes one text file per paper artifact plus a
``series.json`` with the raw daily series, growth numbers, flux windows,
and peak statistics — the shape downstream notebooks want.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.core.exposure import analyze_exposure, render_exposure
from repro.core.pipeline import StudyResults
from repro.reporting import figures


def study_to_dict(results: StudyResults) -> Dict:
    """A JSON-serialisable summary of a study's numeric results.

    Runs under a fault plan additionally carry ``faults`` (the
    :class:`~repro.faults.plan.FaultLog` counters) and ``quarantined``
    (scope → reason) — a degraded run never masquerades as clean.
    """
    detection = results.detection_gtld
    payload = {
        "horizon": results.horizon,
        "growth": {
            label: {
                "factor": series.growth_factor,
                "start_level": series.start_level,
                "end_level": series.end_level,
                "anomalous_days": len(series.anomalous_days),
            }
            for label, series in sorted(
                {**results.growth_gtld, **results.growth_cc}.items()
            )
        },
        "any_use": {
            "combined": detection.any_use_combined,
            "by_tld": detection.any_use_by_tld,
        },
        "providers": {
            name: {
                "total": series.total,
                "by_ref": {
                    ref.value: values
                    for ref, values in sorted(
                        series.by_ref.items(),
                        key=lambda item: item[0].value,
                    )
                },
            }
            for name, series in sorted(detection.providers.items())
        },
        "zone_sizes": results.zone_sizes,
        "namespace_distribution": results.namespace_distribution,
        "dps_distribution": results.dps_distribution,
        "flux": {
            name: {
                "window_days": flux.window_days,
                "influx": flux.influx,
                "outflux": flux.outflux,
                "spread": flux.spread(),
            }
            for name, flux in sorted(results.flux.items())
        },
        "peaks": {
            name: {
                "domains": stats.domain_count,
                "completed_peaks": len(stats.durations),
                "p80": stats.p80 if stats.durations else None,
            }
            for name, stats in sorted(results.peaks.items())
        },
        "dataset": [
            {
                "source": row.source,
                "start_day": row.start_day,
                "days": row.days,
                "slds": row.slds,
                "data_points": row.data_points,
                "estimated_bytes": row.estimated_bytes,
            }
            for row in results.dataset_table
        ],
        "anomalies": [
            {
                "provider": a.event.provider,
                "day": a.event.day,
                "delta": a.event.delta,
                "domains": a.domains_involved,
                "top_group": a.top_group,
            }
            for a in results.attributions
        ],
        "exposure": {
            provider: {
                "protected_days": report.protected_days,
                "exposed_days": report.exposed_days,
                "exposure_ratio": report.exposure_ratio,
            }
            for provider, report in sorted(
                analyze_exposure(results.detection_gtld).items()
            )
        },
    }
    if results.fault_log is not None:
        payload["faults"] = results.fault_log.to_dict()
        payload["quarantined"] = dict(
            sorted(results.quarantined_scopes.items())
        )
    return payload


#: artifact name → renderer; mirrors the benchmark harness.
_RENDERERS = {
    "table1": figures.render_table1,
    "fig2": figures.render_figure2,
    "fig3": figures.render_figure3,
    "fig4": figures.render_figure4,
    "fig5": figures.render_figure5,
    "fig6": figures.render_figure6,
    "fig7": figures.render_figure7,
    "fig8": figures.render_figure8,
    "anomalies": lambda results: figures.render_attributions(
        results, limit=40
    ),
    "exposure": lambda results: render_exposure(
        analyze_exposure(results.detection_gtld)
    ),
}


def export_study(
    results: StudyResults,
    directory: str,
    artifacts: Optional[List[str]] = None,
) -> List[str]:
    """Write artifacts and ``series.json`` into *directory*.

    Returns the paths written. Creates the directory if needed.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    wanted = artifacts if artifacts is not None else list(_RENDERERS)
    for name in wanted:
        renderer = _RENDERERS.get(name)
        if renderer is None:
            raise ValueError(f"unknown artifact {name!r}")
        path = os.path.join(directory, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(renderer(results))
            handle.write("\n")
        written.append(path)
    json_path = os.path.join(directory, "series.json")
    with open(json_path, "w") as handle:
        json.dump(study_to_dict(results), handle, indent=1, sort_keys=True)
    written.append(json_path)
    return written
