"""Terminal plotting: line charts, CDFs, sparklines.

Good enough to eyeball the shapes the paper's figures show — trends,
anomaly spikes, method-line separation, CDF knees — directly in a test log
or benchmark output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character rendering of *values*.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def _resample(values: Sequence[float], width: int) -> List[float]:
    """Reduce *values* to *width* points by bucket-averaging."""
    if len(values) <= width:
        return list(values)
    out: List[float] = []
    for index in range(width):
        lo = index * len(values) // width
        hi = max(lo + 1, (index + 1) * len(values) // width)
        bucket = values[lo:hi]
        out.append(sum(bucket) / len(bucket))
    return out


def line_chart(
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 14,
    x_labels: Optional[Tuple[str, str]] = None,
    y_format: str = "{:.0f}",
) -> str:
    """A multi-series ASCII line chart; each series gets its own glyph."""
    if not series:
        return "(empty chart)"
    glyphs = "*o+x#@%&"
    resampled = {
        label: _resample(values, width) for label, values in series.items()
    }
    all_values = [v for values in resampled.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for series_index, (label, values) in enumerate(resampled.items()):
        glyph = glyphs[series_index % len(glyphs)]
        for x, value in enumerate(values):
            y = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = glyph
    label_width = max(
        len(y_format.format(hi)), len(y_format.format(lo))
    )
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_format.format(hi)
        elif row_index == height - 1:
            label = y_format.format(lo)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    if x_labels:
        left, right = x_labels
        pad = max(0, width - len(left) - len(right))
        lines.append(
            " " * (label_width + 2) + left + " " * pad + right
        )
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {label}"
        for i, label in enumerate(resampled)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def cdf_chart(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 10,
    marker: Optional[float] = None,
    marker_label: str = "",
) -> str:
    """An ASCII CDF plot from ``(x, P(X<=x))`` points.

    *marker* draws a vertical line (e.g. the Fig. 8 P80 duration).
    """
    if not points:
        return "(empty cdf)"
    xs = [p[0] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    grid = [[" "] * width for _ in range(height)]
    marker_col = None
    if marker is not None:
        marker_col = int((marker - x_lo) / (x_hi - x_lo) * (width - 1))
        marker_col = min(max(marker_col, 0), width - 1)
        for row in grid:
            row[marker_col] = ":"
    for x, y in points:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int(y * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["1.0 |" + "".join(row) for row in grid[:1]]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    footer = f"    x: {x_lo:.0f} .. {x_hi:.0f}"
    if marker is not None:
        footer += f"   (: marks {marker_label or marker})"
    lines.append(footer)
    return "\n".join(lines)
