"""Plain-text table rendering and human-friendly number formatting."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_count(value: float) -> str:
    """Counts in the paper's style: ``161.2M``, ``62.4G``, ``5.9k``.

    >>> format_count(161_200_000)
    '161.2M'
    """
    for threshold, suffix in (
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
    ):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}"


def format_bytes(value: float) -> str:
    """Byte sizes in the paper's style: ``17.5TiB``, ``77.5GiB``."""
    for threshold, suffix in (
        (1024**4, "TiB"),
        (1024**3, "GiB"),
        (1024**2, "MiB"),
        (1024, "KiB"),
    ):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}B"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """A column-aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            f"{str(cell):<{widths[index]}}"
            for index, cell in enumerate(cells)
        ).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def render_dict_table(
    rows: Sequence[Dict[str, str]], title: Optional[str] = None
) -> str:
    """A table from uniform dict rows (keys become headers)."""
    if not rows:
        return title or "(empty table)"
    headers = list(rows[0])
    return render_table(
        headers, [[row[h] for h in headers] for row in rows], title=title
    )
