"""The map → combine → partition → reduce execution engine.

A :class:`Job` supplies a mapper (record → (key, value) pairs), a reducer
(key, values → results), and optionally a combiner (run per partition
before the shuffle, like Hadoop's map-side combine). The engine shuffles
pairs into a configurable number of partitions by key hash and reduces
each partition independently — the same dataflow a Hadoop job has, scaled
to one process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.world.ipam import stable_hash

R = TypeVar("R")  # input record
K = TypeVar("K")  # shuffle key
V = TypeVar("V")  # shuffle value
Out = TypeVar("Out")  # output

Mapper = Callable[[R], Iterable[Tuple[K, V]]]
Reducer = Callable[[K, List[V]], Iterable[Out]]
Combiner = Callable[[K, List[V]], List[V]]


@dataclass
class Job(Generic[R, K, V, Out]):
    """A MapReduce job description."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Combiner] = None


@dataclass
class JobCounters:
    """Hadoop-style job counters, for observability and tests."""

    records_read: int = 0
    pairs_emitted: int = 0
    pairs_after_combine: int = 0
    keys_reduced: int = 0
    outputs_written: int = 0


class MapReduceEngine:
    """Runs jobs over in-process record iterables."""

    def __init__(self, partitions: int = 8):
        if partitions < 1:
            raise ValueError("at least one partition is required")
        self._partitions = partitions
        self.last_counters: Optional[JobCounters] = None

    def _partition_of(self, key: Any) -> int:
        return stable_hash(repr(key)) % self._partitions

    def run(self, job: Job, records: Iterable[R]) -> List[Out]:
        """Execute *job* over *records* and return all reducer outputs."""
        counters = JobCounters()
        # Map phase: pairs land in their shuffle partition immediately.
        shuffled: List[Dict[K, List[V]]] = [
            {} for _ in range(self._partitions)
        ]
        for record in records:
            counters.records_read += 1
            for key, value in job.mapper(record):
                counters.pairs_emitted += 1
                bucket = shuffled[self._partition_of(key)]
                bucket.setdefault(key, []).append(value)

        # Optional map-side combine, per partition.
        if job.combiner is not None:
            for bucket in shuffled:
                for key in list(bucket):
                    bucket[key] = list(job.combiner(key, bucket[key]))
        counters.pairs_after_combine = sum(
            len(values) for bucket in shuffled for values in bucket.values()
        )

        # Reduce phase: keys within a partition in sorted order, like
        # Hadoop's sort-before-reduce.
        outputs: List[Out] = []
        for bucket in shuffled:
            for key in sorted(bucket, key=repr):
                counters.keys_reduced += 1
                for output in job.reducer(key, bucket[key]):
                    counters.outputs_written += 1
                    outputs.append(output)
        self.last_counters = counters
        return outputs


def run_job(
    job: Job, records: Iterable[R], partitions: int = 8
) -> List[Out]:
    """One-shot convenience wrapper around :class:`MapReduceEngine`."""
    return MapReduceEngine(partitions=partitions).run(job, records)
