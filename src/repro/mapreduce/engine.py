"""The map → combine → partition → reduce execution engine.

A :class:`Job` supplies a mapper (record → (key, value) pairs), a reducer
(key, values → results), and optionally a combiner (run per partition
before the shuffle, like Hadoop's map-side combine). The engine shuffles
pairs into a configurable number of partitions by key hash and reduces
each partition independently — the same dataflow a Hadoop job has, scaled
to one process.

A *backend* (see :class:`repro.parallel.mapreduce.ParallelBackend`) can
take over the map+combine phase: records are split into contiguous
chunks, each chunk is mapped and combined in a worker process, and the
engine merges the per-chunk shuffles **in chunk order** before the
reduce. Because chunks are contiguous and merged in order, every per-key
value list arrives at the reducer in exactly the order a sequential pass
would have produced — so for a fixed chunk count the outputs and
counters are independent of the worker count, and for associative
combiners the outputs match the backend-less engine byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.world.ipam import stable_hash

R = TypeVar("R")  # input record
K = TypeVar("K")  # shuffle key
V = TypeVar("V")  # shuffle value
Out = TypeVar("Out")  # output

Mapper = Callable[[R], Iterable[Tuple[K, V]]]
Reducer = Callable[[K, List[V]], Iterable[Out]]
Combiner = Callable[[K, List[V]], List[V]]

#: partition index → key → values, the engine's shuffle representation.
Shuffle = List[Dict[K, List[V]]]


@dataclass
class Job(Generic[R, K, V, Out]):
    """A MapReduce job description."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Combiner] = None


@dataclass
class JobCounters:
    """Hadoop-style job counters, for observability and tests."""

    records_read: int = 0
    pairs_emitted: int = 0
    pairs_after_combine: int = 0
    keys_reduced: int = 0
    outputs_written: int = 0

    def absorb(self, other: "JobCounters") -> None:
        """Add *other*'s counts into this one (worker aggregation)."""
        self.records_read += other.records_read
        self.pairs_emitted += other.pairs_emitted
        self.pairs_after_combine += other.pairs_after_combine
        self.keys_reduced += other.keys_reduced
        self.outputs_written += other.outputs_written

    @classmethod
    def merge(cls, parts: Sequence["JobCounters"]) -> "JobCounters":
        """Summed counters across per-shard map phases."""
        merged = cls()
        for part in parts:
            merged.absorb(part)
        return merged


def map_combine(
    job: Job, records: Iterable[R], partitions: int
) -> Tuple[Shuffle, JobCounters]:
    """The map + map-side-combine phase over one batch of records.

    This is the unit of work a parallel backend ships to a worker; the
    serial engine runs it once over everything. Returns the partitioned
    shuffle and the map-side counters (``records_read``,
    ``pairs_emitted``, ``pairs_after_combine``).

    *records* is any iterable — in particular a columnar
    :class:`repro.batch.batch.ObservationBatch`, whose iteration yields
    lazy row views one at a time, so a worker never holds a boxed copy
    of its whole chunk.
    """
    counters = JobCounters()
    shuffled: Shuffle = [{} for _ in range(partitions)]
    for record in records:
        counters.records_read += 1
        for key, value in job.mapper(record):
            counters.pairs_emitted += 1
            bucket = shuffled[stable_hash(repr(key)) % partitions]
            bucket.setdefault(key, []).append(value)

    if job.combiner is not None:
        for bucket in shuffled:
            for key in list(bucket):
                bucket[key] = list(job.combiner(key, bucket[key]))
    counters.pairs_after_combine = sum(
        len(values) for bucket in shuffled for values in bucket.values()
    )
    return shuffled, counters


class MapReduceEngine:
    """Runs jobs over in-process record iterables.

    *backend*, when given, must provide ``map_shards(job, records,
    partitions) -> List[Tuple[Shuffle, JobCounters]]`` returning one
    ``map_combine`` result per chunk, **in chunk order** (duck-typed so
    this module never imports :mod:`repro.parallel`).
    """

    def __init__(self, partitions: int = 8, backend: Optional[Any] = None):
        if partitions < 1:
            raise ValueError("at least one partition is required")
        self._partitions = partitions
        self._backend = backend
        self.last_counters: Optional[JobCounters] = None

    def _partition_of(self, key: Any) -> int:
        return stable_hash(repr(key)) % self._partitions

    def run(self, job: Job, records: Iterable[R]) -> List[Out]:
        """Execute *job* over *records* and return all reducer outputs."""
        if self._backend is not None:
            return self._run_sharded(job, records)
        shuffled, counters = map_combine(job, records, self._partitions)
        outputs = self._reduce(job, shuffled, counters)
        self.last_counters = counters
        return outputs

    def _run_sharded(self, job: Job, records: Iterable[R]) -> List[Out]:
        """Map/combine in the backend's workers, reduce here."""
        parts = self._backend.map_shards(job, records, self._partitions)
        counters = JobCounters.merge([part[1] for part in parts])
        shuffled: Shuffle = [{} for _ in range(self._partitions)]
        # Chunk-order merge: per-key value lists concatenate exactly as
        # a single sequential map pass would have appended them.
        for shard_shuffled, _ in parts:
            for index, bucket in enumerate(shard_shuffled):
                merged = shuffled[index]
                for key, values in bucket.items():
                    merged.setdefault(key, []).extend(values)
        outputs = self._reduce(job, shuffled, counters)
        self.last_counters = counters
        return outputs

    def _reduce(
        self, job: Job, shuffled: Shuffle, counters: JobCounters
    ) -> List[Out]:
        # Reduce phase: keys within a partition in sorted order, like
        # Hadoop's sort-before-reduce.
        outputs: List[Out] = []
        for bucket in shuffled:
            for key in sorted(bucket, key=repr):
                counters.keys_reduced += 1
                for output in job.reducer(key, bucket[key]):
                    counters.outputs_written += 1
                    outputs.append(output)
        return outputs


def run_job(
    job: Job, records: Iterable[R], partitions: int = 8
) -> List[Out]:
    """One-shot convenience wrapper around :class:`MapReduceEngine`."""
    return MapReduceEngine(partitions=partitions).run(job, records)
