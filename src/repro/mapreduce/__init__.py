"""A small local MapReduce engine — the Hadoop stand-in.

The paper analyses measurement data "using Hadoop" (§3). This package
provides the same programming model (map → combine → partition → reduce)
over in-process records, so the analysis jobs in :mod:`repro.core` can be
expressed exactly as they would be on the real cluster, and an ablation
benchmark can compare the engine against direct aggregation.
"""

from repro.mapreduce.engine import Job, MapReduceEngine, run_job
from repro.mapreduce.jobs import (
    daily_detection_job,
    ns_sld_frequency_job,
    reference_count_job,
)

__all__ = [
    "Job",
    "MapReduceEngine",
    "daily_detection_job",
    "ns_sld_frequency_job",
    "reference_count_job",
    "run_job",
]
