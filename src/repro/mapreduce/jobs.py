"""Ready-made MapReduce jobs used by the analysis (the Hadoop-side view).

These express the paper's aggregations in the map/reduce model; the
streaming :class:`repro.core.detection.SegmentDetector` produces the same
numbers much faster, and ``tests/integration`` plus an ablation benchmark
hold the two implementations to agreement.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.references import SignatureCatalog
from repro.mapreduce.engine import Job
from repro.measurement.snapshot import DomainObservation


def daily_detection_job(catalog: SignatureCatalog) -> Job:
    """Counts distinct SLDs per (day, provider) across observations.

    Output records: ``((day, provider), count)``.
    """

    def mapper(
        observation: DomainObservation,
    ) -> Iterable[Tuple[Tuple[int, str], int]]:
        for provider in catalog.match(observation):
            yield (observation.day, provider), 1

    def combiner(
        key: Tuple[int, str], values: List[int]
    ) -> List[int]:
        return [sum(values)]

    def reducer(
        key: Tuple[int, str], values: List[int]
    ) -> Iterable[Tuple[Tuple[int, str], int]]:
        yield key, sum(values)

    return Job(
        name="daily-detection",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
    )


def reference_count_job(catalog: SignatureCatalog) -> Job:
    """Counts per (day, provider, reference type).

    Output records: ``((day, provider, ref.value), count)`` — the Fig. 3
    method-breakdown aggregation.
    """

    def mapper(
        observation: DomainObservation,
    ) -> Iterable[Tuple[Tuple[int, str, str], int]]:
        for provider, refs in catalog.match(observation).items():
            for ref in refs:
                yield (observation.day, provider, ref.value), 1

    def combiner(key, values: List[int]) -> List[int]:
        return [sum(values)]

    def reducer(key, values: List[int]):
        yield key, sum(values)

    return Job(
        name="reference-count",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
    )


def ns_sld_frequency_job(min_count: int = 2) -> Job:
    """Counts NS SLD occurrences — the §3.3 "frequently occurring SLDs"
    step as a cluster job. Output: ``(sld, count)`` for counts ≥ min_count.
    """

    def mapper(
        observation: DomainObservation,
    ) -> Iterable[Tuple[str, int]]:
        for sld in observation.ns_slds():
            yield sld, 1

    def combiner(key: str, values: List[int]) -> List[int]:
        return [sum(values)]

    def reducer(key: str, values: List[int]) -> Iterable[Tuple[str, int]]:
        total = sum(values)
        if total >= min_count:
            yield key, total

    return Job(
        name="ns-sld-frequency",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
    )
