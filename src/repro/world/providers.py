"""The nine DDoS Protection Service providers and their protection actions.

Each provider carries the ground-truth fingerprint from the paper's
Table 2 — AS numbers, CNAME second-level domains, NS second-level domains —
and knows how to rewrite a customer domain's :class:`DnsConfig` for each
diversion method of §2.1. The fingerprints here are *ground truth for the
simulation*; the methodology's Table 2 is re-derived from measurement data
by :mod:`repro.core.fingerprint` and compared against these.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.routing.asn import ASRegistry
from repro.world.domain import DnsConfig, Method
from repro.world.entities import Organization
from repro.world.ipam import PrefixAllocator, address_in, stable_hash

#: First names CloudFlare assigns to its authoritative name servers
#: (§4.3 footnote 10: 403 servers like ``kate.ns.cloudflare.com``).
_CLOUDFLARE_NS_POOL_SIZE = 403
_CLOUDFLARE_GIVEN_NAMES = (
    "kate", "ada", "ben", "carl", "dana", "eva", "finn", "gina", "hank",
    "iris", "jack", "kim", "liam", "mona", "nick", "olga", "pete", "quinn",
    "rosa", "sam", "tina", "ugo", "vera", "walt", "xena", "yuri", "zoe",
)


@dataclass
class DPSProvider(Organization):
    """A cloud-based DDoS protection provider."""

    #: CNAME second-level domains (Table 2, column 3).
    cname_slds: Tuple[str, ...] = ()
    #: NS second-level domains (Table 2, column 4).
    ns_slds: Tuple[str, ...] = ()
    #: Which diversion methods the provider's services support.
    methods: Tuple[Method, ...] = ()
    #: Number of shared cloud addresses customers land on.
    shared_address_count: int = 16
    #: Which of this provider's ASNs announces each of its prefixes.
    prefix_origins: Dict[ipaddress.IPv4Network, int] = field(
        default_factory=dict
    )

    _shared_pool: List[str] = field(default_factory=list)

    # -- infrastructure -----------------------------------------------------

    def build_shared_pool(self) -> None:
        """Precompute the shared anycast-style customer addresses."""
        self._shared_pool = []
        for prefix in self.prefixes:
            per_prefix = max(
                1, self.shared_address_count // max(1, len(self.prefixes))
            )
            for index in range(per_prefix):
                self._shared_pool.append(
                    address_in(prefix, f"{self.name}-shared-{index}")
                )

    def shared_addresses(self, key: str, count: int = 1) -> Tuple[str, ...]:
        """*count* shared cloud addresses for customer *key*."""
        if not self._shared_pool:
            self.build_shared_pool()
        pool = self._shared_pool
        start = stable_hash(key) % len(pool)
        return tuple(pool[(start + i) % len(pool)] for i in range(count))

    def supports(self, method: Method) -> bool:
        return method in self.methods

    # -- DNS fingerprint pieces ----------------------------------------------

    def cname_target(self, domain_name: str) -> str:
        """The provider-side canonical name for customer *domain_name*."""
        if not self.cname_slds:
            raise ValueError(f"{self.name} offers no CNAME redirection")
        sld = self.cname_slds[stable_hash(domain_name) % len(self.cname_slds)]
        token = f"{domain_name.split('.')[0]}-{stable_hash(domain_name) % 100000:05d}"
        return f"{token}.{sld}"

    def delegation_ns_names(self, domain_name: str) -> Tuple[str, ...]:
        """The provider name servers a delegated customer zone uses."""
        if not self.ns_slds:
            raise ValueError(f"{self.name} offers no managed DNS")
        sld = self.ns_slds[stable_hash(domain_name) % len(self.ns_slds)]
        if "cloudflare" in sld:
            # Named pool: <given-name><n>.ns.cloudflare.com style.
            picks = []
            base = stable_hash(domain_name)
            for i in range(2):
                index = (base + i * 7919) % _CLOUDFLARE_NS_POOL_SIZE
                given = _CLOUDFLARE_GIVEN_NAMES[
                    index % len(_CLOUDFLARE_GIVEN_NAMES)
                ]
                serial = index // len(_CLOUDFLARE_GIVEN_NAMES)
                label = given if serial == 0 else f"{given}{serial}"
                picks.append(f"{label}.ns.{sld}")
            return tuple(picks)
        return (f"ns1.{sld}", f"ns2.{sld}")

    def ns_address(self, ns_name: str) -> str:
        """The address one of this provider's name servers resolves to."""
        return self.host_address(ns_name)

    # -- protection actions (§2.1 / §2.3) ------------------------------------

    def protect(
        self,
        base: DnsConfig,
        domain_name: str,
        method: Method,
        divert: bool = True,
    ) -> DnsConfig:
        """The configuration of *domain_name* once protected via *method*.

        ``divert=False`` models delegation-without-diversion (e.g. a
        Verisign Managed DNS customer that has not enabled cloud
        mitigation): the provider controls the zone but address records
        still point at the origin.
        """
        if method == Method.BGP:
            # BGP diversion leaves the DNS untouched; the routing layer
            # moves the customer prefix origin instead.
            return base
        if not self.supports(method):
            raise ValueError(f"{self.name} does not support {method.value}")
        diverted = self.shared_addresses(domain_name, count=1)
        if method == Method.A_RECORD:
            return DnsConfig(
                ns_names=base.ns_names,
                apex_ips=diverted,
                www_ips=diverted,
            )
        if method == Method.CNAME:
            return DnsConfig(
                ns_names=base.ns_names,
                apex_ips=diverted,
                www_cnames=(self.cname_target(domain_name),),
                www_ips=diverted,
            )
        if method == Method.NS_DELEGATION:
            addresses = diverted if divert else base.apex_ips
            www = diverted if divert else (base.www_ips or base.apex_ips)
            return DnsConfig(
                ns_names=self.delegation_ns_names(domain_name),
                apex_ips=addresses,
                www_ips=www,
            )
        raise ValueError(f"unhandled method {method!r}")


@dataclass(frozen=True)
class ProviderBlueprint:
    """Static description of one of the nine studied providers (Table 2)."""

    name: str
    asns: Tuple[int, ...]
    cname_slds: Tuple[str, ...]
    ns_slds: Tuple[str, ...]
    methods: Tuple[Method, ...]


#: The paper's Table 2, verbatim, as the simulation's ground truth.
PAPER_PROVIDER_BLUEPRINTS: Tuple[ProviderBlueprint, ...] = (
    ProviderBlueprint(
        name="Akamai",
        asns=(20940, 16625, 32787),
        cname_slds=(
            "akamaiedge.net", "edgekey.net", "edgesuite.net", "akamai.net",
        ),
        ns_slds=("akam.net", "akamai.net", "akamaiedge.net"),
        methods=(Method.CNAME, Method.NS_DELEGATION, Method.A_RECORD,
                 Method.BGP),
    ),
    ProviderBlueprint(
        name="CenturyLink",
        asns=(209, 3561),
        cname_slds=(),
        ns_slds=(
            "savvis.net", "savvisdirect.net", "qwest.net",
            "centurytel.net", "centurylink.net",
        ),
        methods=(Method.NS_DELEGATION, Method.A_RECORD, Method.BGP),
    ),
    ProviderBlueprint(
        name="CloudFlare",
        asns=(13335,),
        cname_slds=("cloudflare.net",),
        ns_slds=("cloudflare.com",),
        methods=(Method.CNAME, Method.NS_DELEGATION, Method.A_RECORD),
    ),
    ProviderBlueprint(
        name="DOSarrest",
        asns=(19324,),
        cname_slds=(),
        ns_slds=(),
        methods=(Method.A_RECORD, Method.BGP),
    ),
    ProviderBlueprint(
        name="F5 Networks",
        asns=(55002,),
        cname_slds=(),
        ns_slds=(),
        methods=(Method.A_RECORD, Method.BGP),
    ),
    ProviderBlueprint(
        name="Incapsula",
        asns=(19551,),
        cname_slds=("incapdns.net",),
        ns_slds=("incapsecuredns.net",),
        methods=(Method.CNAME, Method.NS_DELEGATION, Method.A_RECORD,
                 Method.BGP),
    ),
    ProviderBlueprint(
        name="Level 3",
        asns=(3549, 3356, 11213, 10753),
        cname_slds=(),
        ns_slds=("l3.net", "level3.net"),
        methods=(Method.NS_DELEGATION, Method.A_RECORD, Method.BGP),
    ),
    ProviderBlueprint(
        name="Neustar",
        asns=(7786, 12008, 19905),
        cname_slds=("ultradns.net",),
        ns_slds=("ultradns.com", "ultradns.biz", "ultradns.net"),
        methods=(Method.CNAME, Method.NS_DELEGATION, Method.A_RECORD,
                 Method.BGP),
    ),
    ProviderBlueprint(
        name="Verisign",
        asns=(26415, 30060),
        cname_slds=(),
        ns_slds=("verisigndns.com",),
        methods=(Method.NS_DELEGATION, Method.A_RECORD, Method.BGP),
    ),
)

PROVIDER_NAMES: Tuple[str, ...] = tuple(
    blueprint.name for blueprint in PAPER_PROVIDER_BLUEPRINTS
)


def build_paper_providers(
    registry: ASRegistry,
    allocator: PrefixAllocator,
    prefixes_per_asn: int = 1,
) -> Dict[str, DPSProvider]:
    """Instantiate the nine providers with their Table 2 identities.

    Every AS number from the table is registered under the provider's name
    (that is the "AS-to-name data" the §3.3 bootstrap starts from) and gets
    its own address space.
    """
    providers: Dict[str, DPSProvider] = {}
    for blueprint in PAPER_PROVIDER_BLUEPRINTS:
        provider = DPSProvider(
            name=blueprint.name,
            cname_slds=blueprint.cname_slds,
            ns_slds=blueprint.ns_slds,
            methods=blueprint.methods,
        )
        for asn in blueprint.asns:
            registry.register(blueprint.name, asn)
            provider.asns.append(asn)
            for _ in range(prefixes_per_asn):
                prefix = allocator.allocate(20)
                provider.prefixes.append(prefix)
                provider.prefix_origins[prefix] = asn
        provider.build_shared_pool()
        providers[blueprint.name] = provider
    return providers
