"""DDoS attack episodes and the on-demand mitigation they trigger (§2.3).

"If protection is done on-demand, a DNS change is made by either the
provider or the customer, or the DPS could start announcing a customer's
IP prefix using BGP. ... On-demand protection can be manual or automated"
— e.g. an in-line appliance alerting the cloud when an attack is too
large to handle locally.

The model: a customer experiences attack episodes (renewal process with
exponential inter-arrival gaps); each episode has a peak traffic volume
and a duration; diversion turns on at episode start and turns off when the
episode ends — hybrid customers (Neustar-style) revert almost immediately,
always-on-style responders keep diversion up for a safety margin. Peak
durations therefore reproduce the Fig. 8 distributions from an actual
generating process rather than being sampled directly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class AttackEpisode:
    """One attack against one target: days and peak volume."""

    start: int
    duration: int  # days the attack lasts
    peak_gbps: float

    @property
    def end(self) -> int:
        return self.start + self.duration

    def is_volumetric(self, threshold_gbps: float = 10.0) -> bool:
        """Volumetric vs semantic (§1/§2): big pipes vs clever packets."""
        return self.peak_gbps >= threshold_gbps


@dataclass(frozen=True)
class MitigationWindow:
    """The diversion interval an episode produces."""

    start: int
    end: int
    episode: AttackEpisode

    @property
    def days(self) -> int:
        return self.end - self.start


class AttackModel:
    """Generates attack episodes and mitigation windows for a customer.

    ``p80_days`` calibrates the mitigation-duration distribution so that
    80 % of windows last at most that many days (the Fig. 8 markers);
    ``mean_gap_days`` sets how often episodes recur.
    """

    def __init__(
        self,
        rng: random.Random,
        p80_days: int,
        mean_gap_days: float = 30.0,
        max_duration: int = 120,
    ):
        if p80_days < 1:
            raise ValueError("p80_days must be at least 1 day")
        if mean_gap_days <= 0:
            raise ValueError("mean_gap_days must be positive")
        self._rng = rng
        # Exponential durations with the 80th percentile at p80_days.
        self._duration_rate = math.log(5.0) / p80_days
        self._mean_gap = mean_gap_days
        self._max_duration = max_duration

    def episode_duration(self) -> int:
        duration = 1 + int(self._rng.expovariate(self._duration_rate))
        return min(duration, self._max_duration)

    def episode_volume(self) -> float:
        """Peak Gbps, log-normal-ish: most attacks small, a heavy tail.

        Matches the paper's framing: volumes "in the order of hundreds of
        Gbps" at the top (Spamhaus 300, BBC 600), mere nuisance at the
        bottom.
        """
        return round(min(600.0, self._rng.lognormvariate(2.0, 1.4)), 1)

    def episodes(
        self, start: int, horizon: int, min_gap: int = 2
    ) -> Iterator[AttackEpisode]:
        """Attack episodes over ``[start, horizon)``, chronologically."""
        day = start + int(self._rng.expovariate(1.0 / self._mean_gap))
        while day < horizon:
            duration = self.episode_duration()
            if day + duration >= horizon:
                return
            yield AttackEpisode(
                start=day, duration=duration, peak_gbps=self.episode_volume()
            )
            gap = min_gap + int(self._rng.expovariate(1.0 / self._mean_gap))
            day += duration + gap

    def mitigation_windows(
        self,
        start: int,
        horizon: int,
        episode_count: Tuple[int, int] = (3, 7),
        revert_margin: int = 0,
    ) -> List[MitigationWindow]:
        """Mitigation windows for one customer over its lifetime.

        ``episode_count`` bounds how many episodes to keep (the Fig. 8
        populations have 3+ peaks); ``revert_margin`` extends each window
        past the attack's end (manual reversion lag).
        """
        low, high = episode_count
        wanted = self._rng.randint(low, high)
        windows: List[MitigationWindow] = []
        for episode in self.episodes(start, horizon):
            end = min(episode.end + revert_margin, horizon - 1)
            if end <= episode.start:
                continue
            windows.append(
                MitigationWindow(
                    start=episode.start, end=end, episode=episode
                )
            )
            if len(windows) >= wanted:
                break
        return windows
