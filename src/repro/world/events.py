"""Ground-truth event log for the simulated world.

The scenario records every mass behaviour it scripts — third-party
diversion windows, outages, permanent migrations — as
:class:`MassEvent` rows. The log is *ground truth*: the methodology never
reads it; validation tests compare the §4.4.1 anomaly attributions against
it to measure how completely and correctly the pipeline recovers what
actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


@dataclass(frozen=True)
class MassEvent:
    """One scripted mass behaviour episode."""

    day: int
    party: str
    #: Affected DPS provider ("" when none, e.g. a pure outage).
    provider: str
    #: "divert-on", "divert-off", "outage", "migration".
    kind: str
    domains: int
    #: The shared-infrastructure label attribution should recover
    #: (e.g. ``ns:wixdns.net``).
    group_hint: str = ""


class EventLog:
    """An append-only record of scripted mass events."""

    def __init__(self) -> None:
        self._events: List[MassEvent] = []

    def record(self, event: MassEvent) -> None:
        self._events.append(event)

    def __iter__(self) -> Iterator[MassEvent]:
        return iter(sorted(self._events, key=lambda e: (e.day, e.party)))

    def __len__(self) -> int:
        return len(self._events)

    def events_for(
        self,
        provider: Optional[str] = None,
        party: Optional[str] = None,
        min_domains: int = 0,
    ) -> List[MassEvent]:
        """Filter the log."""
        return [
            event
            for event in self
            if (provider is None or event.provider == provider)
            and (party is None or event.party == party)
            and event.domains >= min_domains
        ]
