"""Per-domain DNS state as a piecewise-constant timeline.

A :class:`DnsConfig` captures everything the measurement platform can see
for one domain on one day: the authoritative NS names, the apex address
records, and the ``www`` records (either a CNAME chain plus its expansion
addresses, or direct address records). A :class:`DomainTimeline` is the
domain's lifetime plus an ordered list of ``(start_day, DnsConfig)``
segments; configuration lookups use bisection, and a monotonic cursor makes
day-sweep scans O(1) amortised.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


class Method(enum.Enum):
    """How a domain's traffic is (or would be) diverted to a DPS (§2)."""

    A_RECORD = "a_record"
    CNAME = "cname"
    NS_DELEGATION = "ns_delegation"
    BGP = "bgp"


@dataclass(frozen=True)
class DnsConfig:
    """The externally visible DNS configuration of a domain.

    All addresses are text to keep instances small and hashable; the
    enrichment stage resolves them to ASNs via pfx2as.
    """

    ns_names: Tuple[str, ...]
    apex_ips: Tuple[str, ...]
    #: CNAME chain for ``www`` (empty when www has direct address records).
    www_cnames: Tuple[str, ...] = ()
    #: Final addresses of ``www`` after expansion (or its direct A records).
    www_ips: Tuple[str, ...] = ()
    apex_ips6: Tuple[str, ...] = ()
    www_ips6: Tuple[str, ...] = ()

    def with_www_defaulted(self) -> "DnsConfig":
        """A copy where www falls back to the apex addresses if unset."""
        if self.www_ips or self.www_cnames:
            return self
        return DnsConfig(
            ns_names=self.ns_names,
            apex_ips=self.apex_ips,
            www_ips=self.apex_ips,
            apex_ips6=self.apex_ips6,
            www_ips6=self.apex_ips6,
        )

    def all_addresses(self) -> Tuple[str, ...]:
        """Every v4/v6 address visible at apex or www."""
        return (
            self.apex_ips + self.www_ips + self.apex_ips6 + self.www_ips6
        )


#: A configuration with no records at all — what a broken or lame
#: delegation looks like to the measurement platform (e.g. the Sedo DNS
#: incident of 22 Nov 2015, §4.4.1).
DARK_CONFIG = DnsConfig(ns_names=(), apex_ips=())


_CONFIG_CACHE: Dict[DnsConfig, DnsConfig] = {}


def intern_config(config: DnsConfig) -> DnsConfig:
    """Return a canonical shared instance of *config*.

    Mass actors (Wix, parking providers) give millions of domains identical
    configurations; interning keeps world memory proportional to the number
    of *distinct* configurations.
    """
    return _CONFIG_CACHE.setdefault(config, config)


class DomainTimeline:
    """A domain's lifetime and its configuration history."""

    __slots__ = ("name", "tld", "created", "deleted", "_starts", "_configs",
                 "_cursor")

    def __init__(
        self,
        name: str,
        tld: str,
        created: int,
        base_config: DnsConfig,
        deleted: Optional[int] = None,
    ):
        self.name = name
        self.tld = tld
        self.created = created
        #: First day the domain is *no longer* in the zone (None = never).
        self.deleted = deleted
        self._starts: List[int] = [created]
        self._configs: List[DnsConfig] = [intern_config(base_config)]
        self._cursor = 0

    def __repr__(self) -> str:
        return (
            f"DomainTimeline({self.name!r}, created={self.created}, "
            f"deleted={self.deleted}, segments={len(self._starts)})"
        )

    # -- lifetime -----------------------------------------------------------

    def alive(self, day: int) -> bool:
        """True if the domain is in its zone on *day*."""
        if day < self.created:
            return False
        return self.deleted is None or day < self.deleted

    def lifespan(self, horizon: int) -> Tuple[int, int]:
        """``(first_day, last_day_exclusive)`` clipped to *horizon*."""
        end = self.deleted if self.deleted is not None else horizon
        return self.created, min(end, horizon)

    # -- configuration history ------------------------------------------------

    def set_config(self, day: int, config: DnsConfig) -> None:
        """The configuration becomes *config* from *day* onwards."""
        if day < self.created:
            raise ValueError(
                f"config change on day {day} before creation "
                f"({self.created}) of {self.name}"
            )
        config = intern_config(config)
        index = bisect.bisect_right(self._starts, day) - 1
        if self._starts[index] == day:
            self._configs[index] = config
            # Merge with the previous segment if now identical.
            if index > 0 and self._configs[index - 1] == config:
                del self._starts[index]
                del self._configs[index]
        else:
            if self._configs[index] == config:
                return
            self._starts.insert(index + 1, day)
            self._configs.insert(index + 1, config)
        self._cursor = 0

    def config_at(self, day: int) -> DnsConfig:
        """The configuration in effect on *day* (bisection lookup)."""
        if not self.alive(day):
            raise ValueError(f"{self.name} is not in the zone on day {day}")
        index = bisect.bisect_right(self._starts, day) - 1
        return self._configs[index]

    def config_at_monotonic(self, day: int) -> DnsConfig:
        """Like :meth:`config_at` for non-decreasing *day* across calls.

        Sweeping measurement loops call this once per day in order; the
        internal cursor makes the scan O(1) amortised per call.
        """
        while (
            self._cursor + 1 < len(self._starts)
            and self._starts[self._cursor + 1] <= day
        ):
            self._cursor += 1
        if self._starts[self._cursor] > day:
            # Day moved backwards: fall back to bisection and reset.
            self._cursor = bisect.bisect_right(self._starts, day) - 1
        return self._configs[self._cursor]

    def reset_cursor(self) -> None:
        self._cursor = 0

    def segments(self, horizon: int) -> Iterator[Tuple[int, int, DnsConfig]]:
        """Yield ``(start, end_exclusive, config)`` segments while alive."""
        first, last = self.lifespan(horizon)
        if first >= last:
            return
        for index, start in enumerate(self._starts):
            end = (
                self._starts[index + 1]
                if index + 1 < len(self._starts)
                else last
            )
            start = max(start, first)
            end = min(end, last)
            if start < end:
                yield start, end, self._configs[index]

    @property
    def change_days(self) -> List[int]:
        """The days on which the configuration changes (segment starts)."""
        return list(self._starts)
