"""The calibrated "paper world": populations, adoption, and anomalies.

All targets are expressed in **paper units** (absolute domain counts as
reported or visually estimated from the paper's figures) and divided by
``ScenarioConfig.scale``. The default scale of 1000 yields a ~140k-domain
world whose *shapes* — growth ratios, method mixes, anomaly calendar,
peak-duration quantiles — match the paper's; absolute counts are 1/1000th.

Calibration sources:

* zone sizes and growth: §4.2 ("from about 140M to 152M domains", 1.09×);
* namespace shares: Fig. 4 (com 82.47 %, net 10.33 %, org 7.21 %) and the
  DPS-use skew (com 85.71 %, net 8.22 %, org 6.07 %);
* per-provider quiet levels and method mixes: Fig. 3 and §4.3 (CloudFlare
  ~75 % delegation; Incapsula ~0.02 % delegation; Verisign delegation >
  diversion during the first eleven months);
* the third-party anomaly calendar: §4.4.1 with the paper's dates and
  domain counts (Wix 1.76M and 1.1M, ENOM/ZOHO ≤700k, Namecheap ~247k,
  Sedo ~716k on 22 Nov 2015, Fabulous ~355k, SiteMatrix ~170k);
* on-demand peak-duration P80 targets: Fig. 8 (Neustar 4d, Level 3 4d,
  CenturyLink 6d, Akamai 10d, Incapsula 11d, Verisign 16d, DOSarrest 27d,
  CloudFlare 31d, F5 79d);
* .nl and Alexa: §4.2 / Fig. 6 (10.5 % vs 1.8 %; 11.8 %).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.world.attacks import AttackModel
from repro.world.domain import DnsConfig, DomainTimeline, Method
from repro.world.namespace import ChurnParameters, TldRegistry
from repro.world.entities import (
    HostingProvider,
    Organization,
    provision_organization,
)
from repro.world.ipam import stable_hash
from repro.world.providers import DPSProvider, build_paper_providers
from repro.world.thirdparty import DiversionWindow, ThirdParty
from repro.world.timeline import CCTLD_START_DAY, GTLD_DAYS
from repro.world.world import World

GTLD_SHARES = {"com": 0.8247, "net": 0.1033, "org": 0.0721}
DPS_TLD_SKEW = {"com": 0.8571, "net": 0.0822, "org": 0.0607}

#: (start, end) always-on customer targets in paper units (thousands of
#: domains ×1000), per provider — quiet levels read off Fig. 3.
ORGANIC_TARGETS: Dict[str, Tuple[int, int]] = {
    "CloudFlare": (2_200_000, 3_300_000),
    "Incapsula": (120_000, 230_000),
    "Verisign": (280_000, 360_000),
    "Akamai": (250_000, 290_000),
    "Neustar": (120_000, 140_000),
    "CenturyLink": (60_000, 65_000),
    "DOSarrest": (40_000, 60_000),
    "F5 Networks": (15_000, 15_000),
    "Level 3": (60_000, 70_000),
}

#: Method mixes per provider: (method, weight, divert).
METHOD_MIXES: Dict[str, Tuple[Tuple[Method, float, bool], ...]] = {
    "CloudFlare": (
        (Method.NS_DELEGATION, 0.75, True),
        (Method.CNAME, 0.24, True),
        (Method.A_RECORD, 0.01, True),
    ),
    "Incapsula": (
        (Method.CNAME, 0.9995, True),
        (Method.NS_DELEGATION, 0.0005, True),
    ),
    "Verisign": (
        (Method.NS_DELEGATION, 0.55, False),  # Managed DNS, no diversion
        (Method.NS_DELEGATION, 0.35, True),
        (Method.A_RECORD, 0.10, True),
    ),
    "Akamai": (
        (Method.CNAME, 0.80, True),
        (Method.NS_DELEGATION, 0.20, True),
    ),
    "Neustar": (
        (Method.NS_DELEGATION, 0.60, True),
        (Method.CNAME, 0.30, True),
        (Method.A_RECORD, 0.10, True),
    ),
    "CenturyLink": (
        (Method.NS_DELEGATION, 0.50, True),
        (Method.A_RECORD, 0.50, True),
    ),
    "DOSarrest": ((Method.A_RECORD, 1.0, True),),
    "F5 Networks": ((Method.A_RECORD, 1.0, True),),
    "Level 3": (
        (Method.NS_DELEGATION, 0.40, True),
        (Method.A_RECORD, 0.60, True),
    ),
}

#: On-demand populations (paper units) and Fig. 8 P80 duration targets.
ON_DEMAND_TARGETS: Dict[str, Tuple[int, int]] = {
    "Neustar": (60_000, 4),
    "Level 3": (25_000, 4),
    "CenturyLink": (30_000, 6),
    "Akamai": (30_000, 10),
    "Incapsula": (25_000, 11),
    "Verisign": (30_000, 16),
    "DOSarrest": (15_000, 27),
    "CloudFlare": (40_000, 31),
    "F5 Networks": (8_000, 79),
}


@dataclass
class ScenarioConfig:
    """Knobs for building the paper world."""

    #: Divide every paper-unit count by this (1000 → ~140k domains).
    scale: int = 1000
    seed: int = 2016
    horizon: int = GTLD_DAYS
    hoster_count: int = 25
    #: Geometric per-day deletion probability for churn domains.
    deletion_rate: float = 2.0e-4
    #: Fraction of the day-0 always-on cohort that later abandons.
    abandon_fraction: float = 0.03
    #: When False, build the *counterfactual calm world*: third parties
    #: keep their base states and permanent migrations, but all transient
    #: diversion windows, outages, and on-demand attack mitigation are
    #: dropped. Comparing the calm world's true growth with the cleaned
    #: estimate from the full world validates the §4.2 anomaly cleaning.
    include_transient_anomalies: bool = True

    def scaled(self, paper_count: float, minimum: int = 1) -> int:
        """A paper-unit count brought to this scenario's scale."""
        return max(minimum, round(paper_count / self.scale))


def build_paper_world(config: Optional[ScenarioConfig] = None) -> World:
    """Build the full calibrated world. Deterministic for a given config."""
    config = config or ScenarioConfig()
    builder = _ScenarioBuilder(config)
    return builder.build()


class _ScenarioBuilder:
    """Stepwise construction of the paper world."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.world = World(horizon=config.horizon)
        self.hosters: List[HostingProvider] = []
        self.providers: Dict[str, DPSProvider] = {}
        self._counter = 0
        #: Names eligible for organic protection (not third-party owned).
        self._pool: Dict[str, List[str]] = {"com": [], "net": [], "org": []}
        #: Adoption day per organically protected domain (for Alexa).
        self.adoption_days: Dict[str, int] = {}
        #: Organic adopters that later abandon their provider.
        self.abandoned: set = set()
        self._protected: set = set()

    # -- entry point ---------------------------------------------------------

    def build(self) -> World:
        self._build_infrastructure()
        self._build_populations()
        self._build_third_parties()
        self._assign_organic_adoption()
        self._assign_on_demand()
        self._build_nl()
        self._build_alexa()
        return self.world

    # -- infrastructure -----------------------------------------------------------

    def _build_infrastructure(self) -> None:
        world = self.world
        self.providers = build_paper_providers(
            world.as_registry, world.allocator
        )
        world.providers = self.providers
        for provider in self.providers.values():
            world.announce(provider)
            for sld in provider.ns_slds + provider.cname_slds:
                world.register_ns_owner(sld, provider)

        for index in range(self.config.hoster_count):
            hoster = HostingProvider(
                name=f"HostCo-{index + 1}",
                ns_sld=f"hostco{index + 1}-dns.com",
                dual_stack=(index % 5 == 0),
            )
            provision_organization(
                hoster,
                world.as_registry,
                world.allocator,
                prefixlen=18,
                v6=hoster.dual_stack,
            )
            world.announce(hoster)
            world.register_ns_owner(hoster.ns_sld, hoster)
            self.hosters.append(hoster)
            world.hosters.append(hoster)

        self.amazon = Organization(name="Amazon.com, Inc.")
        provision_organization(
            self.amazon, world.as_registry, world.allocator,
            prefixlen=16, asn=14618,
        )
        world.announce(self.amazon)
        world.register_ns_owner("amazonaws.com", self.amazon)

        world.tld_windows = {
            "com": (0, self.config.horizon),
            "net": (0, self.config.horizon),
            "org": (0, self.config.horizon),
            "nl": (
                CCTLD_START_DAY,
                self.config.horizon - CCTLD_START_DAY,
            ),
        }

    # -- churn populations -----------------------------------------------------------

    def _new_name(self, tld: str) -> str:
        self._counter += 1
        return f"d{self._counter:07d}.{tld}"

    def _pick_hoster(self) -> HostingProvider:
        # Zipf-ish popularity: hoster k with weight 1/(k+1).
        weights = [1.0 / (k + 1) for k in range(len(self.hosters))]
        return self.rng.choices(self.hosters, weights=weights, k=1)[0]

    def _add_churn_domain(
        self, tld: str, created: int, deleted: Optional[int],
        name: Optional[str] = None,
    ) -> DomainTimeline:
        name = name if name is not None else self._new_name(tld)
        hoster = self._pick_hoster()
        timeline = DomainTimeline(
            name=name,
            tld=tld,
            created=created,
            base_config=hoster.base_config(name),
            deleted=deleted,
        )
        self.world.add_domain(timeline)
        if deleted is None and tld in self._pool:
            self._pool[tld].append(name)
        return timeline

    def _build_populations(self) -> None:
        """Initial gTLD zones plus daily churn hitting 1.09× growth."""
        config = self.config
        start_total = config.scaled(140_000_000)
        end_total = config.scaled(152_300_000)
        for tld, share in GTLD_SHARES.items():
            registry = TldRegistry(
                tld=tld,
                parameters=ChurnParameters(
                    initial=round(start_total * share),
                    target_end=round(end_total * share),
                    horizon=config.horizon,
                    deletion_rate=config.deletion_rate,
                ),
                rng=self.rng,
                name_factory=self._new_name,
            )
            for name, created, deleted in registry.population():
                self._add_churn_domain(tld, created, deleted, name=name)

    # -- third parties (§4.4.1 calendar) ------------------------------------------

    def _third_party_org(
        self, name: str, asn: Optional[int], prefix_count: int = 2,
        prefixlen: int = 22,
    ) -> Organization:
        org = Organization(name=name)
        provision_organization(
            org, self.world.as_registry, self.world.allocator,
            prefix_count=prefix_count, prefixlen=prefixlen, asn=asn,
        )
        return org

    def _claim_domains(self, count: int, tld: str = "com") -> List[str]:
        """Permanently assign churn-pool domains to a third party.

        Third parties existed before the study, so they claim from the
        front of the pool — the day-0 cohort — not from late churn births.
        """
        pool = self._pool[tld]
        if count > len(pool):
            raise ValueError(f"not enough {tld} domains to claim {count}")
        claimed = pool[:count]
        del pool[:count]
        self._protected.update(claimed)
        return claimed

    def _build_third_parties(self) -> None:
        config = self.config
        world = self.world
        providers = self.providers

        # ---- Wix: swings between F5 and Incapsula (footnotes 11, 17).
        wix = self._third_party_org("Wix.com Ltd", asn=58182)
        world.register_ns_owner("wixdns.net", wix)
        wix_prefixes = tuple(str(p) for p in wix.prefixes)
        incapsula_asn = frozenset({providers["Incapsula"].primary_asn()})
        f5_asn = frozenset({providers["F5 Networks"].primary_asn()})

        def wix_base(domain: str) -> DnsConfig:
            token = f"site-{stable_hash(domain) % 10**6:06d}"
            aws_edge = self.amazon.host_address(domain)
            return DnsConfig(
                ns_names=("ns1.wixdns.net", "ns2.wixdns.net"),
                apex_ips=(aws_edge,),
                www_cnames=(f"{token}.wixsite.amazonaws.com",),
                www_ips=(aws_edge,),
            )

        def wix_diverted(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=("ns1.wixdns.net", "ns2.wixdns.net"),
                apex_ips=(wix.host_address(domain),),
                www_ips=(wix.host_address("www." + domain),),
            )

        def wix_window(
            start: int, end: Optional[int], asns: FrozenSet[int],
            fraction: float, seed: int,
        ) -> DiversionWindow:
            provider_name = (
                "Incapsula" if asns == incapsula_asn else "F5 Networks"
            )
            return DiversionWindow(
                start=start,
                end=end,
                diverted=wix_diverted,
                fraction=fraction,
                seed=seed,
                routing=tuple((p, asns) for p in wix_prefixes),
                provider=provider_name,
                group_hint="ns:wixdns.net",
            )

        wix_party = ThirdParty(
            name="Wix",
            base=wix_base,
            domains=self._claim_domains(config.scaled(1_800_000)),
            windows=[
                # Early March 2015: a diverted cohort moves F5 → Incapsula
                # (the 5 Mar 2015 peak of ~1.1M names, with the opposing
                # F5 trough).
                wix_window(0, 4, f5_asn, 0.62, seed=11),
                wix_window(4, 11, incapsula_asn, 0.62, seed=11),
                # May–June 2015 plateau, same cohort (Fig. 7's point).
                wix_window(61, 122, incapsula_asn, 0.62, seed=11),
                # Frequent short Incapsula swings of the same cohort —
                # these dominate the Fig. 8 duration CDF (P80 ≈ 11d).
                wix_window(140, 147, incapsula_asn, 0.62, seed=11),
                wix_window(160, 169, incapsula_asn, 0.62, seed=11),
                # A long F5 episode (F5's Fig. 8 P80 is 79 days).
                wix_window(175, 255, f5_asn, 0.45, seed=12),
                wix_window(262, 268, incapsula_asn, 0.62, seed=11),
                wix_window(290, 298, incapsula_asn, 0.55, seed=13),
                wix_window(310, 317, incapsula_asn, 0.62, seed=11),
                wix_window(330, 336, f5_asn, 0.40, seed=14),
                wix_window(355, 363, incapsula_asn, 0.62, seed=11),
                # April 2016: the 1.76M-name Incapsula peak (cf. ①).
                wix_window(407, 415, incapsula_asn, 0.98, seed=15),
                wix_window(450, 458, incapsula_asn, 0.62, seed=11),
                # June–July 2016 swing.
                wix_window(490, 500, incapsula_asn, 0.50, seed=16),
                wix_window(520, 527, incapsula_asn, 0.62, seed=11),
            ],
        )
        world.thirdparties["Wix"] = wix_party

        # ---- ENOM: /24s route to Verisign during diversion (footnote 13).
        enom = self._third_party_org(
            "eNom, Incorporated", asn=21740, prefix_count=2, prefixlen=24
        )
        world.register_ns_owner("enomdns.com", enom)
        enom_prefixes = tuple(str(p) for p in enom.prefixes)
        verisign_asn = frozenset({26415})
        enom_base_routing = tuple(
            (p, frozenset({21740})) for p in enom_prefixes
        )

        def enom_base(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=("ns1.enomdns.com", "ns2.enomdns.com"),
                apex_ips=(enom.host_address(domain),),
                www_ips=(enom.host_address(domain),),
            )

        def enom_bgp_window(start: int, end: int, seed: int) -> DiversionWindow:
            return DiversionWindow(
                start=start,
                end=end,
                diverted=None,  # BGP-only: DNS untouched
                seed=seed,
                routing=tuple((p, verisign_asn) for p in enom_prefixes),
                provider="Verisign",
                group_hint="ns:enomdns.com",
            )

        world.thirdparties["ENOM"] = ThirdParty(
            name="ENOM",
            base=enom_base,
            domains=self._claim_domains(config.scaled(500_000)),
            base_routing=enom_base_routing,
            windows=[
                enom_bgp_window(80, 101, seed=21),
                enom_bgp_window(152, 163, seed=22),
                enom_bgp_window(235, 256, seed=23),
                enom_bgp_window(320, 341, seed=24),
                enom_bgp_window(425, 446, seed=25),
                enom_bgp_window(505, 520, seed=26),
            ],
        )

        # ---- ZOHO: two prefixes normally in AS2639 (footnote 13).
        zoho = self._third_party_org(
            "ZOHO Corporation", asn=2639, prefix_count=2, prefixlen=23
        )
        world.register_ns_owner("zohodns.com", zoho)
        zoho_prefixes = tuple(str(p) for p in zoho.prefixes)

        def zoho_base(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=("ns1.zohodns.com", "ns2.zohodns.com"),
                apex_ips=(zoho.host_address(domain),),
                www_ips=(zoho.host_address(domain),),
            )

        world.thirdparties["ZOHO"] = ThirdParty(
            name="ZOHO",
            base=zoho_base,
            domains=self._claim_domains(config.scaled(200_000)),
            base_routing=tuple((p, frozenset({2639})) for p in zoho_prefixes),
            windows=[
                DiversionWindow(
                    start=start, end=end, diverted=None, seed=seed,
                    routing=tuple((p, verisign_asn) for p in zoho_prefixes),
                    provider="Verisign",
                    group_hint="ns:zohodns.com",
                )
                for start, end, seed in (
                    (120, 136, 31), (262, 272, 32), (455, 472, 33),
                )
            ],
        )

        # ---- Namecheap: registrar-servers.com NS starts answering
        #      CloudFlare-announced addresses (Feb 2016, cf. ③).
        namecheap = self._third_party_org("Namecheap, Inc.", asn=22612)
        world.register_ns_owner("registrar-servers.com", namecheap)
        cloudflare = providers["CloudFlare"]

        def namecheap_base(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=(
                    "dns1.registrar-servers.com",
                    "dns2.registrar-servers.com",
                ),
                apex_ips=(namecheap.host_address(domain),),
                www_ips=(namecheap.host_address(domain),),
            )

        def namecheap_diverted(domain: str) -> DnsConfig:
            shared = cloudflare.shared_addresses(domain)
            return DnsConfig(
                ns_names=(
                    "dns1.registrar-servers.com",
                    "dns2.registrar-servers.com",
                ),
                apex_ips=shared,
                www_ips=shared,
            )

        world.thirdparties["Namecheap"] = ThirdParty(
            name="Namecheap",
            base=namecheap_base,
            domains=self._claim_domains(config.scaled(247_000)),
            windows=[
                DiversionWindow(
                    start=340, end=355, diverted=namecheap_diverted, seed=41,
                    provider="CloudFlare",
                    group_hint="ns:registrar-servers.com",
                )
            ],
        )

        # ---- Sedo Domain Parking: parked pages behind Akamai; the
        #      22 Nov 2015 DNS issue makes them unmeasurable for a day.
        sedo = self._third_party_org("Sedo GmbH", asn=47846, prefix_count=1)
        world.register_ns_owner("sedoparking.com", sedo)
        akamai = providers["Akamai"]

        def sedo_base(domain: str) -> DnsConfig:
            shared = akamai.shared_addresses(domain)
            return DnsConfig(
                ns_names=("ns1.sedoparking.com", "ns2.sedoparking.com"),
                apex_ips=shared,
                www_ips=shared,
            )

        sedo_party = ThirdParty(
            name="Sedo",
            base=sedo_base,
            domains=self._claim_domains(config.scaled(716_000)),
        )
        sedo_party.dark_days.append((266, 267))  # 2015-11-22
        world.thirdparties["Sedo"] = sedo_party

        # ---- Fabulous: ~355k domains leave CenturyLink in Feb 2016 (⑤).
        fabulous = self._third_party_org("Fabulous.com Pty Ltd", asn=24155)
        world.register_ns_owner("fabulous-dns.com", fabulous)
        centurylink = providers["CenturyLink"]

        def fabulous_base(domain: str) -> DnsConfig:
            shared = centurylink.shared_addresses(domain)
            return DnsConfig(
                ns_names=("ns1.fabulous-dns.com", "ns2.fabulous-dns.com"),
                apex_ips=shared,
                www_ips=shared,
            )

        def fabulous_after(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=("ns1.fabulous-dns.com", "ns2.fabulous-dns.com"),
                apex_ips=(fabulous.host_address(domain),),
                www_ips=(fabulous.host_address(domain),),
            )

        world.thirdparties["Fabulous"] = ThirdParty(
            name="Fabulous",
            base=fabulous_base,
            domains=self._claim_domains(config.scaled(355_000)),
            windows=[
                DiversionWindow(
                    start=345, end=None, diverted=fabulous_after, seed=51,
                    jitter=2,
                    provider="CenturyLink",
                    group_hint="ns:fabulous-dns.com",
                )
            ],
        )

        # ---- SiteMatrix: a domainer moves ~170k names to Incapsula in
        #      June 2016 (cf. ②), permanently.
        sitematrix = self._third_party_org("SiteMatrix Fund", asn=64000)
        world.register_ns_owner("sitematrixdns.com", sitematrix)
        incapsula = providers["Incapsula"]

        def sitematrix_base(domain: str) -> DnsConfig:
            return DnsConfig(
                ns_names=("ns1.sitematrixdns.com", "ns2.sitematrixdns.com"),
                apex_ips=(sitematrix.host_address(domain),),
                www_ips=(sitematrix.host_address(domain),),
            )

        def sitematrix_after(domain: str) -> DnsConfig:
            shared = incapsula.shared_addresses(domain)
            return DnsConfig(
                ns_names=("ns1.sitematrixdns.com", "ns2.sitematrixdns.com"),
                apex_ips=shared,
                www_cnames=(incapsula.cname_target(domain),),
                www_ips=shared,
            )

        world.thirdparties["SiteMatrix"] = ThirdParty(
            name="SiteMatrix",
            base=sitematrix_base,
            domains=self._claim_domains(config.scaled(170_000)),
            windows=[
                DiversionWindow(
                    start=478, end=None, diverted=sitematrix_after, seed=61,
                    provider="Incapsula",
                    group_hint="ns:sitematrixdns.com",
                )
            ],
        )

        # Seed every third-party domain's base configuration, then apply
        # the behaviour calendars (the calm world keeps only the permanent
        # migrations).
        for party in world.thirdparties.values():
            for domain_name in party.domains:
                timeline = world.domains[domain_name]
                timeline.set_config(timeline.created, party.base(domain_name))
            if not config.include_transient_anomalies:
                party.windows = [
                    window for window in party.windows if window.end is None
                ]
                party.dark_days.clear()
            party.apply(world, config.horizon)

    # -- organic adoption -----------------------------------------------------------

    def _protection_tld(self, rng: Optional[random.Random] = None) -> str:
        rng = rng if rng is not None else self.rng
        tlds = list(DPS_TLD_SKEW)
        weights = [DPS_TLD_SKEW[t] for t in tlds]
        return rng.choices(tlds, weights=weights, k=1)[0]

    def _take_pool_domain(
        self,
        tld: Optional[str] = None,
        created_by: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> str:
        """Claim an unprotected pool domain, optionally created by a day."""
        rng = rng if rng is not None else self.rng
        tld = tld or self._protection_tld(rng)
        pool = self._pool[tld]
        attempts = 0
        while pool and attempts < 10_000:
            index = rng.randrange(len(pool))
            name = pool[index]
            attempts += 1
            if (
                created_by is not None
                and self.world.domains[name].created > created_by
            ):
                continue
            pool[index] = pool[-1]
            pool.pop()
            self._protected.add(name)
            return name
        raise ValueError(f"pool for {tld} exhausted")

    def _pick_method(self, provider_name: str) -> Tuple[Method, bool]:
        mixes = METHOD_MIXES[provider_name]
        weights = [weight for _, weight, _ in mixes]
        method, _, divert = self.rng.choices(mixes, weights=weights, k=1)[0]
        return method, divert

    def _protect_from(
        self, name: str, provider: DPSProvider, day: int,
        method: Method, divert: bool,
    ) -> None:
        timeline = self.world.domains[name]
        day = max(day, timeline.created)
        base = timeline.config_at(day)
        timeline.set_config(
            day, provider.protect(base, name, method, divert=divert)
        )
        self.adoption_days[name] = day

    def _assign_organic_adoption(self) -> None:
        config = self.config
        for provider_name, (start_paper, end_paper) in ORGANIC_TARGETS.items():
            provider = self.providers[provider_name]
            start_count = config.scaled(start_paper)
            end_count = config.scaled(end_paper)
            # Day-0 cohort.
            cohort: List[str] = []
            for _ in range(start_count):
                name = self._take_pool_domain(created_by=0)
                method, divert = self._pick_method(provider_name)
                self._protect_from(name, provider, 0, method, divert)
                cohort.append(name)
            # A few abandon mid-study (outflux for Fig. 7).
            abandon_count = int(len(cohort) * config.abandon_fraction)
            for name in self.rng.sample(cohort, abandon_count):
                timeline = self.world.domains[name]
                leave_day = self.rng.randrange(60, config.horizon - 30)
                hoster = self._pick_hoster()
                timeline.set_config(leave_day, hoster.base_config(name))
                self.abandoned.add(name)
            # Arrivals spread over the study (CloudFlare-style influx),
            # topped up to compensate the abandoners.
            arrivals = max(0, end_count - start_count) + abandon_count
            for _ in range(arrivals):
                day = self.rng.randrange(1, config.horizon)
                name = self._take_pool_domain(created_by=day)
                method, divert = self._pick_method(provider_name)
                self._protect_from(name, provider, day, method, divert)

    # -- on-demand populations (Fig. 8, driven by §2.3 attack episodes) -----

    def _assign_on_demand(self) -> None:
        """On-demand customers divert while under (simulated) attack.

        Each customer gets an :class:`~repro.world.attacks.AttackModel`
        calibrated to the provider's Fig. 8 P80; the resulting mitigation
        windows become A-record diversion episodes.
        """
        config = self.config
        if not config.include_transient_anomalies:
            return
        # A dedicated stream keeps the calm world (which skips this step
        # entirely) byte-identical everywhere else.
        od_rng = random.Random(config.seed ^ 0x0D0D)
        for provider_name, (paper_count, p80) in ON_DEMAND_TARGETS.items():
            provider = self.providers[provider_name]
            count = config.scaled(paper_count)
            for _ in range(count):
                name = self._take_pool_domain(created_by=0, rng=od_rng)
                timeline = self.world.domains[name]
                base = timeline.config_at(timeline.created)
                model = AttackModel(
                    rng=random.Random(od_rng.getrandbits(32)),
                    p80_days=p80,
                    mean_gap_days=30.0,
                )
                windows = model.mitigation_windows(
                    start=timeline.created, horizon=config.horizon - 1,
                )
                diverted = provider.protect(
                    base, name, Method.A_RECORD, divert=True
                )
                for window in windows:
                    timeline.set_config(window.start, diverted)
                    timeline.set_config(window.end, base)

    # -- .nl and Alexa ---------------------------------------------------------------

    def _build_nl(self) -> None:
        config = self.config
        window_start = CCTLD_START_DAY
        window_days = config.horizon - window_start
        initial = config.scaled(5_750_000)
        self._pool["nl"] = []
        for _ in range(initial):
            name = self._new_name("nl")
            hoster = self._pick_hoster()
            timeline = DomainTimeline(
                name=name, tld="nl", created=0,
                base_config=hoster.base_config(name),
            )
            self.world.add_domain(timeline)
            self._pool["nl"].append(name)
        # 1.8 % zone growth over the window: steady creations.
        extra = round(initial * 0.018)
        carry = 0.0
        per_day = extra / window_days
        for day in range(window_start, config.horizon):
            carry += per_day
            births = int(carry)
            carry -= births
            for _ in range(births):
                name = self._new_name("nl")
                hoster = self._pick_hoster()
                self.world.add_domain(
                    DomainTimeline(
                        name=name, tld="nl", created=day,
                        base_config=hoster.base_config(name),
                    )
                )
        # DPS adoption in .nl: baseline before the window, +10.5 % inside.
        baseline = config.scaled(100_000)
        growth = round(baseline * 0.105)
        cloudflare = self.providers["CloudFlare"]
        for index in range(baseline + growth):
            method, divert = self._pick_method("CloudFlare")
            if index < baseline:
                day = 0
            else:
                day = self.rng.randrange(window_start, config.horizon)
            name = self._take_pool_domain("nl", created_by=day)
            self._protect_from(name, cloudflare, day, method, divert)

    def _build_alexa(self) -> None:
        """A daily-churning popularity ranking, Alexa-style.

        A stable *core* (the perennially popular sites, where the DPS
        adopters live) is on the list every day; the remaining list slots
        rotate through a larger *tail* of names, so the union of names
        over the window (Table 1's 2.2M unique SLDs) far exceeds the
        daily list size (1M).
        """
        config = self.config
        window_start = CCTLD_START_DAY
        window_days = config.horizon - window_start
        daily_size = config.scaled(1_000_000)
        unique_target = max(config.scaled(2_200_000), daily_size)

        core: List[str] = []
        # Core members protected before the window (the baseline level).
        baseline = config.scaled(75_000)
        protected_pool = [
            name
            for name, day in self.adoption_days.items()
            if day < window_start
            and name not in self.abandoned
            and self.world.domains[name].alive(window_start)
        ]
        core.extend(
            self.rng.sample(protected_pool, min(baseline, len(protected_pool)))
        )
        # Core members adopting inside the window (the ~11.8 % growth).
        adopters_inside = [
            name
            for name, day in self.adoption_days.items()
            if window_start <= day < config.horizon
        ]
        wanted_growth = config.scaled(75_000 * 0.118)
        core.extend(
            self.rng.sample(
                adopters_inside, min(wanted_growth, len(adopters_inside))
            )
        )
        fill_pool = [
            name
            for tld in ("com", "net", "org", "nl")
            for name in self._pool.get(tld, [])
        ]
        self.rng.shuffle(fill_pool)
        core_target = max(len(core), round(daily_size * 0.6))
        fill_iter = iter(fill_pool)
        seen = set(core)
        while len(core) < core_target:
            name = next(fill_iter)
            if name not in seen:
                seen.add(name)
                core.append(name)

        members: Dict[str, List[Tuple[int, int]]] = {
            name: [(window_start, config.horizon)] for name in core
        }
        # Rotating tail: each of the remaining slots cycles through
        # several names over the window.
        tail_slots = max(0, daily_size - len(core))
        tail_names = max(0, unique_target - len(core))
        if tail_slots and tail_names:
            per_slot = max(1, -(-tail_names // tail_slots))  # ceil
            for slot in range(tail_slots):
                boundaries = [
                    window_start + (window_days * i) // per_slot
                    for i in range(per_slot + 1)
                ]
                for start, end in zip(boundaries, boundaries[1:]):
                    if start >= end:
                        continue
                    name = next(fill_iter, None)
                    if name is None or name in seen:
                        continue
                    seen.add(name)
                    members[name] = [(start, end)]
        self.world.alexa_names = list(members)
        self.world.alexa_members = members
