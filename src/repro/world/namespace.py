"""TLD registry churn: initial cohorts, births, deaths.

The gTLD zones grew 1.09× over the study (140M → 152M names) while
individual names churned underneath. :class:`ChurnParameters` solves for
the constant daily birth rate that lands an initial cohort with geometric
deletion on a target end size; :class:`TldRegistry` then realises the
population as ``(name, created, deleted)`` rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple


@dataclass(frozen=True)
class ChurnParameters:
    """A zone's growth plan over the study horizon."""

    initial: int
    target_end: int
    horizon: int
    #: Geometric per-day deletion probability.
    deletion_rate: float

    def __post_init__(self) -> None:
        if self.initial < 0 or self.target_end < 0:
            raise ValueError("population sizes must be non-negative")
        if self.horizon < 1:
            raise ValueError("horizon must be at least one day")
        if not 0.0 <= self.deletion_rate < 1.0:
            raise ValueError("deletion_rate must be in [0, 1)")

    @property
    def survival(self) -> float:
        """P(a day-0 name is still registered at the horizon)."""
        return (1.0 - self.deletion_rate) ** self.horizon

    def expected_survivors(self) -> float:
        return self.initial * self.survival

    def _birth_weight(self) -> float:
        """``Σ_{d=1..H} (1-p)^(H-d)`` — the per-unit-birth contribution.

        The closed form ``(1-p)(1-s)/p`` underflows for tiny p, where the
        sum approaches H; switch to the limit below p ≈ 1e-9.
        """
        p = self.deletion_rate
        if p < 1e-9:
            return float(self.horizon)
        return (1.0 - p) * (1.0 - self.survival) / p

    def daily_births(self) -> float:
        """The constant birth rate b solving

        ``target_end = initial·s + b·Σ_{d=1..H} (1-p)^(H-d)``.
        """
        needed = max(0.0, self.target_end - self.expected_survivors())
        return needed / max(self._birth_weight(), 1e-12)

    def expected_end(self) -> float:
        """Sanity check: the expected zone size at the horizon."""
        return (
            self.expected_survivors()
            + self.daily_births() * self._birth_weight()
        )


class TldRegistry:
    """Realises a zone's population as creation/deletion rows."""

    def __init__(
        self,
        tld: str,
        parameters: ChurnParameters,
        rng: random.Random,
        name_factory: Callable[[str], str],
        lifetime_cap_factor: float = 2.0,
    ):
        self.tld = tld
        self.parameters = parameters
        self._rng = rng
        self._name_factory = name_factory
        self._cap = int(parameters.horizon * lifetime_cap_factor)

    def _lifetime(self) -> Optional[int]:
        """Days until deletion (exponential), or None for 'beyond cap'."""
        rate = self.parameters.deletion_rate
        if rate <= 0:
            return None
        lifetime = int(self._rng.expovariate(rate)) + 1
        return lifetime if lifetime < self._cap else None

    def population(self) -> Iterator[Tuple[str, int, Optional[int]]]:
        """Yield ``(name, created, deleted)`` for the whole study.

        ``deleted`` is None when the name outlives the horizon.
        """
        horizon = self.parameters.horizon
        for _ in range(self.parameters.initial):
            yield self._row(created=0)
        carry = 0.0
        per_day = self.parameters.daily_births()
        for day in range(1, horizon):
            carry += per_day
            births = int(carry)
            carry -= births
            for _ in range(births):
                yield self._row(created=day)

    def _row(self, created: int) -> Tuple[str, int, Optional[int]]:
        name = self._name_factory(self.tld)
        lifetime = self._lifetime()
        deleted = None
        if (
            lifetime is not None
            and created + lifetime < self.parameters.horizon
        ):
            deleted = created + lifetime
        return name, created, deleted
