"""The assembled simulated internet: domains, routing, and DNS hosting.

:class:`World` is what the measurement platform measures. It exposes:

* zone listings per TLD per day (what the registry zone files provide);
* per-domain DNS configurations per day (what active measurement observes);
* a day-indexed BGP view exported as pfx2as snapshots (what Routeviews
  provides for ASN enrichment);
* full DNS materialisation of any single day — real zones on real
  (simulated) authoritative servers behind a lossy datagram network — for
  the full-fidelity wire prober.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.dnscore.name import DomainName
from repro.dnscore.records import SOAData
from repro.dnscore.rrtypes import RRType
from repro.dnscore.server import AuthoritativeServer
from repro.dnscore.transport import SimulatedNetwork
from repro.dnscore.zone import Zone
from repro.routing.asn import ASRegistry
from repro.routing.pfx2as import Pfx2As
from repro.routing.table import RoutingTable
from repro.world.domain import DnsConfig, DomainTimeline
from repro.world.entities import HostingProvider, Organization
from repro.world.events import EventLog
from repro.world.ipam import PrefixAllocator, address_in
from repro.world.providers import DPSProvider
from repro.world.thirdparty import ThirdParty


class World:
    """A complete simulated internet over a study period."""

    def __init__(self, horizon: int):
        #: Number of study days the world covers (day 0 .. horizon-1).
        self.horizon = horizon
        self.as_registry = ASRegistry()
        self.allocator = PrefixAllocator()
        self.providers: Dict[str, DPSProvider] = {}
        self.hosters: List[HostingProvider] = []
        self.thirdparties: Dict[str, ThirdParty] = {}
        self.domains: Dict[str, DomainTimeline] = {}
        #: TLD → (start_day, measured_days).
        self.tld_windows: Dict[str, Tuple[int, int]] = {}
        #: All names ever on the Alexa-style list.
        self.alexa_names: List[str] = []
        #: Membership windows per name: ``[(start, end), ...]`` study days.
        #: Empty dict means every name is a member for the whole window.
        self.alexa_members: Dict[str, List[Tuple[int, int]]] = {}
        #: SLD text → organisation that runs name servers under it.
        self.ns_owners: Dict[str, Organization] = {}
        #: Ground-truth log of scripted mass events (never read by the
        #: methodology; used to validate attribution).
        self.event_log = EventLog()
        #: Routing timeline: (day, prefix_text, origin_set), sorted lazily.
        self._routing_events: List[Tuple[int, str, FrozenSet[int]]] = []
        self._routing_sorted = False
        self._pfx2as_cache: Dict[int, Pfx2As] = {}
        #: Infrastructure addressing for roots and TLD servers.
        self.infra_prefix = self.allocator.allocate(24)

    # -- population -------------------------------------------------------

    def add_domain(self, timeline: DomainTimeline) -> DomainTimeline:
        if timeline.name in self.domains:
            raise ValueError(f"duplicate domain {timeline.name}")
        self.domains[timeline.name] = timeline
        return timeline

    def register_ns_owner(self, sld: str, org: Organization) -> None:
        """Record that *org* runs the name servers under *sld*."""
        self.ns_owners[sld] = org

    def add_routing_event(
        self, day: int, prefix: str, origins: FrozenSet[int]
    ) -> None:
        """From *day* on, *prefix* is announced by *origins* (empty = gone)."""
        self._routing_events.append((day, prefix, frozenset(origins)))
        self._routing_sorted = False
        self._pfx2as_cache.clear()

    def announce(self, org: Organization) -> None:
        """Announce all of *org*'s prefixes from day 0.

        DPS providers announce each prefix from the matching AS number;
        other organisations use their primary ASN.
        """
        for prefix in org.prefixes:
            origin = org.primary_asn()
            if isinstance(org, DPSProvider):
                origin = org.prefix_origins.get(prefix, origin)
            self.add_routing_event(0, str(prefix), frozenset({origin}))
        for prefix6 in org.prefixes_v6:
            self.add_routing_event(
                0, str(prefix6), frozenset({org.primary_asn()})
            )

    # -- zone listings (what registry zone files provide) ---------------------

    def zone_names(self, tld: str, day: int) -> Iterator[str]:
        """The names present in *tld*'s zone file on *day*."""
        for timeline in self.domains.values():
            if timeline.tld == tld and timeline.alive(day):
                yield timeline.name

    def zone_size_series(self, tld: str) -> List[int]:
        """Daily zone size for *tld* over the whole horizon (O(domains))."""
        deltas = [0] * (self.horizon + 1)
        for timeline in self.domains.values():
            if timeline.tld != tld:
                continue
            first, last = timeline.lifespan(self.horizon)
            if first < last:
                deltas[first] += 1
                deltas[last] -= 1
        sizes: List[int] = []
        running = 0
        for day in range(self.horizon):
            running += deltas[day]
            sizes.append(running)
        return sizes

    def domains_in_tld(self, tld: str) -> Iterator[DomainTimeline]:
        for timeline in self.domains.values():
            if timeline.tld == tld:
                yield timeline

    def unique_slds(self, tld: str) -> int:
        """Unique SLDs ever observed in *tld* (Table 1's #SLDs column)."""
        return sum(1 for _ in self.domains_in_tld(tld))

    # -- the Alexa-style ranking ------------------------------------------------

    def alexa_membership(self, name: str) -> List[Tuple[int, int]]:
        """The ranking-membership windows of *name* (may be empty)."""
        if not self.alexa_members:
            # Fixed-list worlds: every listed name is always a member.
            if name in self.alexa_names:
                return [(0, self.horizon)]
            return []
        return self.alexa_members.get(name, [])

    def alexa_list(self, day: int) -> List[str]:
        """The ranking's members on *day* (alive domains only)."""
        members = []
        for name in self.alexa_names:
            timeline = self.domains.get(name)
            if timeline is None or not timeline.alive(day):
                continue
            if any(
                start <= day < end
                for start, end in self.alexa_membership(name)
            ):
                members.append(name)
        return members

    def alexa_member_days(self, start: int, days: int) -> int:
        """Σ membership days over the window (Table 1 accounting)."""
        total = 0
        for name in self.alexa_names:
            for window_start, window_end in self.alexa_membership(name):
                lo = max(window_start, start)
                hi = min(window_end, start + days)
                if lo < hi:
                    total += hi - lo
        return total

    # -- routing view ------------------------------------------------------------

    def _sorted_routing_events(self) -> List[Tuple[int, str, FrozenSet[int]]]:
        if not self._routing_sorted:
            self._routing_events.sort(key=lambda event: event[0])
            self._routing_sorted = True
        return self._routing_events

    def routing_events(self) -> Sequence[Tuple[int, str, FrozenSet[int]]]:
        """All ``(day, prefix, origins)`` events, day-ascending.

        The public read-only view of the routing timeline; consumers (ASN
        enrichment, diagnostics) must not mutate the returned sequence.
        """
        return self._sorted_routing_events()

    def pfx2as_at(self, day: int) -> Pfx2As:
        """The Routeviews-style pfx2as snapshot for *day* (cached)."""
        cached = self._pfx2as_cache.get(day)
        if cached is not None:
            return cached
        table = RoutingTable()
        current: Dict[str, FrozenSet[int]] = {}
        for event_day, prefix, origins in self._sorted_routing_events():
            if event_day > day:
                break
            current[prefix] = origins
        for prefix, origins in current.items():
            for origin in origins:
                table.announce(prefix, origin)
        snapshot = table.snapshot_pfx2as()
        self._pfx2as_cache[day] = snapshot
        return snapshot

    def routing_change_days(self) -> List[int]:
        """Days on which any announcement changes (snapshot boundaries)."""
        return sorted({event[0] for event in self._sorted_routing_events()})

    # -- single-day DNS materialisation (for the wire prober) ---------------------

    def ns_host_address(self, hostname: str) -> Optional[str]:
        """The address of a name-server hostname, via its SLD's owner."""
        name = DomainName.from_text(hostname)
        sld = name.sld()
        if sld is None:
            return None
        owner = self.ns_owners.get(sld.to_text())
        if owner is None:
            return None
        return owner.host_address(hostname)

    def materialize_dns(
        self, day: int, domain_names: Sequence[str],
        loss_rate: float = 0.0, seed: int = 0,
    ) -> Tuple[SimulatedNetwork, List[str]]:
        """Build a live DNS tree for *day* covering *domain_names*.

        Returns the simulated network and the root-server addresses. Every
        measured domain gets a real zone on a real authoritative server;
        TLD zones carry the delegations and glue; DPS CNAME targets resolve
        inside provider-run zones — so an iterative resolver sees exactly
        what OpenINTEL's resolvers saw.
        """
        builder = _DayMaterializer(self, day, loss_rate=loss_rate, seed=seed)
        for domain_name in domain_names:
            builder.add_domain(domain_name)
        return builder.finish()


def _soa_for(origin: DomainName) -> SOAData:
    mname = DomainName.from_text("ns.invalid").concat(DomainName.root())
    rname = DomainName.from_text("hostmaster.invalid")
    return SOAData(mname, rname, serial=1)


class _DayMaterializer:
    """Builds zones, servers, and the network for one study day."""

    def __init__(self, world: World, day: int, loss_rate: float, seed: int):
        self.world = world
        self.day = day
        self.network = SimulatedNetwork(loss_rate=loss_rate, seed=seed)
        self._zones: Dict[str, Zone] = {}
        #: zone origin text → list of ns hostnames serving it.
        self._zone_ns: Dict[str, List[str]] = {}
        self._ns_addresses: Dict[str, str] = {}
        self._root = self._ensure_zone("", ())
        self._infra_counter = 0
        self._servers: Dict[str, AuthoritativeServer] = {}

    # -- helpers -----------------------------------------------------------

    def _infra_address(self, key: str) -> str:
        return address_in(self.world.infra_prefix, key)

    def _ensure_zone(self, origin_text: str, ns_names: Sequence[str]) -> Zone:
        zone = self._zones.get(origin_text)
        if zone is None:
            origin = (
                DomainName.root()
                if origin_text == ""
                else DomainName.from_text(origin_text)
            )
            zone = Zone(origin, _soa_for(origin))
            self._zones[origin_text] = zone
            self._zone_ns[origin_text] = []
        for ns_name in ns_names:
            if ns_name not in self._zone_ns[origin_text]:
                self._zone_ns[origin_text].append(ns_name)
                zone.add(origin_text or ".", RRType.NS, ns_name + ".")
        return zone

    def _ns_address(self, hostname: str) -> str:
        address = self._ns_addresses.get(hostname)
        if address is None:
            address = self.world.ns_host_address(hostname)
            if address is None:
                address = self._infra_address(hostname)
            self._ns_addresses[hostname] = address
        return address

    def _ensure_tld(self, tld: str) -> Zone:
        zone = self._zones.get(tld)
        if zone is not None:
            return zone
        tld_ns = f"ns.registry-{tld}.{tld}"
        zone = self._ensure_zone(tld, (tld_ns,))
        zone.add(tld_ns, RRType.A, self._ns_address(tld_ns))
        root_ns = "ns.root-servers.org"
        self._ensure_zone("", (root_ns,))
        self._root.add(tld, RRType.NS, tld_ns + ".")
        self._root.add(tld_ns, RRType.A, self._ns_address(tld_ns))
        return zone

    def _delegate(self, zone_origin: str, child: str,
                  ns_names: Sequence[str]) -> None:
        """Add child delegation NS (+ in-bailiwick glue) to a parent zone."""
        parent = self._zones[zone_origin]
        child_name = DomainName.from_text(child)
        for ns_name in ns_names:
            existing = parent.get_rrset(child_name, RRType.NS)
            texts = existing.rdata_texts() if existing else []
            if ns_name + "." not in texts:
                parent.add(child, RRType.NS, ns_name + ".")
            ns_domain = DomainName.from_text(ns_name)
            if ns_domain.is_subdomain_of(parent.origin):
                glue = parent.get_rrset(ns_domain, RRType.A)
                if not glue:
                    parent.add(ns_name, RRType.A, self._ns_address(ns_name))

    def _ensure_ns_host_zone(self, hostname: str) -> None:
        """Make a name-server hostname itself resolvable.

        ``ns1.hostco-dns.com`` needs the ``hostco-dns.com`` zone delegated
        from ``com`` with glue, and an A record inside it.
        """
        name = DomainName.from_text(hostname)
        sld = name.sld()
        if sld is None:
            return
        sld_text = sld.to_text()
        tld = sld.labels[-1].decode()
        self._ensure_tld(tld)
        zone = self._ensure_zone(sld_text, ())
        if not self._zone_ns[sld_text]:
            # The SLD zone serves itself; its NS lives in-zone, with glue
            # in the parent (the standard in-bailiwick pattern).
            self_ns = f"ns1.{sld_text}"
            self._ensure_zone(sld_text, (self_ns,))
            if not zone.get_rrset(
                DomainName.from_text(self_ns), RRType.A
            ):
                zone.add(self_ns, RRType.A, self._ns_address(self_ns))
            self._delegate(tld, sld_text, (self_ns,))
        if not zone.get_rrset(name, RRType.A):
            zone.add(hostname, RRType.A, self._ns_address(hostname))

    # -- domain material ------------------------------------------------------

    def add_domain(self, domain_name: str) -> None:
        timeline = self.world.domains.get(domain_name)
        if timeline is None or not timeline.alive(self.day):
            return
        config = timeline.config_at(self.day)
        tld = timeline.tld
        self._ensure_tld(tld)
        if not config.ns_names:
            # Dark domain: delegated nowhere — lookups will fail.
            return
        for ns_name in config.ns_names:
            self._ensure_ns_host_zone(ns_name)
        self._delegate(tld, domain_name, config.ns_names)
        zone = self._ensure_zone(domain_name, config.ns_names)
        for address in config.apex_ips:
            zone.add(domain_name, RRType.A, address)
        for address in config.apex_ips6:
            zone.add(domain_name, RRType.AAAA, address)
        www = f"www.{domain_name}"
        if config.www_cnames:
            zone.add(www, RRType.CNAME, config.www_cnames[0] + ".")
            self._materialize_cname_chain(config)
        else:
            for address in config.www_ips:
                zone.add(www, RRType.A, address)
            for address in config.www_ips6:
                zone.add(www, RRType.AAAA, address)

    def _materialize_cname_chain(self, config: DnsConfig) -> None:
        """Host each CNAME chain element in its owner's zone."""
        chain = config.www_cnames
        for index, target_text in enumerate(chain):
            target = DomainName.from_text(target_text)
            sld = target.sld()
            if sld is None:
                continue
            sld_text = sld.to_text()
            tld = sld.labels[-1].decode()
            self._ensure_tld(tld)
            owner = self.world.ns_owners.get(sld_text)
            ns_names = (
                (f"ns1.{sld_text}", f"ns2.{sld_text}")
                if owner is not None
                else (f"ns1.{sld_text}",)
            )
            zone = self._zones.get(sld_text)
            if zone is None:
                zone = self._ensure_zone(sld_text, ns_names)
                for ns_name in ns_names:
                    zone.add(ns_name, RRType.A, self._ns_address(ns_name))
                self._delegate(tld, sld_text, ns_names)
            next_hop = chain[index + 1] if index + 1 < len(chain) else None
            if next_hop is not None:
                if not zone.get_rrset(target, RRType.CNAME):
                    zone.add(target_text, RRType.CNAME, next_hop + ".")
            else:
                if not zone.get_rrset(target, RRType.A):
                    for address in config.www_ips:
                        zone.add(target_text, RRType.A, address)
                    for address in config.www_ips6:
                        zone.add(target_text, RRType.AAAA, address)

    # -- assembly -------------------------------------------------------------

    def finish(self) -> Tuple[SimulatedNetwork, List[str]]:
        root_ns = "ns.root-servers.org"
        self._ensure_zone("", (root_ns,))
        if not self._root.get_rrset(
            DomainName.from_text(root_ns), RRType.A
        ):
            self._root.add(root_ns, RRType.A, self._ns_address(root_ns))
        # Place every zone on the server(s) of its NS hostnames.
        for origin_text, zone in self._zones.items():
            ns_names = self._zone_ns.get(origin_text) or [root_ns]
            for ns_name in ns_names:
                address = self._ns_address(ns_name)
                server = self._servers.get(address)
                if server is None:
                    server = AuthoritativeServer(ns_name)
                    self._servers[address] = server
                    self._register(address, server)
                server.attach_zone(zone)
        root_addresses = [self._ns_address(root_ns)]
        return self.network, root_addresses

    def _register(self, address: str, server: AuthoritativeServer) -> None:
        from repro.dnscore.server import make_wire_handlers

        datagram, stream = make_wire_handlers(server)
        self.network.register(
            ipaddress.ip_address(address), datagram, stream
        )
