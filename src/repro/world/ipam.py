"""IP address space management for the simulated internet.

Organisations receive prefixes from a central allocator; individual hosts
get stable addresses inside those prefixes (stable = a deterministic
function of the owning name, so re-building a world yields identical
addressing).
"""

from __future__ import annotations

import ipaddress
import zlib
from typing import Iterator, List, Union

IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


def stable_hash(text: str) -> int:
    """A deterministic 32-bit hash (CRC32) of *text*.

    Python's builtin ``hash`` is salted per process; this one is stable
    across runs, which keeps world construction reproducible.
    """
    return zlib.crc32(text.encode("ascii")) & 0xFFFFFFFF


class PrefixAllocator:
    """Hands out consecutive subnets from IPv4 and IPv6 supernets."""

    def __init__(
        self,
        pool_v4: str = "10.0.0.0/8",
        pool_v6: str = "fd00::/20",
    ):
        self._pool_v4 = ipaddress.IPv4Network(pool_v4)
        self._pool_v6 = ipaddress.IPv6Network(pool_v6)
        self._next_v4 = int(self._pool_v4.network_address)
        self._next_v6 = int(self._pool_v6.network_address)
        self.allocated: List[IPNetwork] = []

    def allocate(self, prefixlen: int) -> ipaddress.IPv4Network:
        """Allocate the next free IPv4 subnet of the given length."""
        if prefixlen < self._pool_v4.prefixlen or prefixlen > 30:
            raise ValueError(f"cannot allocate a /{prefixlen} from the pool")
        size = 2 ** (32 - prefixlen)
        # Align the cursor to the subnet size.
        if self._next_v4 % size:
            self._next_v4 += size - (self._next_v4 % size)
        network = ipaddress.IPv4Network((self._next_v4, prefixlen))
        if not network.subnet_of(self._pool_v4):
            raise RuntimeError("IPv4 pool exhausted")
        self._next_v4 += size
        self.allocated.append(network)
        return network

    def allocate_v6(self, prefixlen: int = 48) -> ipaddress.IPv6Network:
        """Allocate the next free IPv6 subnet of the given length."""
        if prefixlen < self._pool_v6.prefixlen or prefixlen > 126:
            raise ValueError(f"cannot allocate a /{prefixlen} from the pool")
        size = 2 ** (128 - prefixlen)
        if self._next_v6 % size:
            self._next_v6 += size - (self._next_v6 % size)
        network = ipaddress.IPv6Network((self._next_v6, prefixlen))
        if not network.subnet_of(self._pool_v6):
            raise RuntimeError("IPv6 pool exhausted")
        self._next_v6 += size
        self.allocated.append(network)
        return network


def address_in(network: IPNetwork, key: str) -> str:
    """A stable host address inside *network* derived from *key*.

    Network and broadcast addresses are avoided for IPv4.
    """
    host_count = network.num_addresses
    if network.version == 4 and host_count > 2:
        offset = 1 + stable_hash(key) % (host_count - 2)
    else:
        offset = stable_hash(key) % host_count
    return str(network.network_address + offset)


def addresses_in(network: IPNetwork, key: str, count: int) -> Iterator[str]:
    """*count* distinct stable addresses inside *network* for *key*."""
    seen = set()
    index = 0
    while len(seen) < count:
        address = address_in(network, f"{key}#{index}")
        index += 1
        if address in seen:
            continue
        seen.add(address)
        yield address
