"""The study calendar: day indices ↔ dates.

Day 0 is 1 March 2015, the start of the paper's gTLD measurements. The
gTLD series (.com/.net/.org) runs 550 days; the .nl and Alexa Top-1M
series start 1 March 2016 (day 366) and run 184 days (Table 1).
"""

from __future__ import annotations

import datetime

STUDY_START = datetime.date(2015, 3, 1)
GTLD_DAYS = 550
CCTLD_START_DAY = 366  # 2016-03-01
CCTLD_DAYS = 184
ALEXA_DAYS = 184

TWO_WEEKS = 14


def date_of(day: int) -> datetime.date:
    """The calendar date of study day *day*."""
    return STUDY_START + datetime.timedelta(days=day)


def day_of(date: datetime.date) -> int:
    """The study day index of *date* (may be negative before the start)."""
    return (date - STUDY_START).days


def month_label(day: int) -> str:
    """A short axis label like ``Mar '15`` for study day *day*."""
    date = date_of(day)
    return date.strftime("%b '%y")


def two_week_bucket(day: int) -> int:
    """The index of the two-week window containing *day* (Fig. 7 grouping)."""
    return day // TWO_WEEKS
