"""Third parties that toggle protection for large domain sets at once.

§4.4.1 traces the dataset's mass anomalies to parties like Wix (Web-site
platform), ENOM and Namecheap (registrars), ZOHO, Sedo (domain parking),
Fabulous and SiteMatrix (domainers). A :class:`ThirdParty` owns a block of
domains, defines their *normal* configuration, and carries a list of
:class:`DiversionWindow` entries describing when — and how — some or all of
those domains are diverted to a DPS (or, for the Sedo incident, go dark).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.world.domain import DARK_CONFIG, DnsConfig
from repro.world.ipam import stable_hash

#: Builds the configuration of one domain (by name).
ConfigBuilder = Callable[[str], DnsConfig]


@dataclass
class DiversionWindow:
    """One episode of mass behaviour over ``[start, end)`` study days.

    ``diverted`` builds the in-window configuration per domain; ``None``
    leaves the DNS untouched (a BGP-only diversion, visible solely through
    the routing table). ``routing`` lists ``(prefix, origins)`` overrides
    active during the window; outside it the party's base announcements
    apply. ``fraction`` selects a stable random subset of the party's
    domains, and ``jitter`` spreads per-domain start/end days by up to that
    many days, so mass events have realistic ramps.
    """

    start: int
    end: Optional[int]
    diverted: Optional[ConfigBuilder] = None
    fraction: float = 1.0
    jitter: int = 0
    seed: int = 0
    routing: Tuple[Tuple[str, FrozenSet[int]], ...] = ()
    #: Ground-truth metadata for the world's event log (not read by the
    #: methodology): which provider the episode involves, and the
    #: shared-infrastructure label attribution should recover.
    provider: str = ""
    group_hint: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.end is not None and self.end <= self.start:
            raise ValueError("window end must be after start")


@dataclass
class ThirdParty:
    """A mass actor: its domains, their base config, and its episodes."""

    name: str
    base: ConfigBuilder
    domains: List[str] = field(default_factory=list)
    windows: List[DiversionWindow] = field(default_factory=list)
    #: Steady-state announcements: (prefix, origins) active outside windows.
    base_routing: Tuple[Tuple[str, FrozenSet[int]], ...] = ()

    def select_domains(self, window: DiversionWindow) -> List[str]:
        """The stable subset of this party's domains a window involves."""
        if window.fraction >= 1.0:
            return list(self.domains)
        rng = random.Random((stable_hash(self.name) ^ window.seed) & 0xFFFFFFFF)
        count = max(1, int(len(self.domains) * window.fraction))
        return rng.sample(self.domains, count)

    def apply(self, world, horizon: int) -> None:
        """Write this party's behaviour into *world*'s timelines.

        Windows are applied in chronological order so overlapping episodes
        compose the way they unfolded in time.
        """
        for prefix, origins in self.base_routing:
            world.add_routing_event(0, prefix, origins)
        for window in sorted(self.windows, key=lambda w: w.start):
            involved = self.select_domains(window)
            rng = random.Random(
                (stable_hash(self.name) ^ window.seed ^ 0x5EED) & 0xFFFFFFFF
            )
            applied = 0
            for domain_name in involved:
                timeline = world.domains.get(domain_name)
                if timeline is None:
                    continue
                start = window.start
                end = window.end
                if window.jitter:
                    start += rng.randint(0, window.jitter)
                    if end is not None:
                        end += rng.randint(0, window.jitter)
                start = max(start, timeline.created)
                if not timeline.alive(start):
                    continue
                if end is not None and end <= start:
                    # The domain was born after the episode ended.
                    continue
                applied += 1
                if window.diverted is not None:
                    timeline.set_config(start, window.diverted(domain_name))
                    if end is not None and timeline.alive(end):
                        timeline.set_config(end, self.base(domain_name))
            self._log_window(world, window, applied)
            for prefix, origins in window.routing:
                world.add_routing_event(window.start, prefix, origins)
                if window.end is not None:
                    restored = self._base_origins(prefix)
                    if restored is not None:
                        world.add_routing_event(window.end, prefix, restored)
        self._apply_dark_days(world)

    def _log_window(self, world, window: DiversionWindow,
                    applied: int) -> None:
        from repro.world.events import MassEvent

        if applied == 0:
            return
        permanent = window.end is None
        world.event_log.record(
            MassEvent(
                day=window.start,
                party=self.name,
                provider=window.provider,
                kind="migration" if permanent else "divert-on",
                domains=applied,
                group_hint=window.group_hint,
            )
        )
        if not permanent:
            world.event_log.record(
                MassEvent(
                    day=window.end,
                    party=self.name,
                    provider=window.provider,
                    kind="divert-off",
                    domains=applied,
                    group_hint=window.group_hint,
                )
            )

    def _base_origins(self, prefix: str) -> Optional[FrozenSet[int]]:
        for base_prefix, origins in self.base_routing:
            if base_prefix == prefix:
                return origins
        return None

    # -- outage modelling ---------------------------------------------------

    dark_days: List[Tuple[int, int]] = field(default_factory=list)

    def _apply_dark_days(self, world) -> None:
        """Model DNS outages: every domain answers nothing for the window.

        This is the Sedo incident of 22 Nov 2015 — the measured domain
        count under the party's NS SLD dips because resolution fails.
        """
        from repro.world.events import MassEvent

        for start, end in self.dark_days:
            affected = 0
            for domain_name in self.domains:
                timeline = world.domains.get(domain_name)
                if timeline is None or not timeline.alive(start):
                    continue
                affected += 1
                timeline.set_config(start, DARK_CONFIG)
                if timeline.alive(end):
                    timeline.set_config(end, self.base(domain_name))
            if affected:
                world.event_log.record(
                    MassEvent(
                        day=start,
                        party=self.name,
                        provider="",
                        kind="outage",
                        domains=affected,
                    )
                )
