"""A closed-world internet ecosystem simulation.

This package is the stand-in for the real internet the paper measured:
TLD registries with daily churn, hosting providers, the nine DDoS
Protection Service providers with their Table 2 fingerprints, and the
scripted third parties (Web hosters, registrars, domain parkers) whose
mass protection toggles produce the anomalies of §4.4.

The representation is piecewise-constant: a domain's DNS configuration is a
timeline of ``(start_day, DnsConfig)`` segments and BGP origin changes are
day-indexed events, so a 550-day world with >100k domains is cheap to build
and query, while :meth:`World.materialize_dns` can still instantiate real
zones and authoritative servers for any single day for full-fidelity
wire-format resolution.
"""

from repro.world.timeline import (
    ALEXA_DAYS,
    CCTLD_DAYS,
    CCTLD_START_DAY,
    GTLD_DAYS,
    STUDY_START,
    date_of,
    day_of,
    month_label,
)
from repro.world.attacks import AttackEpisode, AttackModel, MitigationWindow
from repro.world.domain import DnsConfig, DomainTimeline, Method
from repro.world.events import EventLog, MassEvent
from repro.world.ipam import PrefixAllocator
from repro.world.entities import HostingProvider, Organization
from repro.world.namespace import ChurnParameters, TldRegistry
from repro.world.providers import DPSProvider, build_paper_providers
from repro.world.thirdparty import DiversionWindow, ThirdParty
from repro.world.world import World
from repro.world.scenario import ScenarioConfig, build_paper_world

__all__ = [
    "ALEXA_DAYS",
    "AttackEpisode",
    "AttackModel",
    "CCTLD_DAYS",
    "CCTLD_START_DAY",
    "ChurnParameters",
    "DPSProvider",
    "DiversionWindow",
    "DnsConfig",
    "DomainTimeline",
    "EventLog",
    "GTLD_DAYS",
    "HostingProvider",
    "MassEvent",
    "Method",
    "MitigationWindow",
    "Organization",
    "PrefixAllocator",
    "STUDY_START",
    "ScenarioConfig",
    "ThirdParty",
    "TldRegistry",
    "World",
    "build_paper_providers",
    "build_paper_world",
    "date_of",
    "day_of",
    "month_label",
]
