"""Organisations that make up the simulated internet.

An :class:`Organization` owns AS numbers and IP prefixes; a
:class:`HostingProvider` additionally runs name servers and produces the
*unprotected* base configuration for the domains it hosts.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.routing.asn import ASRegistry
from repro.world.domain import DnsConfig
from repro.world.ipam import PrefixAllocator, address_in, stable_hash


@dataclass
class Organization:
    """A network organisation: name, AS numbers, announced prefixes."""

    name: str
    asns: List[int] = field(default_factory=list)
    prefixes: List[ipaddress.IPv4Network] = field(default_factory=list)
    prefixes_v6: List[ipaddress.IPv6Network] = field(default_factory=list)

    def primary_asn(self) -> int:
        if not self.asns:
            raise ValueError(f"{self.name} has no AS numbers")
        return self.asns[0]

    def pick_prefix(self, key: str) -> ipaddress.IPv4Network:
        """A stable prefix choice for *key* among this org's prefixes."""
        if not self.prefixes:
            raise ValueError(f"{self.name} has no prefixes")
        return self.prefixes[stable_hash(key) % len(self.prefixes)]

    def host_address(self, key: str) -> str:
        """A stable host address for *key* within this org's space."""
        return address_in(self.pick_prefix(key), key)


@dataclass
class HostingProvider(Organization):
    """A Web hoster: runs name servers, hosts customer domains.

    ``ns_sld`` is the second-level domain its name-server hostnames live
    under (e.g. ``hostco-dns.com``); the fingerprint bootstrap uses these
    SLDs to tell hoster infrastructure from DPS infrastructure.
    """

    ns_sld: str = ""
    ns_count: int = 2
    dual_stack: bool = False

    def ns_names(self, key: str = "") -> Tuple[str, ...]:
        """The NS hostnames serving a domain hosted here."""
        return tuple(
            f"ns{i + 1}.{self.ns_sld}" for i in range(self.ns_count)
        )

    def ns_address(self, ns_name: str) -> str:
        """The address a given name-server hostname resolves to."""
        return self.host_address(ns_name)

    def base_config(self, domain_name: str) -> DnsConfig:
        """The unprotected configuration for *domain_name* hosted here."""
        apex = (self.host_address(domain_name),)
        apex6: Tuple[str, ...] = ()
        if self.dual_stack and self.prefixes_v6:
            prefix6 = self.prefixes_v6[
                stable_hash(domain_name) % len(self.prefixes_v6)
            ]
            apex6 = (address_in(prefix6, domain_name),)
        return DnsConfig(
            ns_names=self.ns_names(domain_name),
            apex_ips=apex,
            www_ips=apex,
            apex_ips6=apex6,
            www_ips6=apex6,
        )


def provision_organization(
    org: Organization,
    registry: ASRegistry,
    allocator: PrefixAllocator,
    prefix_count: int = 1,
    prefixlen: int = 20,
    asn: Optional[int] = None,
    v6: bool = False,
) -> Organization:
    """Give *org* an AS number and IPv4 (and optionally IPv6) prefixes."""
    autonomous_system = registry.register(org.name, asn)
    org.asns.append(autonomous_system.number)
    for _ in range(prefix_count):
        org.prefixes.append(allocator.allocate(prefixlen))
    if v6:
        org.prefixes_v6.append(allocator.allocate_v6())
    return org
