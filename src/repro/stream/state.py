"""Per-scope incremental detection state.

A :class:`ScopeState` is the day-over-day counterpart of one batch
:class:`~repro.core.detection.SegmentDetector` run: it ingests single-day
match facts and maintains exactly the aggregates the detector would have
produced from the full history — daily series per provider / reference
type / TLD, the any-provider series, per-``(domain, provider)`` maximal
use intervals, and reference-combination day tallies.

Two properties make it stream-safe:

* every daily series is updated by point increments (order-independent),
  so a late-arriving day lands in the right slot no matter when it shows
  up; and
* intervals go through :class:`~repro.core.detection.IntervalBuilder`,
  whose stitching keeps the maximal-run invariant under out-of-order
  insertion.

The whole state serialises to plain JSON-compatible structures (see
:meth:`to_dict` / :meth:`from_dict`) so the engine can checkpoint and
resume byte-identically.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Set, Tuple

from repro.core.detection import (
    DetectionResult,
    IntervalBuilder,
    ProviderSeries,
    UseInterval,
    combo_label,
)
from repro.core.references import RefType


class ScopeState:
    """Incrementally maintained detection aggregates for one scope."""

    def __init__(self, horizon: int):
        if horizon < 1:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        #: provider → daily distinct-SLD use count.
        self._provider_total: Dict[str, List[int]] = {}
        #: provider → RefType value → daily count.
        self._provider_ref: Dict[str, Dict[str, List[int]]] = {}
        #: tld → daily any-provider use count.
        self._tld_any: Dict[str, List[int]] = {}
        #: Daily any-provider use count across TLDs.
        self._combined_any: List[int] = [0] * horizon
        #: provider → combo label → domain-days.
        self._combo_days: Dict[str, Dict[str, int]] = {}
        #: (domain, provider) → maximal-interval builder.
        self._builders: Dict[Tuple[str, str], IntervalBuilder] = {}
        #: Every domain ever observed in this scope (matching or not).
        self._domains: Set[str] = set()

    # -- ingestion ----------------------------------------------------------

    def observe(
        self,
        domain: str,
        tld: str,
        day: int,
        matches: Mapping[str, FrozenSet[RefType]],
    ) -> None:
        """Apply one domain's match facts for one day."""
        self._domains.add(domain)
        if not matches:
            return
        for provider, refs in sorted(matches.items()):
            total = self._provider_total.get(provider)
            if total is None:
                total = self._provider_total[provider] = [0] * self.horizon
            total[day] += 1
            by_ref = self._provider_ref.setdefault(provider, {})
            for ref in refs:
                series = by_ref.get(ref.value)
                if series is None:
                    series = by_ref[ref.value] = [0] * self.horizon
                series[day] += 1
            combos = self._combo_days.setdefault(provider, {})
            label = combo_label(refs)
            combos[label] = combos.get(label, 0) + 1
            builder = self._builders.get((domain, provider))
            if builder is None:
                builder = self._builders[(domain, provider)] = (
                    IntervalBuilder()
                )
            builder.add_day(day)
        self._tld_any.setdefault(tld, [0] * self.horizon)[day] += 1
        self._combined_any[day] += 1

    # -- queries ------------------------------------------------------------

    @property
    def domains_seen(self) -> int:
        return len(self._domains)

    @property
    def provider_names(self) -> List[str]:
        return sorted(self._provider_total)

    def adoption(self, provider: str, day: int) -> int:
        """Distinct SLDs using *provider* on *day*."""
        series = self._provider_total.get(provider)
        return series[day] if series else 0

    def any_adoption(self, day: int) -> int:
        """Distinct SLDs using any studied provider on *day*."""
        return self._combined_any[day]

    def any_series(self) -> List[int]:
        return list(self._combined_any)

    def tld_series(self, tld: str) -> List[int]:
        series = self._tld_any.get(tld)
        return list(series) if series else [0] * self.horizon

    def intervals(self) -> Dict[Tuple[str, str], List[UseInterval]]:
        """Current maximal use intervals (open runs included as-is)."""
        return {
            key: builder.intervals()
            for key, builder in sorted(self._builders.items())
        }

    def domain_intervals(
        self, domain: str
    ) -> Dict[str, List[UseInterval]]:
        """provider → intervals for one domain."""
        return {
            provider: builder.intervals()
            for (name, provider), builder in sorted(self._builders.items())
            if name == domain
        }

    def result(self) -> DetectionResult:
        """Materialise the batch-equivalent :class:`DetectionResult`."""
        providers: Dict[str, ProviderSeries] = {}
        names = set(self._provider_total) | set(self._provider_ref)
        for name in sorted(names):
            total = self._provider_total.get(name)
            by_ref = self._provider_ref.get(name, {})
            providers[name] = ProviderSeries(
                provider=name,
                total=list(total) if total else [0] * self.horizon,
                by_ref={
                    ref: list(by_ref[ref.value])
                    for ref in RefType
                    if ref.value in by_ref
                },
            )
        return DetectionResult(
            horizon=self.horizon,
            providers=providers,
            any_use_by_tld={
                tld: list(series)
                for tld, series in sorted(self._tld_any.items())
            },
            any_use_combined=list(self._combined_any),
            intervals=self.intervals(),
            combo_days={
                provider: dict(sorted(combos.items()))
                for provider, combos in sorted(self._combo_days.items())
            },
            domains_seen=len(self._domains),
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A canonical, JSON-compatible snapshot of the state.

        All unordered collections are emitted sorted so that equal states
        produce identical serialisations (the checkpoint byte-identity
        guarantee rests on this).
        """
        return {
            "horizon": self.horizon,
            "provider_total": {
                provider: list(series)
                for provider, series in sorted(self._provider_total.items())
            },
            "provider_ref": {
                provider: {
                    ref: list(series)
                    for ref, series in sorted(by_ref.items())
                }
                for provider, by_ref in sorted(self._provider_ref.items())
            },
            "tld_any": {
                tld: list(series)
                for tld, series in sorted(self._tld_any.items())
            },
            "combined_any": list(self._combined_any),
            "combo_days": {
                provider: dict(sorted(combos.items()))
                for provider, combos in sorted(self._combo_days.items())
            },
            "intervals": [
                [domain, provider, [list(run) for run in builder.runs]]
                for (domain, provider), builder in sorted(
                    self._builders.items()
                )
            ],
            "domains": sorted(self._domains),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScopeState":
        state = cls(int(payload["horizon"]))
        state._provider_total = {
            provider: list(series)
            for provider, series in sorted(payload["provider_total"].items())
        }
        state._provider_ref = {
            provider: {
                ref: list(series) for ref, series in sorted(by_ref.items())
            }
            for provider, by_ref in sorted(payload["provider_ref"].items())
        }
        state._tld_any = {
            tld: list(series)
            for tld, series in sorted(payload["tld_any"].items())
        }
        state._combined_any = list(payload["combined_any"])
        state._combo_days = {
            provider: dict(sorted(combos.items()))
            for provider, combos in sorted(payload["combo_days"].items())
        }
        state._builders = {
            (domain, provider): IntervalBuilder(runs)
            for domain, provider, runs in payload["intervals"]
        }
        state._domains = set(payload["domains"])
        return state
