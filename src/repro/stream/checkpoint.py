"""Checkpoint/resume for the stream engine.

The on-disk format is a zlib-compressed canonical JSON document: keys
sorted, no whitespace, every unordered collection serialised in sorted
order by :meth:`StreamEngine.to_dict`. Canonicalisation is what makes the
guarantee testable: two engines in the same logical state produce the
same bytes, so "kill at day N, resume, finish" can be asserted equal to
an uninterrupted run by comparing checkpoint bytes (or digests).

Robustness against torn/corrupt checkpoints:

* format 2 embeds a SHA-256 digest of the engine payload, so a bit-flip
  that still decompresses to JSON is caught at load, not days later as a
  silently wrong series;
* :func:`save_checkpoint` is atomic (temp file + rename) **and** rotates
  the previous checkpoint to ``<path>.prev`` first;
* :func:`load_checkpoint_with_fallback` recovers from a damaged current
  checkpoint by falling back to that previous good one — resuming a few
  days back beats not resuming at all, and the engine's duplicate
  handling makes the replayed overlap harmless (``on_duplicate="skip"``).

Every load failure is a typed :class:`CheckpointError` (a ``ValueError``
subclass), never a raw ``zlib.error`` / ``JSONDecodeError`` / ``KeyError``.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Optional, Tuple

from repro.core.references import SignatureCatalog
from repro.stream.engine import StreamEngine

#: Bump when the serialised engine layout changes. Format 2 added the
#: embedded payload digest; format-1 checkpoints (no digest) still load.
CHECKPOINT_FORMAT = 2

#: Formats load_checkpoint accepts.
SUPPORTED_FORMATS = (1, 2)

_MAGIC = b"REPROCKPT"

#: Suffix of the rotated previous-good checkpoint.
PREVIOUS_SUFFIX = ".prev"


class CheckpointError(ValueError):
    """A checkpoint file is missing, damaged, or from an unknown format."""


def _engine_payload(engine: StreamEngine) -> str:
    return json.dumps(
        engine.to_dict(), sort_keys=True, separators=(",", ":")
    )


def dump_state(engine: StreamEngine) -> bytes:
    """The engine's canonical serialised form (uncompressed JSON)."""
    payload = _engine_payload(engine)
    document = {
        "format": CHECKPOINT_FORMAT,
        "digest": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
        "engine": json.loads(payload),
    }
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def state_digest(engine: StreamEngine) -> str:
    """SHA-256 over the canonical state — cheap state-equality probe."""
    return hashlib.sha256(dump_state(engine)).hexdigest()


def save_checkpoint(engine: StreamEngine, path: str) -> int:
    """Atomically write *engine*'s state to *path*; returns bytes written.

    An existing checkpoint at *path* is rotated to ``path + ".prev"``
    before the new one lands, keeping one known-good fallback.
    """
    blob = _MAGIC + zlib.compress(dump_state(engine), 6)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        handle.write(blob)
    if os.path.exists(path):
        os.replace(path, path + PREVIOUS_SUFFIX)
    os.replace(temp_path, path)
    return len(blob)


def load_checkpoint(
    path: str, catalog: Optional[SignatureCatalog] = None
) -> StreamEngine:
    """Rebuild an engine from a :func:`save_checkpoint` file.

    The signature catalog is not part of the checkpoint (it is
    configuration, not state); pass the one the original engine used, or
    leave it to default to the paper's Table 2. Raises
    :class:`CheckpointError` on any damage.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(_MAGIC):
        raise CheckpointError(f"{path} is not a stream checkpoint")
    try:
        text = zlib.decompress(blob[len(_MAGIC):])
    except zlib.error as exc:
        raise CheckpointError(
            f"{path}: corrupt checkpoint (decompression failed: {exc})"
        ) from exc
    try:
        document = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"{path}: corrupt checkpoint (not valid JSON: {exc})"
        ) from exc
    fmt = document.get("format")
    if fmt not in SUPPORTED_FORMATS:
        raise CheckpointError(f"unsupported checkpoint format {fmt!r}")
    engine_doc = document.get("engine")
    if not isinstance(engine_doc, dict):
        raise CheckpointError(f"{path}: checkpoint has no engine payload")
    if fmt >= 2:
        payload = json.dumps(
            engine_doc, sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if digest != document.get("digest"):
            raise CheckpointError(
                f"{path}: checkpoint digest mismatch (state damaged)"
            )
    try:
        return StreamEngine.from_dict(engine_doc, catalog=catalog)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"{path}: corrupt checkpoint (engine payload invalid: {exc})"
        ) from exc


def load_checkpoint_with_fallback(
    path: str, catalog: Optional[SignatureCatalog] = None
) -> Tuple[StreamEngine, bool]:
    """Load *path*, falling back to ``path + ".prev"`` if it is damaged.

    Returns ``(engine, used_fallback)``. If the current checkpoint is
    unreadable and no previous one exists (or it is damaged too), the
    current checkpoint's error propagates.
    """
    try:
        return load_checkpoint(path, catalog=catalog), False
    except (CheckpointError, OSError) as exc:
        previous = path + PREVIOUS_SUFFIX
        if not os.path.exists(previous):
            raise
        try:
            engine = load_checkpoint(previous, catalog=catalog)
        except (CheckpointError, OSError):
            raise exc from None
        return engine, True
