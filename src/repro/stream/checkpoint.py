"""Checkpoint/resume for the stream engine.

The on-disk format is a zlib-compressed canonical JSON document: keys
sorted, no whitespace, every unordered collection serialised in sorted
order by :meth:`StreamEngine.to_dict`. Canonicalisation is what makes the
guarantee testable: two engines in the same logical state produce the
same bytes, so "kill at day N, resume, finish" can be asserted equal to
an uninterrupted run by comparing checkpoint bytes (or digests).

Writes are atomic (temp file + rename) so a crash mid-checkpoint leaves
the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from typing import Optional

from repro.core.references import SignatureCatalog
from repro.stream.engine import StreamEngine

#: Bump when the serialised engine layout changes.
CHECKPOINT_FORMAT = 1

_MAGIC = b"REPROCKPT"


def dump_state(engine: StreamEngine) -> bytes:
    """The engine's canonical serialised form (uncompressed JSON)."""
    document = {
        "format": CHECKPOINT_FORMAT,
        "engine": engine.to_dict(),
    }
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def state_digest(engine: StreamEngine) -> str:
    """SHA-256 over the canonical state — cheap state-equality probe."""
    return hashlib.sha256(dump_state(engine)).hexdigest()


def save_checkpoint(engine: StreamEngine, path: str) -> int:
    """Atomically write *engine*'s state to *path*; returns bytes written."""
    blob = _MAGIC + zlib.compress(dump_state(engine), 6)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temp_path = path + ".tmp"
    with open(temp_path, "wb") as handle:
        handle.write(blob)
    os.replace(temp_path, path)
    return len(blob)


def load_checkpoint(
    path: str, catalog: Optional[SignatureCatalog] = None
) -> StreamEngine:
    """Rebuild an engine from a :func:`save_checkpoint` file.

    The signature catalog is not part of the checkpoint (it is
    configuration, not state); pass the one the original engine used, or
    leave it to default to the paper's Table 2.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(_MAGIC):
        raise ValueError(f"{path} is not a stream checkpoint")
    document = json.loads(zlib.decompress(blob[len(_MAGIC):]))
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {document.get('format')!r}"
        )
    return StreamEngine.from_dict(document["engine"], catalog=catalog)
