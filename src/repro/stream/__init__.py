"""repro.stream — incremental daily-ingest engine with checkpoint/resume.

The batch pipeline (:class:`repro.core.pipeline.AdoptionStudy`) recomputes
the whole study from scratch; this package maintains the same aggregates
one landed ``(source, day)`` partition at a time:

* :class:`StreamEngine` — the stateful core: per-scope incremental
  detection state, ordering discipline (quarantine, missing days, late
  arrivals), live queries;
* :class:`ScopeState` — one scope's aggregates (series, intervals);
* feeds — :class:`~repro.measurement.scheduler.PartitionFeed` measures
  live; :class:`StoreReplayFeed` / :class:`SegmentReplayFeed` replay
  existing data;
* checkpoints — :func:`save_checkpoint` / :func:`load_checkpoint`
  serialise the engine for kill-and-resume;
* :class:`QueryAPI` — the read side (adoption / growth / domain history).

After ingesting every day of a world, the engine's aggregates equal the
batch study's exactly (``tests/stream/test_equivalence.py`` asserts it),
while a single-day increment costs O(day), not O(history).
"""

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    dump_state,
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.stream.engine import (
    APPLIED,
    DUPLICATE,
    QUARANTINED,
    RECONCILED,
    SCOPE_OF_SOURCE,
    StreamEngine,
)
from repro.stream.feed import SegmentReplayFeed, StoreReplayFeed
from repro.stream.query import DomainHistory, LiveSnapshot, QueryAPI
from repro.stream.state import ScopeState

__all__ = [
    "APPLIED",
    "CHECKPOINT_FORMAT",
    "DUPLICATE",
    "DomainHistory",
    "LiveSnapshot",
    "QUARANTINED",
    "QueryAPI",
    "RECONCILED",
    "SCOPE_OF_SOURCE",
    "ScopeState",
    "SegmentReplayFeed",
    "StoreReplayFeed",
    "StreamEngine",
    "dump_state",
    "load_checkpoint",
    "save_checkpoint",
    "state_digest",
]
