"""Replay feeds: daily partitions from already-collected data.

The live path measures partitions through
:class:`~repro.measurement.scheduler.PartitionFeed`. These feeds produce
the *same* :class:`~repro.measurement.scheduler.DayPartition` stream from
data that already exists:

* :class:`StoreReplayFeed` — from a :class:`ColumnStore` (the landed
  columnar partitions of earlier measurement runs);
* :class:`SegmentReplayFeed` — from per-domain enriched
  :class:`ObservationSegment` histories (the batch pipeline's working
  set), expanded back into daily rows.

Both honour landing order (day-major, source order as configured), so an
engine fed from a replay ends in exactly the state a live run would have
produced.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.measurement.scheduler import ALL_SOURCES, DayPartition
from repro.measurement.snapshot import DomainObservation, ObservationSegment
from repro.measurement.storage import ColumnStore
from repro.world.timeline import CCTLD_START_DAY
from repro.world.world import World


class StoreReplayFeed:
    """Replays the partitions landed in a :class:`ColumnStore`."""

    def __init__(
        self,
        store: ColumnStore,
        zone_sizes: Optional[Mapping[Tuple[str, int], int]] = None,
    ):
        self._store = store
        #: Optional (source, day) → listing size; defaults to row count.
        self._zone_sizes = dict(zone_sizes or {})

    def partition(self, source: str, day: int) -> DayPartition:
        observations = list(self._store.rows(source, day))
        zone_size = self._zone_sizes.get((source, day), len(observations))
        return DayPartition(
            source=source,
            day=day,
            zone_size=zone_size,
            observations=observations,
        )

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        """Stored partitions in landing order (day-major)."""
        source_rank = {source: i for i, source in enumerate(ALL_SOURCES)}
        keys = sorted(
            self._store.partitions(),
            key=lambda key: (key[1], source_rank.get(key[0], len(ALL_SOURCES))),
        )
        for source, day in keys:
            if start is not None and day < start:
                continue
            if end is not None and day >= end:
                continue
            yield self.partition(source, day)


class SegmentReplayFeed:
    """Expands enriched observation segments back into daily partitions.

    *segments* is the batch pipeline's working set — domain → enriched
    :class:`ObservationSegment` list (e.g. from
    :meth:`AdoptionStudy.collect_segments`). Replaying it day-by-day
    yields exactly what daily measurement would have observed, because
    segments are the run-length-compressed form of the daily rows.
    """

    def __init__(
        self,
        world: World,
        segments: Mapping[str, Sequence[ObservationSegment]],
        sources: Optional[Sequence[str]] = None,
    ):
        self._world = world
        self.sources = tuple(sources) if sources else ALL_SOURCES
        unknown = set(self.sources) - set(ALL_SOURCES)
        if unknown:
            raise ValueError(f"unknown sources: {sorted(unknown)}")
        #: tld source → [(name, sorted segments)].
        self._by_tld: Dict[str, List[Tuple[str, List[ObservationSegment]]]] = {}
        for name, domain_segments in segments.items():
            timeline = world.domains.get(name)
            if timeline is None or timeline.tld not in self.sources:
                continue
            self._by_tld.setdefault(timeline.tld, []).append(
                (name, sorted(domain_segments, key=lambda s: s.start))
            )
        self._segments = segments

    def window(self, source: str) -> Tuple[int, int]:
        if source == "alexa":
            return (CCTLD_START_DAY, self._world.horizon)
        start, days = self._world.tld_windows.get(
            source, (0, self._world.horizon)
        )
        return (start, start + days)

    def windows(self) -> Dict[str, Tuple[int, int]]:
        return {source: self.window(source) for source in self.sources}

    @staticmethod
    def _observation_at(
        segments: Sequence[ObservationSegment], day: int
    ) -> Optional[DomainObservation]:
        for segment in segments:
            if segment.start <= day < segment.end:
                return segment.at(day)
            if segment.start > day:
                return None
        return None

    def partition(self, source: str, day: int) -> DayPartition:
        observations: List[DomainObservation] = []
        if source == "alexa":
            names = self._world.alexa_list(day)
            for name in names:
                observation = self._observation_at(
                    self._segments.get(name, ()), day
                )
                if observation is not None:
                    observations.append(observation)
        else:
            for name, segments in self._by_tld.get(source, ()):
                observation = self._observation_at(segments, day)
                if observation is not None:
                    observations.append(observation)
        return DayPartition(
            source=source,
            day=day,
            zone_size=len(observations),
            observations=observations,
        )

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        windows = self.windows()
        if start is None:
            start = min(window[0] for window in windows.values())
        if end is None:
            end = max(window[1] for window in windows.values())
        for day in range(start, end):
            for source in self.sources:
                window_start, window_end = windows[source]
                if window_start <= day < window_end:
                    yield self.partition(source, day)
