"""Replay feeds: daily partitions from already-collected data.

The live path measures partitions through
:class:`~repro.measurement.scheduler.PartitionFeed`. These feeds produce
the *same* :class:`~repro.measurement.scheduler.DayPartition` stream from
data that already exists:

* :class:`StoreReplayFeed` — from a :class:`ColumnStore` (the landed
  columnar partitions of earlier measurement runs);
* :class:`SegmentReplayFeed` — from per-domain enriched
  :class:`ObservationSegment` histories (the batch pipeline's working
  set), expanded back into daily rows.

Both honour landing order (day-major, source order as configured), so an
engine fed from a replay ends in exactly the state a live run would have
produced.

:class:`ResilientFeed` wraps any of them (or an injected-fault shim)
with bounded retry and deterministic backoff: a transiently failing
partition read is retried per :class:`~repro.faults.retry.RetryPolicy`;
an exhausted one either raises a typed :class:`FeedError` or — under
``on_exhausted="skip"`` — is dropped and recorded, letting the engine
declare the day missing instead of the run dying.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.batch.batch import BatchBuilder
from repro.faults.plan import FaultLog
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.measurement.scheduler import ALL_SOURCES, DayPartition
from repro.measurement.snapshot import DomainObservation, ObservationSegment
from repro.store.protocols import ObservationStore
from repro.world.timeline import CCTLD_START_DAY
from repro.world.world import World


class FeedError(Exception):
    """A partition could not be produced after exhausting retries."""


class StoreReplayFeed:
    """Replays the partitions landed in an observation store.

    Accepts anything satisfying
    :class:`~repro.store.protocols.ObservationStore` — the in-memory
    :class:`~repro.measurement.storage.ColumnStore` or the on-disk
    :class:`~repro.store.store.SegmentStore` (whose manifest pruning
    and mmap reads keep replay memory flat in history length).

    By default partitions are produced columnar (``batches=True``): the
    store's columns intern straight into one shared
    :class:`~repro.batch.batch.BatchBuilder` pool pair and the
    partition's ``observations`` are lazy row views. ``batches=False``
    replays through the legacy per-row boxing path — the two are
    value-identical (the benchmark suite measures them against each
    other).
    """

    def __init__(
        self,
        store: ObservationStore,
        zone_sizes: Optional[Mapping[Tuple[str, int], int]] = None,
        batches: bool = True,
    ):
        self._store = store
        #: Optional (source, day) → listing size; defaults to row count.
        self._zone_sizes = dict(zone_sizes or {})
        self._batches = batches
        self._builder = BatchBuilder() if batches else None

    def partition(self, source: str, day: int) -> DayPartition:
        if self._builder is not None:
            batch = self._store.batch(source, day, builder=self._builder)
            return DayPartition.from_batch(
                source=source,
                day=day,
                zone_size=self._zone_sizes.get((source, day), len(batch)),
                batch=batch,
            )
        observations = list(self._store.rows(source, day))
        zone_size = self._zone_sizes.get((source, day), len(observations))
        return DayPartition(
            source=source,
            day=day,
            zone_size=zone_size,
            observations=observations,
        )

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        """Stored partitions in landing order (day-major)."""
        source_rank = {source: i for i, source in enumerate(ALL_SOURCES)}
        keys = sorted(
            self._store.partitions(),
            key=lambda key: (key[1], source_rank.get(key[0], len(ALL_SOURCES))),
        )
        for source, day in keys:
            if start is not None and day < start:
                continue
            if end is not None and day >= end:
                continue
            yield self.partition(source, day)


class SegmentReplayFeed:
    """Expands enriched observation segments back into daily partitions.

    *segments* is the batch pipeline's working set — domain → enriched
    :class:`ObservationSegment` list (e.g. from
    :meth:`AdoptionStudy.collect_segments`). Replaying it day-by-day
    yields exactly what daily measurement would have observed, because
    segments are the run-length-compressed form of the daily rows.
    """

    def __init__(
        self,
        world: World,
        segments: Mapping[str, Sequence[ObservationSegment]],
        sources: Optional[Sequence[str]] = None,
    ):
        self._world = world
        self.sources = tuple(sources) if sources else ALL_SOURCES
        unknown = set(self.sources) - set(ALL_SOURCES)
        if unknown:
            raise ValueError(f"unknown sources: {sorted(unknown)}")
        #: tld source → [(name, sorted segments)].
        self._by_tld: Dict[str, List[Tuple[str, List[ObservationSegment]]]] = {}
        for name, domain_segments in segments.items():
            timeline = world.domains.get(name)
            if timeline is None or timeline.tld not in self.sources:
                continue
            self._by_tld.setdefault(timeline.tld, []).append(
                (name, sorted(domain_segments, key=lambda s: s.start))
            )
        self._segments = segments

    def window(self, source: str) -> Tuple[int, int]:
        if source == "alexa":
            return (CCTLD_START_DAY, self._world.horizon)
        start, days = self._world.tld_windows.get(
            source, (0, self._world.horizon)
        )
        return (start, start + days)

    def windows(self) -> Dict[str, Tuple[int, int]]:
        return {source: self.window(source) for source in self.sources}

    @staticmethod
    def _observation_at(
        segments: Sequence[ObservationSegment], day: int
    ) -> Optional[DomainObservation]:
        for segment in segments:
            if segment.start <= day < segment.end:
                return segment.at(day)
            if segment.start > day:
                return None
        return None

    def partition(self, source: str, day: int) -> DayPartition:
        observations: List[DomainObservation] = []
        if source == "alexa":
            names = self._world.alexa_list(day)
            for name in names:
                observation = self._observation_at(
                    self._segments.get(name, ()), day
                )
                if observation is not None:
                    observations.append(observation)
        else:
            for name, segments in self._by_tld.get(source, ()):
                observation = self._observation_at(segments, day)
                if observation is not None:
                    observations.append(observation)
        return DayPartition(
            source=source,
            day=day,
            zone_size=len(observations),
            observations=observations,
        )

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        windows = self.windows()
        if start is None:
            start = min(window[0] for window in windows.values())
        if end is None:
            end = max(window[1] for window in windows.values())
        for day in range(start, end):
            for source in self.sources:
                window_start, window_end = windows[source]
                if window_start <= day < window_end:
                    yield self.partition(source, day)


class ResilientFeed:
    """Bounded retry with deterministic backoff around any feed.

    Wraps anything exposing ``windows()`` and ``partition(source, day)``.
    Each failing read is retried up to ``retry_policy.attempts`` total
    tries with the policy's logical backoff ticks accounted to *log*.
    Exhaustion behaviour: ``on_exhausted="raise"`` raises a
    :class:`FeedError` chaining the last error; ``"skip"`` records the
    partition in :attr:`skipped` and drops it — combine with the
    engine's ``ingest_feed(..., skip_gaps=True)`` so the dropped day is
    declared missing and a later redelivery reconciles it.
    """

    def __init__(
        self,
        inner: Any,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        on_exhausted: str = "raise",
        log: Optional[FaultLog] = None,
    ) -> None:
        if on_exhausted not in ("raise", "skip"):
            raise ValueError("on_exhausted must be 'raise' or 'skip'")
        self._inner = inner
        self._policy = retry_policy
        self._on_exhausted = on_exhausted
        self.log = log if log is not None else FaultLog()
        #: (source, day) pairs dropped after exhausting retries.
        self.skipped: List[Tuple[str, int]] = []

    site = "feed.partition"

    def windows(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._inner.windows())

    def partition(self, source: str, day: int) -> Optional[DayPartition]:
        """The partition, retried; None when skipped after exhaustion."""
        last_error: Optional[Exception] = None
        for attempt in range(1, self._policy.attempts + 1):
            try:
                partition = self._inner.partition(source, day)
            except Exception as exc:  # repro: ignore[swallowed-exception]
                # Containment by policy: the error is either retried
                # below or re-raised as a typed FeedError/recorded skip
                # after the bounded attempts run out — never discarded.
                last_error = exc
                if attempt < self._policy.attempts:
                    self.log.record_retry(
                        self.site, self._policy.backoff_ticks(attempt)
                    )
                continue
            if attempt > 1:
                self.log.record_recovery(self.site)
            return partition
        if self._on_exhausted == "skip":
            self.log.record_drop(self.site)
            self.skipped.append((source, day))
            return None
        raise FeedError(
            f"partition ({source!r}, {day}) failed after "
            f"{self._policy.attempts} attempts: {last_error}"
        ) from last_error

    def days(
        self, start: Optional[int] = None, end: Optional[int] = None
    ) -> Iterator[DayPartition]:
        """Day-major partitions over the windows, skipping exhausted ones."""
        windows = self.windows()
        lo = min(window[0] for window in windows.values())
        hi = max(window[1] for window in windows.values())
        if start is not None:
            lo = max(lo, start)
        if end is not None:
            hi = min(hi, end)
        for day in range(lo, hi):
            for source in windows:
                window_start, window_end = windows[source]
                if not window_start <= day < window_end:
                    continue
                partition = self.partition(source, day)
                if partition is not None:
                    yield partition
